//! The Theorem 1.1 lower-bound machinery, end to end.
//!
//! Builds the Figure-1 construction `G(ℓ, β)` for both input classes,
//! shows the Lemma 2.3 spanner-size dichotomy, runs the Lemma 2.4
//! decision rule, and prints the communication accounting that yields
//! the Ω(√n/(√α·log n)) round bound.
//!
//! Run with: `cargo run --example hardness_demo`

use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::lowerbounds::construction_g::{GConstruction, GParams};
use spanner_repro::lowerbounds::disjointness::{random_disjoint, random_intersecting};
use spanner_repro::lowerbounds::two_party::{
    decide_disjointness_by_spanner, predicted_rounds_deterministic, predicted_rounds_randomized,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(1802);
    let alpha = 2.0;
    let params = GParams::for_alpha(2_000, alpha);
    println!(
        "G(ℓ={}, β={}): n = {}, |D| = {}, disjointness input = {} bits",
        params.ell,
        params.beta,
        params.num_vertices(),
        (params.ell * params.beta).pow(2),
        params.input_len()
    );

    for (label, inst) in [
        (
            "disjoint     ",
            random_disjoint(params.input_len(), &mut rng),
        ),
        (
            "intersecting ",
            random_intersecting(params.input_len(), 1, &mut rng),
        ),
    ] {
        let c = GConstruction::build(params, inst);
        let spanner = c.minimal_spanner();
        let forced = c.forced_d_edges();
        let (declared_disjoint, d_edges, t) = decide_disjointness_by_spanner(&c, alpha);
        println!(
            "{label}: spanner = {:>7} edges, forced D-edges = {:>6}, decision rule: \
             {} ({} D-edges vs threshold α·t = {:.0})",
            spanner.len(),
            forced,
            if declared_disjoint {
                "disjoint"
            } else {
                "NOT disjoint"
            },
            d_edges,
            alpha * t,
        );
        assert_eq!(declared_disjoint, c.instance.is_disjoint());
        println!(
            "          cut toward Bob = {} edges; moving the {}-bit input across it at \
             O(log n) bits/edge/round needs Ω({:.2}) rounds",
            c.cut_size(),
            params.input_len(),
            params.input_len() as f64
                / (c.cut_size() as f64 * (params.num_vertices() as f64).log2()),
        );
    }

    println!("\npredicted round lower bounds for α-approximation (k ≥ 5, directed):");
    println!(
        "{:>8} {:>8} {:>14} {:>14}",
        "n", "α", "randomized", "deterministic"
    );
    for n in [1_000usize, 10_000, 100_000] {
        for a in [1.0, 4.0, 16.0] {
            println!(
                "{n:>8} {a:>8.0} {:>14.1} {:>14.1}",
                predicted_rounds_randomized(n, a),
                predicted_rounds_deterministic(n, a)
            );
        }
    }
    println!("\n(the LOCAL model needs only O(polylog) rounds for (1+ε) — a strict separation)");
}
