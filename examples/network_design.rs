//! Network design with heterogeneous links: the weighted and
//! client-server 2-spanner variants on a realistic scenario.
//!
//! Scenario: a data-center-ish topology where a few core routers are
//! densely interconnected by cheap fiber and many edge switches hang
//! off them over expensive long-haul links. We want a sparse backbone
//! that 2-spans every adjacency — paying as little link cost as
//! possible — and, in a second pass, a client-server instance where
//! only *backbone-eligible* links (servers) may be kept while all
//! switch-to-switch adjacencies (clients) must stay 2-spanned.
//!
//! Run with: `cargo run --example network_design`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use spanner_repro::core::dist::{
    min_2_spanner_client_server, min_2_spanner_weighted, EngineConfig,
};
use spanner_repro::core::verify::{is_client_server_2_spanner, is_k_spanner, spanner_cost};
use spanner_repro::graphs::{EdgeSet, EdgeWeights, Graph};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let cores = 8;
    let switches = 60;
    let n = cores + switches;
    let mut g = Graph::new(n);
    // Dense core.
    for a in 0..cores {
        for b in (a + 1)..cores {
            g.add_edge(a, b);
        }
    }
    // Each switch attaches to 2-3 random cores; nearby switches peer.
    for s in cores..n {
        let k = rng.gen_range(2..=3);
        while g.degree(s) < k {
            let c = rng.gen_range(0..cores);
            g.ensure_edge(s, c);
        }
        if s > cores && rng.gen_bool(0.5) {
            g.ensure_edge(s, s - 1);
        }
    }
    println!(
        "topology: n = {n}, m = {}, Δ = {}",
        g.num_edges(),
        g.max_degree()
    );

    // Weighted variant: core-core links cost 1, core-switch 10,
    // switch-switch 25.
    let w = EdgeWeights::from_fn(g.num_edges(), |e| {
        let (u, v) = g.endpoints(e);
        match (u < cores, v < cores) {
            (true, true) => 1,
            (true, false) | (false, true) => 10,
            (false, false) => 25,
        }
    });
    let run = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(1));
    assert!(run.converged);
    assert!(is_k_spanner(&g, &run.spanner, 2));
    println!(
        "weighted backbone: {} of {} edges, cost {} of {} ({} iterations)",
        run.spanner.len(),
        g.num_edges(),
        spanner_cost(&run.spanner, &w),
        w.total(),
        run.iterations
    );

    // Client-server variant: all adjacencies are clients; only links
    // touching a core are servers (eligible for the backbone).
    let clients = EdgeSet::full(g.num_edges());
    let mut servers = EdgeSet::new(g.num_edges());
    for (e, u, v) in g.edges() {
        if u < cores || v < cores {
            servers.insert(e);
        }
    }
    let cs = min_2_spanner_client_server(&g, &clients, &servers, &EngineConfig::seeded(2));
    assert!(cs.converged);
    assert!(is_client_server_2_spanner(
        &g,
        &clients,
        &servers,
        &cs.spanner
    ));
    println!(
        "client-server backbone: {} server edges keep every coverable adjacency 2-spanned",
        cs.spanner.len()
    );
    let uncoverable = clients.len()
        - spanner_repro::core::verify::coverable_clients(&g, &clients, &servers).len();
    println!("({uncoverable} switch-switch adjacencies have no server coverage and are excluded, as in §4.3.3)");
}
