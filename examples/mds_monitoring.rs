//! Placing monitors with the CONGEST MDS protocol (Section 5).
//!
//! Scenario: pick a minimum set of monitor nodes so that every node of
//! a sensor network is a monitor or adjacent to one. The Section-5
//! protocol guarantees an O(log Δ) ratio — not just in expectation —
//! while every message stays within the CONGEST budget, which this
//! example verifies from the simulator's own traffic metering.
//!
//! Run with: `cargo run --example mds_monitoring`

use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::graphs::gen;
use spanner_repro::mds::{greedy_mds, is_dominating_set, run_mds_protocol};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    for (name, g) in [
        ("grid 12×12", gen::grid(12, 12)),
        (
            "random G(150, 0.04)",
            gen::gnp_connected(150, 0.04, &mut rng),
        ),
        (
            "preferential attachment",
            gen::preferential_attachment(150, 4, 2, &mut rng),
        ),
    ] {
        let run = run_mds_protocol(&g, 5, 100_000);
        assert!(run.completed, "{name}: protocol must terminate");
        assert!(
            is_dominating_set(&g, &run.dominating_set),
            "{name}: output must dominate"
        );
        assert_eq!(
            run.metrics.cap_violations,
            Some(0),
            "{name}: every message fits in O(1) CONGEST words"
        );
        let greedy = greedy_mds(&g);
        println!(
            "{name:<26} n={:<4} Δ={:<3} monitors={:<4} greedy={:<4} rounds={:<5} max_msg={}w",
            g.num_vertices(),
            g.max_degree(),
            run.dominating_set.len(),
            greedy.len(),
            run.metrics.rounds,
            run.metrics.max_message_words,
        );
    }
    println!("\nall runs CONGEST-clean: no message exceeded 2 words");
}
