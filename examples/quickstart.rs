//! Quickstart: build a 2-spanner of a dense random graph with the
//! distributed algorithm of Theorem 1.3 and compare it against the
//! sequential greedy baseline and the trivial lower bound.
//!
//! Run with: `cargo run --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::core::dist::{min_2_spanner, EngineConfig};
use spanner_repro::core::seq::greedy_2_spanner;
use spanner_repro::core::verify::is_k_spanner;
use spanner_repro::graphs::gen;

fn main() {
    let mut rng = StdRng::seed_from_u64(2018);
    let n = 200;
    let g = gen::gnp_connected(n, 0.12, &mut rng);
    println!(
        "graph: n = {}, m = {}, Δ = {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // The paper's distributed algorithm (engine form).
    let run = min_2_spanner(&g, &EngineConfig::seeded(42));
    assert!(run.converged, "the algorithm always converges w.h.p.");
    assert!(
        is_k_spanner(&g, &run.spanner, 2),
        "output verified independently"
    );
    println!(
        "distributed 2-spanner : {:>6} edges, {} iterations (= {} LOCAL rounds)",
        run.spanner.len(),
        run.iterations,
        run.local_rounds()
    );

    // Sequential greedy (Kortsarz–Peleg) for comparison.
    let greedy = greedy_2_spanner(&g);
    assert!(is_k_spanner(&g, &greedy, 2));
    println!("sequential greedy     : {:>6} edges", greedy.len());

    // Any 2-spanner of a connected graph needs at least n-1 edges.
    println!("trivial lower bound   : {:>6} edges (n - 1)", n - 1);
    println!(
        "ratio vs trivial bound: {:.2}×  (paper guarantee: O(log m/n) = O({:.1}))",
        run.spanner.len() as f64 / (n - 1) as f64,
        (g.num_edges() as f64 / n as f64).ln().max(1.0)
    );
}
