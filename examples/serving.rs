//! In-process serving quickstart: submit a duplicate-heavy batch of
//! jobs across all four variants to a [`Service`], then read the
//! serving metrics.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::core::dist::VariantInstance;
use spanner_repro::graphs::gen;
use spanner_repro::service::{JobSpec, Service, ServiceConfig};

fn main() {
    let service = Service::new(&ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 128,
        default_timeout: Some(Duration::from_secs(30)),
        // One engine shard per core for every run; responses are
        // identical whatever this is set to.
        engine_shards: Some(0),
        ..ServiceConfig::default()
    });

    // A small mixed workload; every spec is submitted twice, so half
    // the traffic is deduplicated by the cache/coalescing layer.
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnp_connected(40, 0.2, &mut rng);
    let d = gen::random_digraph_connected(24, 0.1, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    let specs = [
        JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 1),
        JobSpec::new(VariantInstance::Directed { graph: d }, 2),
        JobSpec::new(
            VariantInstance::Weighted {
                graph: g.clone(),
                weights: w,
            },
            3,
        ),
        JobSpec::new(
            VariantInstance::ClientServer {
                graph: g,
                clients,
                servers,
            },
            4,
        ),
    ];

    // Pipeline: submit everything, then collect.
    let handles: Vec<_> = specs
        .iter()
        .chain(specs.iter()) // duplicates
        .map(|spec| service.submit(spec).expect("valid spec"))
        .collect();
    for handle in handles {
        let resp = handle.wait().expect("job result");
        println!(
            "{:>13}  key {:016x}  spanner {:>3} edges  {} iterations  {} LOCAL rounds",
            resp.kind.to_string(),
            resp.key,
            resp.spanner.len(),
            resp.iterations,
            resp.local_rounds,
        );
    }

    let m = service.metrics();
    println!(
        "\nserved {} jobs: {} engine runs, {} cache hits, {} coalesced \
         (hit rate {:.0}%), p50 {} us, p95 {} us",
        m.jobs_completed,
        m.cache_misses,
        m.cache_hits,
        m.coalesced,
        m.cache_hit_rate * 100.0,
        m.p50_latency_us,
        m.p95_latency_us,
    );
    assert_eq!(
        m.jobs_submitted,
        m.cache_hits + m.cache_misses + m.coalesced
    );
}
