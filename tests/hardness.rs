//! Integration tests for the Sections 2–3 hardness machinery: the
//! constructions, the dichotomies, and the reductions, checked end to
//! end against the algorithmic crates.

use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::core::dist::{min_2_spanner_weighted, EngineConfig};
use spanner_repro::core::verify::{is_k_spanner, is_k_spanner_directed, spanner_cost};
use spanner_repro::graphs::gen;
use spanner_repro::lowerbounds::construction_g::{GConstruction, GParams};
use spanner_repro::lowerbounds::construction_gs::GsConstruction;
use spanner_repro::lowerbounds::construction_gw::{GwDirected, GwUndirected};
use spanner_repro::lowerbounds::disjointness::{
    random_disjoint, random_far_from_disjoint, random_intersecting,
};
use spanner_repro::lowerbounds::two_party::decide_disjointness_by_spanner;
use spanner_repro::lowerbounds::vc::{exact_vertex_cover, is_vertex_cover};

#[test]
fn theorem_1_1_dichotomy_with_proof_parameters() {
    // Parameters exactly as the Theorem 1.1 proof picks them.
    let mut rng = StdRng::seed_from_u64(1);
    let alpha = 1.0;
    let params = GParams::for_alpha(1_200, alpha);
    assert!(params.beta >= params.ell);

    let d = GConstruction::build(params, random_disjoint(params.input_len(), &mut rng));
    // Disjoint: the non-D edges 5-span everything, within the 7ℓβ bound.
    assert!(d.non_d_is_k_spanner(5));
    assert!(d.non_d_spanner().len() <= d.disjoint_spanner_bound());
    // Independent verification on the real graph.
    assert!(is_k_spanner_directed(&d.graph, &d.non_d_spanner(), 5));

    let i = GConstruction::build(params, random_intersecting(params.input_len(), 1, &mut rng));
    // Intersecting: β² dense edges are forced, and β² > α·7ℓβ by the
    // parameter choice (q > αc).
    let forced = i.forced_d_edges();
    assert!(forced >= params.beta * params.beta);
    assert!(
        forced as f64 > alpha * i.disjoint_spanner_bound() as f64,
        "forced = {forced} must exceed α·t"
    );
    // And the decision rule of Lemma 2.4 separates the cases.
    assert!(decide_disjointness_by_spanner(&d, alpha).0);
    assert!(!decide_disjointness_by_spanner(&i, alpha).0);
}

#[test]
fn theorem_2_8_gap_dichotomy_with_proof_parameters() {
    let mut rng = StdRng::seed_from_u64(2);
    let alpha = 1.0;
    let params = GParams::for_alpha_deterministic(1_300, alpha);
    assert!(params.beta <= params.ell);

    let d = GConstruction::build(params, random_disjoint(params.input_len(), &mut rng));
    assert!(d.non_d_is_k_spanner(5));
    assert!(d.non_d_spanner().len() <= d.disjoint_spanner_bound_gap());

    let f = GConstruction::build(
        params,
        random_far_from_disjoint(params.input_len(), &mut rng),
    );
    let forced = f.forced_d_edges();
    let gap_bound = params.beta * params.beta * params.ell * params.ell / 12;
    assert!(
        forced >= gap_bound,
        "forced {forced} below β²ℓ²/12 = {gap_bound}"
    );
    // 12αc < β² by the parameter choice, so the dichotomy separates:
    assert!(forced as f64 > alpha * d.disjoint_spanner_bound_gap() as f64);
}

#[test]
fn weighted_constructions_zero_cost_dichotomy() {
    let mut rng = StdRng::seed_from_u64(3);
    for ell in [3usize, 5] {
        let d = GwDirected::build(ell, random_disjoint(ell * ell, &mut rng));
        assert!(d.zero_cost_spanner_exists(4));
        let i = GwDirected::build(ell, random_intersecting(ell * ell, 1, &mut rng));
        assert!(!i.zero_cost_spanner_exists(4));
    }
    for k in 4..=6usize {
        let d = GwUndirected::build(3, k, random_disjoint(9, &mut rng));
        assert!(d.zero_cost_spanner_exists());
        let i = GwUndirected::build(3, k, random_intersecting(9, 1, &mut rng));
        assert!(!i.zero_cost_spanner_exists());
    }
}

#[test]
fn section_3_reduction_end_to_end_with_the_distributed_algorithm() {
    // Lemma 3.2 in action: run our *distributed weighted 2-spanner*
    // algorithm on G_S, convert the output to a vertex cover, and
    // compare against the exact optimum.
    let mut rng = StdRng::seed_from_u64(4);
    for seed in 0..3u64 {
        let g = gen::gnp_connected(9, 0.35, &mut rng);
        let gs = GsConstruction::build(&g);
        let run = min_2_spanner_weighted(&gs.graph, &gs.weights, &EngineConfig::seeded(seed));
        assert!(run.converged);
        assert!(is_k_spanner(&gs.graph, &run.spanner, 2));
        let (cover, normalized) = gs.spanner_to_cover(&run.spanner);
        assert!(is_vertex_cover(&g, &cover), "reduction must yield a cover");
        assert!(spanner_cost(&normalized, &gs.weights) <= spanner_cost(&run.spanner, &gs.weights));
        // The cover inherits the algorithm's approximation quality.
        let opt = exact_vertex_cover(&g).len();
        assert!(
            cover.len() <= 6 * opt.max(1),
            "cover {} vs optimum {opt}",
            cover.len()
        );
    }
}

#[test]
fn gs_optimum_equals_vc_optimum() {
    // Claim 3.1 as an exact statement, on several random graphs.
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..3 {
        let g = gen::gnp_connected(6, 0.4, &mut rng);
        let gs = GsConstruction::build(&g);
        let vc = exact_vertex_cover(&g).len() as u64;
        let (h, cost) =
            spanner_repro::core::seq::exact_min_2_spanner_weighted(&gs.graph, &gs.weights);
        assert!(is_k_spanner(&gs.graph, &h, 2));
        assert_eq!(cost, vc);
    }
}
