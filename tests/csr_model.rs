//! Property tests pinning the flat CSR graphs to a naive reference
//! model (PR 6).
//!
//! The CSR representation packs adjacency into contiguous
//! offset/neighbor/edge-id arrays plus a per-vertex *sorted* copy for
//! binary-search lookup. These tests rebuild the same graph as plain
//! nested structures — insertion-order adjacency lists and a `BTreeMap`
//! edge index, exactly what the pre-CSR representation stored — and
//! require every query to agree: degrees, neighbor iteration order,
//! edge-id lookup (hits, misses, and out-of-range), endpoints, and
//! common-neighbor tests.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use spanner_repro::graphs::{gen, DiGraph, EdgeId, Graph, VertexId};

/// The naive model: insertion-order adjacency plus a `BTreeMap` index
/// over normalized endpoint pairs.
struct NaiveGraph {
    n: usize,
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    index: BTreeMap<(VertexId, VertexId), EdgeId>,
    edges: Vec<(VertexId, VertexId)>,
}

impl NaiveGraph {
    fn new(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut model = NaiveGraph {
            n,
            adj: vec![Vec::new(); n],
            index: BTreeMap::new(),
            edges: edges.to_vec(),
        };
        for (e, &(u, v)) in edges.iter().enumerate() {
            model.adj[u].push((v, e));
            model.adj[v].push((u, e));
            model.index.insert((u.min(v), u.max(v)), e);
        }
        model
    }

    fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.index.get(&(u.min(v), u.max(v))).copied()
    }
}

/// The directed naive model: ordered-pair index plus out-/in-lists in
/// insertion order.
struct NaiveDiGraph {
    out: Vec<Vec<(VertexId, EdgeId)>>,
    inn: Vec<Vec<(VertexId, EdgeId)>>,
    index: BTreeMap<(VertexId, VertexId), EdgeId>,
    edges: Vec<(VertexId, VertexId)>,
}

impl NaiveDiGraph {
    fn new(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut model = NaiveDiGraph {
            out: vec![Vec::new(); n],
            inn: vec![Vec::new(); n],
            index: BTreeMap::new(),
            edges: edges.to_vec(),
        };
        for (e, &(u, v)) in edges.iter().enumerate() {
            model.out[u].push((v, e));
            model.inn[v].push((u, e));
            model.index.insert((u, v), e);
        }
        model
    }
}

/// A random undirected edge list over `n` vertices (insertion order is
/// part of the contract, so the shuffle matters).
fn undirected_edges() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..24, 0u64..1_000).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<(VertexId, VertexId)> = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .collect();
        // Shuffle endpoints and order so insertion order is arbitrary.
        for i in (1..all.len()).rev() {
            let j = rng.gen_range(0..=i);
            all.swap(i, j);
        }
        all.truncate(rng.gen_range(0..=all.len()));
        let all = all
            .into_iter()
            .map(|(u, v)| if rng.gen_bool(0.5) { (v, u) } else { (u, v) })
            .collect();
        (n, all)
    })
}

/// A random directed edge list (antiparallel pairs allowed).
fn directed_edges() -> impl Strategy<Value = (usize, Vec<(VertexId, VertexId)>)> {
    (2usize..20, 0u64..1_000).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<(VertexId, VertexId)> = (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v)))
            .filter(|&(u, v)| u != v)
            .collect();
        for i in (1..all.len()).rev() {
            let j = rng.gen_range(0..=i);
            all.swap(i, j);
        }
        all.truncate(rng.gen_range(0..=all.len()));
        (n, all)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR `Graph` answers every query exactly as the naive
    /// adjacency-list + BTreeMap model does.
    #[test]
    fn graph_matches_naive_model((n, edges) in undirected_edges()) {
        let g = Graph::from_edges(n, edges.iter().copied());
        let model = NaiveGraph::new(n, &edges);

        prop_assert_eq!(g.num_vertices(), model.n);
        prop_assert_eq!(g.num_edges(), model.edges.len());
        for (e, &(u, v)) in model.edges.iter().enumerate() {
            let (a, b) = g.endpoints(e);
            prop_assert_eq!((a.min(b), a.max(b)), (u.min(v), u.max(v)));
        }
        for v in 0..n {
            prop_assert_eq!(g.degree(v), model.adj[v].len());
            // Insertion order is the iteration contract.
            let got: Vec<_> = g.neighbors(v).collect();
            prop_assert_eq!(&got, &model.adj[v]);
            // The sorted slices hold the same set, ascending.
            let (snbrs, seids) = g.sorted_neighbor_slices(v);
            prop_assert!(snbrs.windows(2).all(|w| w[0] < w[1]));
            let mut sorted_model = model.adj[v].clone();
            sorted_model.sort_unstable();
            let resorted: Vec<_> = snbrs.iter().copied()
                .zip(seids.iter().copied())
                .collect();
            prop_assert_eq!(resorted, sorted_model);
        }
        // Lookup agreement on every pair, present or not, plus
        // out-of-range probes.
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(g.edge_id(u, v), model.edge_id(u, v));
                prop_assert_eq!(g.has_edge(u, v), model.edge_id(u, v).is_some());
            }
            prop_assert_eq!(g.edge_id(u, n + 3), None);
        }
        // Common-neighbor tests against the model's adjacency.
        for (e, &(u, v)) in model.edges.iter().enumerate() {
            for x in 0..n {
                let expected = model.edge_id(x, u).is_some() && model.edge_id(x, v).is_some();
                prop_assert_eq!(g.is_common_neighbor(x, e), expected);
            }
        }
    }

    /// CSR `DiGraph` likewise matches its naive model.
    #[test]
    fn digraph_matches_naive_model((n, edges) in directed_edges()) {
        let g = DiGraph::from_edges(n, edges.iter().copied());
        let model = NaiveDiGraph::new(n, &edges);

        prop_assert_eq!(g.num_edges(), model.edges.len());
        for (e, &(u, v)) in model.edges.iter().enumerate() {
            prop_assert_eq!(g.endpoints(e), (u, v));
        }
        for v in 0..n {
            prop_assert_eq!(g.out_degree(v), model.out[v].len());
            prop_assert_eq!(g.in_degree(v), model.inn[v].len());
            let got: Vec<_> = g.out_neighbors(v).collect();
            prop_assert_eq!(&got, &model.out[v]);
            let got: Vec<_> = g.in_neighbors(v).collect();
            prop_assert_eq!(&got, &model.inn[v]);
            let (snbrs, seids) = g.sorted_out_neighbor_slices(v);
            prop_assert!(snbrs.windows(2).all(|w| w[0] < w[1]));
            let mut sorted_out = model.out[v].clone();
            sorted_out.sort_unstable();
            let resorted: Vec<_> = snbrs.iter().copied()
                .zip(seids.iter().copied())
                .collect();
            prop_assert_eq!(resorted, sorted_out);
            let (snbrs, seids) = g.sorted_in_neighbor_slices(v);
            prop_assert!(snbrs.windows(2).all(|w| w[0] < w[1]));
            let mut sorted_in = model.inn[v].clone();
            sorted_in.sort_unstable();
            let resorted: Vec<_> = snbrs.iter().copied()
                .zip(seids.iter().copied())
                .collect();
            prop_assert_eq!(resorted, sorted_in);
        }
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(g.edge_id(u, v), model.index.get(&(u, v)).copied());
            }
            prop_assert_eq!(g.edge_id(u, n + 1), None);
        }
    }
}

/// Satellite micro-test: the binary-search `edge_id` over the sorted
/// CSR slice agrees with a reference `BTreeMap` index on dense-ish
/// random graphs — the lookup the old representation kept as an
/// explicit side map.
#[test]
fn binary_search_lookup_agrees_with_reference_index() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnp(40, 0.3, &mut rng);
        let reference: BTreeMap<(VertexId, VertexId), EdgeId> = g
            .edges()
            .map(|(e, u, v)| ((u.min(v), u.max(v)), e))
            .collect();
        for u in 0..g.num_vertices() {
            for v in 0..g.num_vertices() {
                let expected = reference.get(&(u.min(v), u.max(v))).copied();
                assert_eq!(g.edge_id(u, v), expected, "seed {seed} pair ({u}, {v})");
                assert_eq!(g.edge_id(v, u), expected, "seed {seed} pair ({v}, {u})");
            }
        }
    }
}
