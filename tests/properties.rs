//! Cross-crate property-based tests: the invariants the paper's
//! correctness arguments rest on, checked on randomized instances.

use proptest::prelude::*;

use spanner_repro::core::dist::{min_2_spanner, min_2_spanner_weighted, EngineConfig};
use spanner_repro::core::sparse::baswana_sen;
use spanner_repro::core::verify::{is_k_spanner, spanner_cost};
use spanner_repro::graphs::{gen, EdgeWeights, Graph};
use spanner_repro::lowerbounds::construction_g::{GConstruction, GParams};
use spanner_repro::lowerbounds::construction_gs::GsConstruction;
use spanner_repro::lowerbounds::disjointness::Instance;
use spanner_repro::lowerbounds::vc::is_vertex_cover;
use spanner_repro::mds::{is_dominating_set, run_mds_protocol};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A connected random graph described by (n, edge probability seed).
fn connected_graph() -> impl Strategy<Value = Graph> {
    (4usize..30, 0u64..1_000, 1u32..4).prop_map(|(n, seed, density)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp_connected(n, 0.08 * density as f64, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core guarantee: the distributed 2-spanner output is always a
    /// valid 2-spanner, converges, and never needs the Claim 4.4
    /// fallback.
    #[test]
    fn distributed_two_spanner_always_valid(g in connected_graph(), seed in 0u64..50) {
        let run = min_2_spanner(&g, &EngineConfig::seeded(seed));
        prop_assert!(run.converged);
        prop_assert!(is_k_spanner(&g, &run.spanner, 2));
        prop_assert_eq!(run.star_fallbacks, 0);
        // n-1 lower bound for connected graphs.
        prop_assert!(run.spanner.len() + 1 >= g.num_vertices());
    }

    /// Weighted runs never cost more than the whole graph and stay
    /// valid; zero-weight edges are always available.
    #[test]
    fn weighted_two_spanner_always_valid(g in connected_graph(), seed in 0u64..50) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = gen::random_weights(g.num_edges(), 0, 8, &mut rng);
        let run = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(seed));
        prop_assert!(run.converged);
        prop_assert!(is_k_spanner(&g, &run.spanner, 2));
        prop_assert!(spanner_cost(&run.spanner, &w) <= w.total());
    }

    /// Baswana–Sen always meets its stretch bound.
    #[test]
    fn baswana_sen_stretch(g in connected_graph(), k in 2usize..5, seed in 0u64..50) {
        let run = baswana_sen(&g, k, seed);
        prop_assert!(is_k_spanner(&g, &run.spanner, 2 * k - 1));
    }

    /// The MDS protocol always dominates and always stays CONGEST.
    #[test]
    fn mds_always_dominates_congest(g in connected_graph(), seed in 0u64..50) {
        let run = run_mds_protocol(&g, seed, 200_000);
        prop_assert!(run.completed);
        prop_assert!(is_dominating_set(&g, &run.dominating_set));
        prop_assert_eq!(run.metrics.cap_violations, Some(0));
    }

    /// Claim 2.2, property-tested: for every index pair, the bypass
    /// exists iff one of the input bits is 0 — and when it exists it
    /// has length ≤ 2 (checked inside bypass_within_2's BFS bound).
    #[test]
    fn claim_2_2_holds_for_arbitrary_inputs(
        bits_a in proptest::collection::vec(any::<bool>(), 9),
        bits_b in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let params = GParams { ell: 3, beta: 3 };
        let inst = Instance { a: bits_a.clone(), b: bits_b.clone() };
        let c = GConstruction::build(params, inst);
        for i in 0..3 {
            for r in 0..3 {
                let expected = !bits_a[i * 3 + r] || !bits_b[i * 3 + r];
                prop_assert_eq!(c.bypass_within_2(i, r), expected);
                prop_assert_eq!(c.bypass_any_length(i, r), expected);
            }
        }
        // Forced dense edges = β² per (1,1) pair.
        let bad = (0..9).filter(|&x| bits_a[x] && bits_b[x]).count();
        prop_assert_eq!(c.forced_d_edges(), 9 * bad);
    }

    /// Claim 3.1 round trip on arbitrary graphs: any spanner of G_S
    /// converts to a vertex cover of no larger cost.
    #[test]
    fn claim_3_1_round_trip(g in connected_graph()) {
        let gs = GsConstruction::build(&g);
        // The full graph is always a valid 2-spanner of G_S.
        let full = spanner_repro::graphs::EdgeSet::full(gs.graph.num_edges());
        let (cover, normalized) = gs.spanner_to_cover(&full);
        prop_assert!(is_vertex_cover(&g, &cover));
        prop_assert!(is_k_spanner(&gs.graph, &normalized, 2));
        prop_assert_eq!(
            spanner_cost(&normalized, &gs.weights),
            cover.len() as u64
        );
    }

    /// The unit-weight problem and the unweighted problem have the same
    /// set of valid outputs (sanity link between the two code paths).
    #[test]
    fn unit_weights_equivalent(g in connected_graph(), seed in 0u64..20) {
        let w = EdgeWeights::unit(&g);
        let run = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(seed));
        prop_assert!(is_k_spanner(&g, &run.spanner, 2));
        prop_assert_eq!(spanner_cost(&run.spanner, &w), run.spanner.len() as u64);
    }
}
