//! Cross-crate integration tests: full pipelines from workload
//! generation through distributed execution to independent
//! verification, exercising every crate of the workspace together.

use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::core::dist::{
    min_2_spanner, min_2_spanner_client_server, min_2_spanner_directed, min_2_spanner_weighted,
    EngineConfig,
};
use spanner_repro::core::protocol::run_two_spanner_protocol;
use spanner_repro::core::seq::{exact_min_2_spanner, greedy_2_spanner};
use spanner_repro::core::verify::{
    is_client_server_2_spanner, is_k_spanner, is_k_spanner_directed, spanner_cost,
};
use spanner_repro::graphs::{gen, EdgeWeights};
use spanner_repro::mds::{greedy_mds, is_dominating_set, run_mds_protocol};

#[test]
fn every_variant_on_one_workload() {
    let mut rng = StdRng::seed_from_u64(20_18);
    let g = gen::gnp_connected(50, 0.15, &mut rng);

    // Undirected unweighted.
    let und = min_2_spanner(&g, &EngineConfig::seeded(1));
    assert!(und.converged);
    assert!(is_k_spanner(&g, &und.spanner, 2));

    // Weighted.
    let w = gen::random_weights(g.num_edges(), 0, 6, &mut rng);
    let wtd = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(2));
    assert!(wtd.converged);
    assert!(is_k_spanner(&g, &wtd.spanner, 2));
    assert!(spanner_cost(&wtd.spanner, &w) <= w.total());

    // Client-server.
    let (clients, servers) = gen::client_server_split(&g, 0.5, 0.6, &mut rng);
    let cs = min_2_spanner_client_server(&g, &clients, &servers, &EngineConfig::seeded(3));
    assert!(cs.converged);
    assert!(is_client_server_2_spanner(
        &g,
        &clients,
        &servers,
        &cs.spanner
    ));

    // Directed (on a fresh digraph).
    let dg = gen::random_digraph_connected(40, 0.1, &mut rng);
    let dir = min_2_spanner_directed(&dg, &EngineConfig::seeded(4));
    assert!(dir.converged);
    assert!(is_k_spanner_directed(&dg, &dir.spanner, 2));

    // MDS over the same communication graph.
    let mds = run_mds_protocol(&g, 5, 50_000);
    assert!(mds.completed);
    assert!(is_dominating_set(&g, &mds.dominating_set));
    assert_eq!(mds.metrics.cap_violations, Some(0));
}

#[test]
fn engine_and_protocol_agree_on_validity_and_quality() {
    let mut rng = StdRng::seed_from_u64(55);
    for seed in 0..3u64 {
        let g = gen::gnp_connected(28, 0.3, &mut rng);
        let engine = min_2_spanner(&g, &EngineConfig::seeded(seed));
        let protocol = run_two_spanner_protocol(&g, seed, 100_000);
        assert!(engine.converged && protocol.completed);
        assert!(is_k_spanner(&g, &engine.spanner, 2));
        assert!(is_k_spanner(&g, &protocol.spanner, 2));
        // Same algorithm, different schedulers: sizes stay comparable.
        let (a, b) = (engine.spanner.len() as f64, protocol.spanner.len() as f64);
        assert!(a <= 2.5 * b && b <= 2.5 * a, "engine {a} vs protocol {b}");
    }
}

#[test]
fn guaranteed_ratio_holds_against_exact_optimum() {
    // Theorem 1.3's ratio is O(log m/n); on these small dense graphs
    // the constant is modest. We check a conservative envelope against
    // the exact optimum computed by branch and bound.
    let mut rng = StdRng::seed_from_u64(77);
    for seed in 0..5u64 {
        let g = gen::gnp_connected(10, 0.45, &mut rng);
        let opt = exact_min_2_spanner(&g).len() as f64;
        let run = min_2_spanner(&g, &EngineConfig::seeded(seed));
        let greedy = greedy_2_spanner(&g).len() as f64;
        let ratio = run.spanner.len() as f64 / opt;
        let log_bound = (g.num_edges() as f64 / g.num_vertices() as f64)
            .ln()
            .max(1.0);
        assert!(
            ratio <= 8.0 * log_bound,
            "seed {seed}: ratio {ratio:.2} exceeds envelope {:.2}",
            8.0 * log_bound
        );
        assert!(greedy / opt <= 8.0 * log_bound);
    }
}

#[test]
fn determinism_from_seed_across_the_stack() {
    let mut rng = StdRng::seed_from_u64(101);
    let g = gen::gnp_connected(35, 0.2, &mut rng);
    let a = min_2_spanner(&g, &EngineConfig::seeded(9));
    let b = min_2_spanner(&g, &EngineConfig::seeded(9));
    assert_eq!(a.spanner, b.spanner);
    assert_eq!(a.iterations, b.iterations);

    let pa = run_two_spanner_protocol(&g, 4, 100_000);
    let pb = run_two_spanner_protocol(&g, 4, 100_000);
    assert_eq!(pa.spanner, pb.spanner);
    assert_eq!(pa.metrics.total_words, pb.metrics.total_words);

    let ma = run_mds_protocol(&g, 3, 50_000);
    let mb = run_mds_protocol(&g, 3, 50_000);
    assert_eq!(ma.dominating_set, mb.dominating_set);
}

#[test]
fn unit_weighted_run_close_to_unweighted_run() {
    let mut rng = StdRng::seed_from_u64(303);
    let g = gen::gnp_connected(40, 0.2, &mut rng);
    let w = EdgeWeights::unit(&g);
    let unweighted = min_2_spanner(&g, &EngineConfig::seeded(6));
    let weighted = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(6));
    assert!(unweighted.converged && weighted.converged);
    // Identical problem: both valid, similar sizes.
    let (a, b) = (
        unweighted.spanner.len() as f64,
        weighted.spanner.len() as f64,
    );
    assert!(a <= 1.5 * b && b <= 1.5 * a, "{a} vs {b}");
}

#[test]
fn mds_quality_tracks_greedy_across_topologies() {
    let mut rng = StdRng::seed_from_u64(404);
    for g in [
        gen::grid(8, 8),
        gen::gnp_connected(80, 0.06, &mut rng),
        gen::preferential_attachment(80, 3, 2, &mut rng),
        gen::star(40),
    ] {
        let run = run_mds_protocol(&g, 8, 100_000);
        assert!(run.completed);
        assert!(is_dominating_set(&g, &run.dominating_set));
        let greedy = greedy_mds(&g).len().max(1);
        assert!(
            run.dominating_set.len() <= 5 * greedy,
            "protocol {} vs greedy {greedy}",
            run.dominating_set.len()
        );
    }
}
