//! Integration tests of the `dsa-service` serving subsystem: a live
//! TCP server on an ephemeral port driven concurrently by client
//! threads across all four variants, with outputs checked by the
//! independent verifiers, counters reconciled, and determinism
//! asserted across worker counts.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::core::dist::VariantInstance;
use spanner_repro::core::verify::{
    is_client_server_2_spanner, is_k_spanner, is_k_spanner_directed,
};
use spanner_repro::graphs::{gen, EdgeSet};
use spanner_repro::service::{Client, JobSpec, Server, Service, ServiceConfig};

/// One seeded spec per variant (plus a second undirected instance so
/// concurrency exceeds the variant count).
fn workload(seed: u64) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::gnp_connected(30, 0.22, &mut rng);
    let d = gen::random_digraph_connected(22, 0.1, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.65, 0.65, &mut rng);
    let g2 = gen::gnp_connected(26, 0.3, &mut rng);
    vec![
        JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 11),
        JobSpec::new(VariantInstance::Directed { graph: d }, 12),
        JobSpec::new(
            VariantInstance::Weighted {
                graph: g.clone(),
                weights: w,
            },
            13,
        ),
        JobSpec::new(
            VariantInstance::ClientServer {
                graph: g,
                clients,
                servers,
            },
            14,
        ),
        JobSpec::new(VariantInstance::Undirected { graph: g2 }, 15),
    ]
}

/// Checks a response against the independent verifier for its spec.
fn assert_valid(spec: &JobSpec, spanner_ids: &[usize]) {
    match &spec.instance {
        VariantInstance::Undirected { graph } => {
            let h = EdgeSet::from_iter(graph.num_edges(), spanner_ids.iter().copied());
            assert!(is_k_spanner(graph, &h, 2));
        }
        VariantInstance::Weighted { graph, .. } => {
            let h = EdgeSet::from_iter(graph.num_edges(), spanner_ids.iter().copied());
            assert!(is_k_spanner(graph, &h, 2));
        }
        VariantInstance::Directed { graph } => {
            let h = EdgeSet::from_iter(graph.num_edges(), spanner_ids.iter().copied());
            assert!(is_k_spanner_directed(graph, &h, 2));
        }
        VariantInstance::ClientServer {
            graph,
            clients,
            servers,
        } => {
            let h = EdgeSet::from_iter(graph.num_edges(), spanner_ids.iter().copied());
            assert!(h.is_subset_of(servers));
            assert!(is_client_server_2_spanner(graph, clients, servers, &h));
        }
    }
}

#[test]
fn wire_serves_variants_concurrently_and_counters_reconcile() {
    let server = Server::start(
        "127.0.0.1:0",
        &ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    let specs = workload(1);
    // One client thread per spec; each runs its spec twice (second
    // pass exercises the cache) and byte-compares the raw responses.
    std::thread::scope(|scope| {
        for spec in &specs {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let resp = client.run(spec).expect("run");
                assert!(
                    resp.converged,
                    "{:?} did not converge",
                    spec.instance.kind()
                );
                assert_eq!(resp.kind, spec.instance.kind());
                assert_valid(spec, &resp.spanner);
                let cold = spanner_repro::service::wire::encode_run_response(&resp);
                let warm = client.run_raw(spec).expect("cached run");
                assert_eq!(
                    cold.as_bytes(),
                    &warm[..],
                    "cache hit not byte-identical for {}",
                    spec.instance.kind()
                );
            });
        }
    });

    let m = server.service().metrics();
    // Every submission is classified exactly once: jobs = hits +
    // misses (+ coalesced joins, zero here or not depending on
    // scheduling — distinct specs per thread mean no cross-thread
    // duplicates, and the second pass of each thread is strictly
    // after its first, so nothing can coalesce).
    assert_eq!(m.coalesced, 0);
    assert_eq!(m.jobs_submitted, m.cache_hits + m.cache_misses);
    assert_eq!(m.cache_misses, specs.len() as u64);
    assert_eq!(m.cache_hits, specs.len() as u64);
    assert_eq!(m.jobs_completed, m.jobs_submitted);
    assert!(m.p95_latency_us >= m.p50_latency_us);
    server.shutdown();
}

#[test]
fn serving_is_deterministic_across_worker_counts() {
    let specs = workload(2);
    let results: Vec<Vec<Vec<usize>>> = [1usize, 4, 8]
        .iter()
        .map(|&workers| {
            let service = Arc::new(Service::new(&ServiceConfig {
                workers,
                ..ServiceConfig::default()
            }));
            // Submit everything concurrently to stress scheduling.
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| service.submit(spec).expect("submit"))
                .collect();
            handles
                .into_iter()
                .map(|h| h.wait().expect("wait").spanner)
                .collect()
        })
        .collect();
    assert_eq!(
        results[0], results[1],
        "1 worker vs 4 workers changed spanners"
    );
    assert_eq!(
        results[0], results[2],
        "1 worker vs 8 workers changed spanners"
    );
    // And the spanners are the real thing, not just consistent noise.
    for (spec, ids) in specs.iter().zip(&results[0]) {
        assert_valid(spec, ids);
    }
}

#[test]
fn wire_stats_and_ping_roundtrip() {
    let server = Server::start("127.0.0.1:0", &ServiceConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("ping");
    let specs = workload(3);
    client.run(&specs[0]).expect("run");
    let json = client.stats_json().expect("stats");
    assert!(json.contains("\"jobs_submitted\":1"), "stats: {json}");
    assert!(json.contains("\"cache_hit_rate\""), "stats: {json}");
    server.shutdown();
}

#[test]
fn per_job_timeout_is_honored_without_poisoning_the_job() {
    let service = Service::new(&ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let specs = workload(4);
    // Pin the single worker with a job, then give the next job a
    // deadline it cannot meet while queued.
    let pin = service.submit(&specs[0]).expect("submit");
    let mut hurried = specs[4].clone();
    hurried.timeout = Some(Duration::from_nanos(1));
    let doomed = service.submit(&hurried).expect("submit");
    match doomed.wait() {
        Err(spanner_repro::service::JobError::TimedOut) => {}
        Ok(_) => {} // single-core schedulers may still win the race
        Err(e) => panic!("expected TimedOut, got {e}"),
    }
    pin.wait().expect("pinned job");
    // The timed-out job is not poisoned: resubmitting yields the
    // normal result.
    let resp = service.run(&specs[4]).expect("resubmit");
    assert_valid(&specs[4], &resp.spanner);
}
