//! The sharded engine's two contracts, checked end to end:
//!
//! 1. **Shard-count determinism** — the spanner, iteration count,
//!    fallback count, and per-iteration stats of a run are
//!    byte-identical at 1, 4, and 8 shards, for every variant and
//!    under the ablation toggles (property-tested on random
//!    instances).
//! 2. **Incremental coverage** — the engine's `covered_delta`-driven
//!    uncovered-set maintenance lands on exactly the from-scratch
//!    `targets − covered(H)` recompute after *every* iteration,
//!    asserted inside real engine runs by a checking wrapper variant.
//!
//! Plus the in-engine cooperative cancellation: a raised flag stops a
//! run between iterations, both when pre-set and when flipped
//! mid-flight from another thread.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::core::dist::{
    run_engine, run_variant, ClientServerTwoSpanner, DirectedTwoSpanner, EngineConfig, SpannerRun,
    SpannerVariant, UndirectedTwoSpanner, VariantInstance, WeightedTwoSpanner,
};
use spanner_repro::core::star::LocalStars;
use spanner_repro::graphs::{gen, EdgeId, EdgeSet, Ratio, VertexId};

/// One random instance of every variant, from one (n, seed, density)
/// draw — so each property case exercises all four kinds.
fn all_variant_instances(n: usize, seed: u64, density: u32) -> Vec<VariantInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let p = 0.08 * density as f64;
    let g = gen::gnp_connected(n, p, &mut rng);
    let weights = gen::random_weights(g.num_edges(), 0, 6, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    let d = gen::random_digraph_connected(n.min(20), 0.1, &mut rng);
    vec![
        VariantInstance::Undirected { graph: g.clone() },
        VariantInstance::Directed { graph: d },
        VariantInstance::Weighted {
            graph: g.clone(),
            weights,
        },
        VariantInstance::ClientServer {
            graph: g,
            clients,
            servers,
        },
    ]
}

fn run_with_shards(instance: &VariantInstance, cfg: &EngineConfig, shards: usize) -> SpannerRun {
    let cfg = EngineConfig {
        num_shards: shards,
        ..cfg.clone()
    };
    run_variant(instance, &cfg)
}

fn assert_shard_invariant(instance: &VariantInstance, cfg: &EngineConfig) {
    let base = run_with_shards(instance, cfg, 1);
    assert!(base.converged, "{:?} did not converge", instance.kind());
    for shards in [4, 8] {
        let run = run_with_shards(instance, cfg, shards);
        let kind = instance.kind();
        assert_eq!(
            run.spanner, base.spanner,
            "{kind:?}: spanner differs at {shards} shards"
        );
        assert_eq!(
            run.iterations, base.iterations,
            "{kind:?}: iterations differ at {shards} shards"
        );
        assert_eq!(
            run.star_fallbacks, base.star_fallbacks,
            "{kind:?}: fallbacks differ at {shards} shards"
        );
        assert_eq!(
            run.stats, base.stats,
            "{kind:?}: stats differ at {shards} shards"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// 1 vs 4 vs 8 shards: byte-identical spanners and identical
    /// IterationStats for all four variants on random graphs.
    #[test]
    fn sharded_runs_are_byte_identical(
        n in 8usize..26,
        graph_seed in 0u64..500,
        density in 1u32..4,
        engine_seed in 0u64..30,
    ) {
        for instance in all_variant_instances(n, graph_seed, density) {
            assert_shard_invariant(&instance, &EngineConfig::seeded(engine_seed));
        }
    }

    /// The invariance also holds under the ablation toggles (they
    /// reroute the candidacy/star-choice paths the shards execute).
    #[test]
    fn sharded_runs_are_byte_identical_under_ablations(
        n in 8usize..20,
        graph_seed in 0u64..200,
        engine_seed in 0u64..20,
    ) {
        for instance in all_variant_instances(n, graph_seed, 2) {
            assert_shard_invariant(
                &instance,
                &EngineConfig {
                    monotone_stars: false,
                    ..EngineConfig::seeded(engine_seed)
                },
            );
            assert_shard_invariant(
                &instance,
                &EngineConfig {
                    round_densities: false,
                    ..EngineConfig::seeded(engine_seed)
                },
            );
        }
    }
}

// ---------------------------------------------------------------------
// Incremental-coverage regression: a wrapper variant that re-derives
// coverage from scratch after every delta the engine applies.
// ---------------------------------------------------------------------

/// Delegates everything to `inner`, but cross-checks every
/// `covered_delta` call: the union of the initial `covered()` result
/// and all deltas so far, restricted to the targets, must equal the
/// from-scratch recompute — exactly the invariant the engine's
/// uncovered-set maintenance rests on.
struct CoverageChecked<V: SpannerVariant> {
    inner: V,
    cumulative: Mutex<Option<EdgeSet>>,
    delta_checks: AtomicUsize,
}

impl<V: SpannerVariant> CoverageChecked<V> {
    fn new(inner: V) -> Self {
        CoverageChecked {
            inner,
            cumulative: Mutex::new(None),
            delta_checks: AtomicUsize::new(0),
        }
    }
}

impl<V: SpannerVariant> SpannerVariant for CoverageChecked<V> {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }

    fn num_items(&self) -> usize {
        self.inner.num_items()
    }

    fn targets(&self) -> EdgeSet {
        self.inner.targets()
    }

    fn preselected(&self) -> EdgeSet {
        self.inner.preselected()
    }

    fn covered(&self, h: &EdgeSet) -> EdgeSet {
        let covered = self.inner.covered(h);
        *self.cumulative.lock().unwrap() = Some(covered.clone());
        covered
    }

    fn covered_delta(&self, h: &EdgeSet, new_edges: &[EdgeId], out: &mut EdgeSet) {
        self.inner.covered_delta(h, new_edges, out);
        let mut guard = self.cumulative.lock().unwrap();
        let cumulative = guard.as_mut().expect("covered() runs before any delta");
        cumulative.union_with(out);
        // Deltas may over-report non-target items; the engine only
        // ever subtracts them from target sets, so compare modulo the
        // target mask.
        let mut masked = cumulative.clone();
        masked.intersect_with(&self.inner.targets());
        let mut expect = self.inner.covered(h);
        expect.intersect_with(&self.inner.targets());
        assert_eq!(
            masked, expect,
            "incremental coverage diverged from the recompute"
        );
        self.delta_checks.fetch_add(1, Ordering::Relaxed);
    }

    fn local_stars(&self, v: VertexId, uncovered: &EdgeSet) -> LocalStars {
        self.inner.local_stars(v, uncovered)
    }

    fn force_cover(&self, item: usize) -> Vec<EdgeId> {
        self.inner.force_cover(item)
    }

    fn comm_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.inner.comm_neighbors(v)
    }

    fn threshold(&self) -> Ratio {
        self.inner.threshold()
    }

    fn strict_termination(&self) -> bool {
        self.inner.strict_termination()
    }

    fn choice_exponent_offset(&self) -> i32 {
        self.inner.choice_exponent_offset()
    }
}

#[test]
fn incremental_coverage_matches_recompute_inside_real_runs() {
    let mut rng = StdRng::seed_from_u64(2018);
    let mut total_checks = 0usize;
    for trial in 0..4u64 {
        let g = gen::gnp_connected(24 + 2 * trial as usize, 0.22, &mut rng);
        let w = gen::random_weights(g.num_edges(), 0, 5, &mut rng);
        let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
        let d = gen::random_digraph_connected(18, 0.12, &mut rng);
        let cfg = EngineConfig::seeded(trial);

        let checked = CoverageChecked::new(UndirectedTwoSpanner::new(&g));
        assert!(run_engine(&checked, &cfg).converged);
        total_checks += checked.delta_checks.load(Ordering::Relaxed);

        let checked = CoverageChecked::new(WeightedTwoSpanner::new(&g, &w));
        assert!(run_engine(&checked, &cfg).converged);
        total_checks += checked.delta_checks.load(Ordering::Relaxed);

        let checked = CoverageChecked::new(ClientServerTwoSpanner::new(&g, &clients, &servers));
        assert!(run_engine(&checked, &cfg).converged);
        total_checks += checked.delta_checks.load(Ordering::Relaxed);

        let checked = CoverageChecked::new(DirectedTwoSpanner::new(&d));
        assert!(run_engine(&checked, &cfg).converged);
        total_checks += checked.delta_checks.load(Ordering::Relaxed);
    }
    assert!(
        total_checks > 0,
        "no iteration ever exercised the incremental path"
    );
}

// ---------------------------------------------------------------------
// In-engine cooperative cancellation.
// ---------------------------------------------------------------------

#[test]
fn preraised_cancel_flag_stops_before_the_first_iteration() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = gen::gnp_connected(30, 0.3, &mut rng);
    let mut cfg = EngineConfig::seeded(1);
    cfg.cancel = Some(Arc::new(AtomicBool::new(true)));
    let run = run_variant(&VariantInstance::Undirected { graph: g }, &cfg);
    assert!(run.cancelled);
    assert!(!run.converged);
    assert_eq!(run.iterations, 0);
    assert!(run.spanner.is_empty());
}

#[test]
fn cancel_flag_raised_mid_run_stops_between_iterations() {
    let mut rng = StdRng::seed_from_u64(6);
    // Big enough that the run is still iterating when the flag flips
    // (the same sizing the service's abort test relies on).
    let g = gen::gnp_connected(260, 0.08, &mut rng);
    let instance = VariantInstance::Undirected { graph: g };
    let full = run_variant(&instance, &EngineConfig::seeded(3));
    assert!(full.converged && !full.cancelled);

    let flag = Arc::new(AtomicBool::new(false));
    let mut cfg = EngineConfig::seeded(3);
    cfg.cancel = Some(Arc::clone(&flag));
    let run = std::thread::scope(|scope| {
        let worker = scope.spawn(|| run_variant(&instance, &cfg));
        std::thread::sleep(std::time::Duration::from_millis(40));
        flag.store(true, Ordering::Relaxed);
        worker.join().expect("engine thread")
    });
    assert!(run.cancelled, "flag raised mid-run must cancel");
    assert!(!run.converged);
    assert!(run.iterations < full.iterations);
    // The partial spanner is a prefix of the full run's work: every
    // completed iteration is identical to the uncancelled run's.
    assert_eq!(
        run.stats[..],
        full.stats[..run.iterations as usize],
        "completed iterations must match the uncancelled run"
    );
}
