//! Golden pins of `SpannerRun` results across the graph-representation
//! change (flat CSR, PR 6).
//!
//! The digests below were recorded from the pre-CSR adjacency-list
//! representation (`Vec<Vec<(VertexId, EdgeId)>>` + `BTreeMap` edge
//! index). The CSR refactor is required to be a *layout* change only:
//! identical `SpannerRun` output for every variant, seed, and shard
//! count. These tests fail if any future representation change alters
//! a single spanner bit, an iteration count, or a per-iteration stat.
//!
//! Regenerate (only when an *intentional* result change lands, e.g. a
//! new RNG stream) with:
//!
//! ```text
//! GOLDEN_CSR_PRINT=1 cargo test --test golden_csr -- --nocapture
//! ```

use dsa_core::dist::{run_variant, EngineConfig, SpannerRun, VariantInstance};
use dsa_graphs::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over a canonical byte rendering of every result-relevant
/// field of a run — the same identity the service's byte-identical
/// response contract rests on.
fn digest(run: &SpannerRun) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(run.spanner.universe() as u64);
    eat(run.spanner.len() as u64);
    for e in run.spanner.iter() {
        eat(e as u64);
    }
    eat(run.iterations);
    eat(u64::from(run.converged));
    eat(u64::from(run.cancelled));
    eat(run.star_fallbacks);
    for s in &run.stats {
        eat(s.candidates as u64);
        eat(s.accepted as u64);
        eat(s.added_edges as u64);
        eat(s.uncovered as u64);
    }
    h
}

/// The pinned instances: one per variant, sized to exercise several
/// iterations but stay fast in debug builds.
fn instances() -> Vec<(&'static str, VariantInstance)> {
    let mut rng = StdRng::seed_from_u64(2018);
    let g = gen::gnp_connected(48, 0.18, &mut rng);
    let weights = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let d = gen::random_digraph_connected(28, 0.14, &mut rng);
    let cs = gen::gnp_connected(40, 0.2, &mut rng);
    let (clients, servers) = gen::client_server_split(&cs, 0.6, 0.6, &mut rng);
    vec![
        (
            "undirected",
            VariantInstance::Undirected { graph: g.clone() },
        ),
        ("directed", VariantInstance::Directed { graph: d }),
        ("weighted", VariantInstance::Weighted { graph: g, weights }),
        (
            "client-server",
            VariantInstance::ClientServer {
                graph: cs,
                clients,
                servers,
            },
        ),
    ]
}

const SEEDS: [u64; 2] = [7, 41];
const SHARDS: [usize; 3] = [1, 4, 8];

/// variant name, engine seed, expected digest (shard-independent).
const GOLDEN: [(&str, u64, u64); 8] = [
    ("undirected", 7, 0xa5da0da2db115535),
    ("undirected", 41, 0xa6913ea8511e4109),
    ("directed", 7, 0x2da015c4cc7b8cda),
    ("directed", 41, 0x2da015c4cc7b8cda),
    ("weighted", 7, 0x81f053957ebfed81),
    ("weighted", 41, 0x86ade9dfb79800bf),
    ("client-server", 7, 0x494698cab8424971),
    ("client-server", 41, 0xf589bed195102f16),
];

#[test]
fn spanner_run_bytes_are_pinned_across_representations() {
    let print = std::env::var_os("GOLDEN_CSR_PRINT").is_some();
    let mut golden = GOLDEN.iter();
    for (name, instance) in instances() {
        for seed in SEEDS {
            let mut first: Option<(usize, u64)> = None;
            for shards in SHARDS {
                let cfg = EngineConfig {
                    num_shards: shards,
                    ..EngineConfig::seeded(seed)
                };
                let run = run_variant(&instance, &cfg);
                assert!(run.converged, "{name} seed {seed} did not converge");
                let d = digest(&run);
                match first {
                    None => first = Some((shards, d)),
                    Some((s0, d0)) => assert_eq!(
                        d, d0,
                        "{name} seed {seed}: digest differs between {s0} and {shards} shards"
                    ),
                }
            }
            let (_, d) = first.expect("at least one shard count");
            if print {
                println!("    (\"{name}\", {seed}, {d:#018x}),");
            } else {
                let &(gname, gseed, gd) = golden.next().expect("golden table too short");
                assert_eq!((gname, gseed), (name, seed), "golden table order");
                assert_eq!(
                    d, gd,
                    "{name} seed {seed}: SpannerRun digest changed — the graph \
                     representation altered engine output"
                );
            }
        }
    }
}
