//! Seed-determinism of the engine across all four variants: the same
//! `EngineConfig::seeded(s)` on the same instance must reproduce the
//! identical spanner edge set, iteration count, and stats — and the
//! outputs must pass the independent verifiers on instances with
//! `n >= 50`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use spanner_repro::core::dist::{
    min_2_spanner, min_2_spanner_client_server, min_2_spanner_directed, min_2_spanner_weighted,
    EngineConfig, SpannerRun,
};
use spanner_repro::core::verify::{
    is_client_server_2_spanner, is_k_spanner, is_k_spanner_directed,
};
use spanner_repro::graphs::gen;

/// Two runs of `f` under the same seeded config must agree exactly.
fn assert_identical(label: &str, f: impl Fn(&EngineConfig) -> SpannerRun) -> SpannerRun {
    let cfg = EngineConfig::seeded(2018);
    let a = f(&cfg);
    let b = f(&cfg);
    assert!(a.converged, "{label}: first run did not converge");
    assert!(b.converged, "{label}: second run did not converge");
    assert_eq!(a.spanner, b.spanner, "{label}: spanners differ across runs");
    assert_eq!(
        a.iterations, b.iterations,
        "{label}: iteration counts differ"
    );
    assert_eq!(
        a.star_fallbacks, b.star_fallbacks,
        "{label}: fallback counts differ"
    );
    assert_eq!(a.stats, b.stats, "{label}: per-iteration stats differ");
    a
}

#[test]
fn undirected_is_deterministic_per_seed() {
    let mut rng = StdRng::seed_from_u64(1);
    let g = gen::gnp_connected(55, 0.12, &mut rng);
    let run = assert_identical("undirected", |cfg| min_2_spanner(&g, cfg));
    assert!(is_k_spanner(&g, &run.spanner, 2));
}

#[test]
fn weighted_is_deterministic_per_seed() {
    let mut rng = StdRng::seed_from_u64(2);
    let g = gen::gnp_connected(55, 0.12, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let run = assert_identical("weighted", |cfg| min_2_spanner_weighted(&g, &w, cfg));
    assert!(is_k_spanner(&g, &run.spanner, 2));
}

#[test]
fn directed_is_deterministic_per_seed() {
    let mut rng = StdRng::seed_from_u64(3);
    let g = gen::random_digraph_connected(50, 0.08, &mut rng);
    let run = assert_identical("directed", |cfg| min_2_spanner_directed(&g, cfg));
    assert!(is_k_spanner_directed(&g, &run.spanner, 2));
}

#[test]
fn client_server_is_deterministic_per_seed() {
    let mut rng = StdRng::seed_from_u64(4);
    let g = gen::gnp_connected(55, 0.12, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    let run = assert_identical("client-server", |cfg| {
        min_2_spanner_client_server(&g, &clients, &servers, cfg)
    });
    assert!(run.spanner.is_subset_of(&servers));
    assert!(is_client_server_2_spanner(
        &g,
        &clients,
        &servers,
        &run.spanner
    ));
}

#[test]
fn different_seeds_may_differ_but_both_verify() {
    // Not a strict requirement of the algorithm, but a sanity check
    // that the seed actually reaches the random permutation values:
    // both runs must verify regardless.
    let mut rng = StdRng::seed_from_u64(5);
    let g = gen::gnp_connected(50, 0.2, &mut rng);
    let a = min_2_spanner(&g, &EngineConfig::seeded(1));
    let b = min_2_spanner(&g, &EngineConfig::seeded(2));
    assert!(a.converged && b.converged);
    assert!(is_k_spanner(&g, &a.spanner, 2));
    assert!(is_k_spanner(&g, &b.spanner, 2));
}
