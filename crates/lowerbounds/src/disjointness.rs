//! Set-disjointness and gap-disjointness instances (Section 2).
//!
//! Alice and Bob hold bit strings `a, b ∈ {0,1}^N`. The strings are
//! *disjoint* when no index carries a 1 in both; they are *far from
//! disjoint* when at least `N/12` indices do. Set-disjointness needs
//! `Ω(N)` bits even with randomization (Lemma 2.1); gap-disjointness
//! needs `Ω(N)` bits deterministically (Lemma 2.5).

use rand::Rng;

/// A 2-party input pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Alice's string.
    pub a: Vec<bool>,
    /// Bob's string.
    pub b: Vec<bool>,
}

impl Instance {
    /// Input length `N`.
    pub fn len(&self) -> usize {
        self.a.len()
    }

    /// Whether the instance is degenerate (length 0).
    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    /// Number of indices with `a_i = b_i = 1`.
    pub fn intersection_size(&self) -> usize {
        self.a
            .iter()
            .zip(&self.b)
            .filter(|&(&x, &y)| x && y)
            .count()
    }

    /// Whether the strings are disjoint.
    pub fn is_disjoint(&self) -> bool {
        self.intersection_size() == 0
    }

    /// Whether the strings are far from disjoint (≥ N/12 common 1s),
    /// the gap-disjointness promise of Lemma 2.5/2.6.
    pub fn is_far_from_disjoint(&self) -> bool {
        12 * self.intersection_size() >= self.len()
    }
}

/// A random disjoint instance: each index independently gets one of
/// `(0,0), (0,1), (1,0)`.
pub fn random_disjoint<R: Rng>(n: usize, rng: &mut R) -> Instance {
    let mut a = vec![false; n];
    let mut b = vec![false; n];
    for i in 0..n {
        match rng.gen_range(0..3) {
            0 => {}
            1 => a[i] = true,
            _ => b[i] = true,
        }
    }
    Instance { a, b }
}

/// A random instance with exactly `k ≥ 1` common 1s planted on top of
/// a random disjoint instance.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn random_intersecting<R: Rng>(n: usize, k: usize, rng: &mut R) -> Instance {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    let mut inst = random_disjoint(n, rng);
    let mut planted = 0;
    while planted < k {
        let i = rng.gen_range(0..n);
        if !(inst.a[i] && inst.b[i]) {
            inst.a[i] = true;
            inst.b[i] = true;
            planted += 1;
        }
    }
    inst
}

/// A random far-from-disjoint instance: at least `⌈N/6⌉` common 1s
/// (comfortably beyond the `N/12` promise).
pub fn random_far_from_disjoint<R: Rng>(n: usize, rng: &mut R) -> Instance {
    let k = n.div_ceil(6).max(1);
    random_intersecting(n, k, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generators_meet_their_promises() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [1usize, 5, 36, 144] {
            let d = random_disjoint(n, &mut rng);
            assert!(d.is_disjoint());
            assert_eq!(d.len(), n);

            let i = random_intersecting(n, 1, &mut rng);
            assert_eq!(i.intersection_size(), 1);
            assert!(!i.is_disjoint());

            let f = random_far_from_disjoint(n, &mut rng);
            assert!(f.is_far_from_disjoint(), "n = {n}");
        }
    }

    #[test]
    fn far_threshold_is_n_over_12() {
        let inst = Instance {
            a: vec![true; 12],
            b: {
                let mut b = vec![false; 12];
                b[0] = true;
                b
            },
        };
        assert!(inst.is_far_from_disjoint()); // 1 >= 12/12
        let inst2 = Instance {
            a: vec![true; 13],
            b: {
                let mut b = vec![false; 13];
                b[0] = true;
                b
            },
        };
        assert!(!inst2.is_far_from_disjoint()); // 12 < 13
    }
}
