//! Minimum vertex cover: verifier, greedy 2-approximation, and exact
//! branch and bound (ground truth for the Section-3 reduction).

use dsa_graphs::{Graph, VertexId};

/// Whether `cover` touches every edge of `g`.
///
/// # Example
///
/// ```
/// use dsa_graphs::gen::path;
/// use dsa_lowerbounds::vc::is_vertex_cover;
///
/// let g = path(4); // 0-1-2-3
/// assert!(is_vertex_cover(&g, &[1, 2]));
/// assert!(!is_vertex_cover(&g, &[0, 3]));
/// ```
pub fn is_vertex_cover(g: &Graph, cover: &[VertexId]) -> bool {
    let mut inside = vec![false; g.num_vertices()];
    for &v in cover {
        inside[v] = true;
    }
    g.edges().all(|(_, u, v)| inside[u] || inside[v])
}

/// Greedy maximal-matching 2-approximation of minimum vertex cover.
pub fn greedy_vertex_cover(g: &Graph) -> Vec<VertexId> {
    let mut matched = vec![false; g.num_vertices()];
    let mut cover = Vec::new();
    for (_, u, v) in g.edges() {
        if !matched[u] && !matched[v] {
            matched[u] = true;
            matched[v] = true;
            cover.push(u);
            cover.push(v);
        }
    }
    cover.sort_unstable();
    cover
}

/// Exact minimum vertex cover by branch and bound (small graphs only).
pub fn exact_vertex_cover(g: &Graph) -> Vec<VertexId> {
    let mut best: Vec<VertexId> = (0..g.num_vertices()).collect();
    let mut current: Vec<VertexId> = Vec::new();
    let mut covered_by = vec![0u32; g.num_edges()];
    branch(g, &mut current, &mut covered_by, &mut best);
    best.sort_unstable();
    best
}

fn branch(
    g: &Graph,
    current: &mut Vec<VertexId>,
    covered_by: &mut [u32],
    best: &mut Vec<VertexId>,
) {
    if current.len() >= best.len() {
        return;
    }
    // First uncovered edge: one endpoint must join the cover.
    let Some((_, u, v)) = g.edges().find(|&(e, _, _)| covered_by[e] == 0) else {
        *best = current.clone();
        return;
    };
    for pick in [u, v] {
        current.push(pick);
        for (_, e) in g.neighbors(pick) {
            covered_by[e] += 1;
        }
        branch(g, current, covered_by, best);
        current.pop();
        for (_, e) in g.neighbors(pick) {
            covered_by[e] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_on_known_graphs() {
        assert_eq!(exact_vertex_cover(&gen::star(7)).len(), 1);
        assert_eq!(exact_vertex_cover(&gen::path(5)).len(), 2);
        assert_eq!(exact_vertex_cover(&gen::cycle(6)).len(), 3);
        assert_eq!(exact_vertex_cover(&gen::cycle(7)).len(), 4);
        assert_eq!(exact_vertex_cover(&gen::complete(5)).len(), 4);
    }

    #[test]
    fn greedy_is_within_factor_two() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let g = gen::gnp_connected(14, 0.25, &mut rng);
            let exact = exact_vertex_cover(&g);
            let greedy = greedy_vertex_cover(&g);
            assert!(is_vertex_cover(&g, &exact));
            assert!(is_vertex_cover(&g, &greedy));
            assert!(greedy.len() <= 2 * exact.len());
        }
    }

    #[test]
    fn empty_graph_has_empty_cover() {
        let g = Graph::new(4);
        assert!(is_vertex_cover(&g, &[]));
        assert!(exact_vertex_cover(&g).is_empty());
        assert!(greedy_vertex_cover(&g).is_empty());
    }
}
