//! The Figure-3 reduction graph `G_S` (Section 3): approximating the
//! weighted 2-spanner is at least as hard as approximating minimum
//! vertex cover.
//!
//! Each vertex `v` of the MVC instance becomes a triangle
//! `v¹, v², v³` with `w({v¹,v²}) = 1` and weight-0 sides; each edge
//! `{v, u}` becomes `{v¹,u¹}` and `{v²,u²}` (weight 0) plus one
//! weight-2 diagonal chosen by id order. Claim 3.1: the minimum-cost
//! 2-spanner of `G_S` weighs exactly the minimum vertex cover of `G`,
//! and both directions of the translation are constructive — this
//! module implements them and the round-trip is property-tested.

use dsa_graphs::{EdgeSet, EdgeWeights, Graph, VertexId};

/// The built reduction instance.
#[derive(Clone, Debug)]
pub struct GsConstruction {
    /// The original MVC instance.
    pub original: Graph,
    /// The reduction graph on `3n` vertices.
    pub graph: Graph,
    /// Weights in `{0, 1, 2}`.
    pub weights: EdgeWeights,
}

impl GsConstruction {
    /// Vertex id of `v¹`.
    pub fn v1(v: VertexId) -> VertexId {
        3 * v
    }
    /// Vertex id of `v²`.
    pub fn v2(v: VertexId) -> VertexId {
        3 * v + 1
    }
    /// Vertex id of `v³`.
    pub fn v3(v: VertexId) -> VertexId {
        3 * v + 2
    }

    /// Builds `G_S` from an MVC instance.
    pub fn build(original: &Graph) -> GsConstruction {
        let n = original.num_vertices();
        let mut g = Graph::new(3 * n);
        let mut w = Vec::new();
        // Triangles.
        for v in 0..n {
            g.add_edge(Self::v1(v), Self::v2(v));
            w.push(1);
            g.add_edge(Self::v1(v), Self::v3(v));
            w.push(0);
            g.add_edge(Self::v2(v), Self::v3(v));
            w.push(0);
        }
        // Edge gadgets.
        for (_, a, b) in original.edges() {
            let (v, u) = (a.min(b), a.max(b)); // id order picks the diagonal
            g.add_edge(Self::v1(v), Self::v1(u));
            w.push(0);
            g.add_edge(Self::v2(v), Self::v2(u));
            w.push(0);
            g.add_edge(Self::v1(v), Self::v2(u));
            w.push(2);
        }
        GsConstruction {
            original: original.clone(),
            graph: g,
            weights: EdgeWeights::from_vec(w),
        }
    }

    /// The Section-3 remark variant: diagonals get weight **1** instead
    /// of 2, so all weights are 0/1. An α-approximation for the
    /// weighted 2-spanner on this graph yields a 2α-approximation for
    /// MVC (the normalization doubles at most the diagonal costs),
    /// which transfers the same lower bounds to 0/1 weights — the
    /// paper reads this as hardness of *2-spanner augmentation*.
    pub fn build_01(original: &Graph) -> GsConstruction {
        let mut gs = Self::build(original);
        let reweighted: Vec<u64> = gs.weights.iter().map(|(_, w)| w.min(1)).collect();
        gs.weights = EdgeWeights::from_vec(reweighted);
        gs
    }

    /// All weight-0 edges of `G_S`.
    pub fn zero_weight_edges(&self) -> EdgeSet {
        let mut s = EdgeSet::new(self.graph.num_edges());
        for (e, w) in self.weights.iter() {
            if w == 0 {
                s.insert(e);
            }
        }
        s
    }

    /// Claim 3.1, cover → spanner: all weight-0 edges plus `{v¹, v²}`
    /// for every cover vertex. Costs exactly `|cover|`.
    pub fn cover_to_spanner(&self, cover: &[VertexId]) -> EdgeSet {
        let mut h = self.zero_weight_edges();
        for &v in cover {
            let e = self
                .graph
                .edge_id(Self::v1(v), Self::v2(v))
                .expect("triangle edge");
            h.insert(e);
        }
        h
    }

    /// Claim 3.1, spanner → cover. First normalizes `h` to `h'` of no
    /// larger cost: keep all weight-0 edges and the weight-1 edges of
    /// `h`; replace every weight-2 diagonal `{v¹, u²} ∈ h` by the two
    /// weight-1 edges `{v¹, v²}` and `{u¹, u²}`. Then reads the cover
    /// off the weight-1 edges. Returns `(cover, normalized spanner)`.
    pub fn spanner_to_cover(&self, h: &EdgeSet) -> (Vec<VertexId>, EdgeSet) {
        let n = self.original.num_vertices();
        let mut hp = self.zero_weight_edges();
        let mut in_cover = vec![false; n];
        for e in h.iter() {
            if self.weights.get(e) == 0 {
                continue;
            }
            // Positive-weight edges are either triangle tops {v¹, v²}
            // or diagonals {v¹, u²}; distinguished structurally so the
            // 0/1-weight variant (see `build_01`) works too.
            let (a, b) = self.graph.endpoints(e);
            if a / 3 == b / 3 {
                // Triangle top.
                hp.insert(e);
                in_cover[a / 3] = true;
            } else {
                // Diagonal: replace by both triangle tops.
                for x in [a / 3, b / 3] {
                    let t = self
                        .graph
                        .edge_id(Self::v1(x), Self::v2(x))
                        .expect("triangle edge");
                    hp.insert(t);
                    in_cover[x] = true;
                }
            }
        }
        let cover = (0..n).filter(|&v| in_cover[v]).collect();
        (cover, hp)
    }
}

/// Simulation cost of Lemma 3.2: a distributed weighted-2-spanner
/// algorithm running in `T(n)` rounds yields an MVC algorithm in
/// `3·T(3n)` rounds (three messages may need to share one original
/// edge per simulated round).
pub fn mvc_rounds_from_spanner_rounds(spanner_rounds: u64) -> u64 {
    3 * spanner_rounds
}

/// The directed variant of the Section-3 remark: triangles become
/// `(v¹→v²), (v¹→v³), (v³→v²)` and each original edge contributes the
/// five directed edges `(v¹→u¹), (u¹→v¹), (v²→u²), (u²→v²)` and one
/// diagonal `(v¹→u²)` by id order, with the same weights as the
/// undirected case. The same lower bounds then apply to the directed
/// weighted 2-spanner problem.
#[derive(Clone, Debug)]
pub struct GsDirected {
    /// The original MVC instance.
    pub original: Graph,
    /// The directed reduction graph on `3n` vertices.
    pub graph: dsa_graphs::DiGraph,
    /// Weights in `{0, 1, 2}`.
    pub weights: EdgeWeights,
}

impl GsDirected {
    /// Builds the directed reduction graph.
    pub fn build(original: &Graph) -> GsDirected {
        let n = original.num_vertices();
        let mut g = dsa_graphs::DiGraph::new(3 * n);
        let mut w = Vec::new();
        for v in 0..n {
            g.add_edge(GsConstruction::v1(v), GsConstruction::v2(v));
            w.push(1);
            g.add_edge(GsConstruction::v1(v), GsConstruction::v3(v));
            w.push(0);
            g.add_edge(GsConstruction::v3(v), GsConstruction::v2(v));
            w.push(0);
        }
        for (_, a, b) in original.edges() {
            let (v, u) = (a.min(b), a.max(b));
            for (x, y) in [
                (GsConstruction::v1(v), GsConstruction::v1(u)),
                (GsConstruction::v1(u), GsConstruction::v1(v)),
                (GsConstruction::v2(v), GsConstruction::v2(u)),
                (GsConstruction::v2(u), GsConstruction::v2(v)),
            ] {
                g.add_edge(x, y);
                w.push(0);
            }
            g.add_edge(GsConstruction::v1(v), GsConstruction::v2(u));
            w.push(2);
        }
        GsDirected {
            original: original.clone(),
            graph: g,
            weights: EdgeWeights::from_vec(w),
        }
    }

    /// Cover → spanner, as in Claim 3.1: all weight-0 edges plus the
    /// triangle tops of cover vertices. Cost = |cover|.
    pub fn cover_to_spanner(&self, cover: &[VertexId]) -> EdgeSet {
        let mut h = EdgeSet::new(self.graph.num_edges());
        for (e, weight) in self.weights.iter() {
            if weight == 0 {
                h.insert(e);
            }
        }
        for &v in cover {
            let e = self
                .graph
                .edge_id(GsConstruction::v1(v), GsConstruction::v2(v))
                .expect("triangle top");
            h.insert(e);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vc::{exact_vertex_cover, greedy_vertex_cover, is_vertex_cover};
    use dsa_core::seq::exact_min_2_spanner_weighted;
    use dsa_core::verify::{is_k_spanner, spanner_cost};
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structure_counts() {
        let g = gen::cycle(5);
        let gs = GsConstruction::build(&g);
        assert_eq!(gs.graph.num_vertices(), 15);
        assert_eq!(gs.graph.num_edges(), 3 * 5 + 3 * 5);
        // Weight histogram: n ones, 2n + 2m zeros, m twos.
        let ones = gs.weights.iter().filter(|&(_, w)| w == 1).count();
        let twos = gs.weights.iter().filter(|&(_, w)| w == 2).count();
        assert_eq!(ones, 5);
        assert_eq!(twos, 5);
    }

    #[test]
    fn cover_to_spanner_is_valid_and_costs_cover_size() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..4 {
            let g = gen::gnp_connected(8, 0.35, &mut rng);
            let gs = GsConstruction::build(&g);
            let cover = exact_vertex_cover(&g);
            let h = gs.cover_to_spanner(&cover);
            assert!(is_k_spanner(&gs.graph, &h, 2), "HC must 2-span G_S");
            assert_eq!(spanner_cost(&h, &gs.weights), cover.len() as u64);
        }
    }

    #[test]
    fn spanner_to_cover_round_trip() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..4 {
            let g = gen::gnp_connected(8, 0.3, &mut rng);
            let gs = GsConstruction::build(&g);
            // Start from any valid spanner (greedy cover-based).
            let h = gs.cover_to_spanner(&greedy_vertex_cover(&g));
            let (cover, hp) = gs.spanner_to_cover(&h);
            assert!(is_vertex_cover(&g, &cover));
            assert!(is_k_spanner(&gs.graph, &hp, 2));
            assert_eq!(spanner_cost(&hp, &gs.weights), cover.len() as u64);
            assert!(spanner_cost(&hp, &gs.weights) <= spanner_cost(&h, &gs.weights));
        }
    }

    #[test]
    fn normalization_handles_weight_two_diagonals() {
        // A single edge: spanner using the weight-2 diagonal must
        // convert into both triangle tops.
        let g = Graph::from_edges(2, [(0, 1)]);
        let gs = GsConstruction::build(&g);
        let diag = gs
            .graph
            .edge_id(GsConstruction::v1(0), GsConstruction::v2(1))
            .unwrap();
        let mut h = gs.zero_weight_edges();
        h.insert(diag);
        assert!(is_k_spanner(&gs.graph, &h, 2));
        let (cover, hp) = gs.spanner_to_cover(&h);
        assert_eq!(cover, vec![0, 1]);
        assert!(is_k_spanner(&gs.graph, &hp, 2));
        assert_eq!(spanner_cost(&hp, &gs.weights), 2);
        assert!(!hp.contains(diag));
    }

    #[test]
    fn claim_3_1_equality_on_small_graphs() {
        // min-cost 2-spanner of G_S == min vertex cover of G, exactly.
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..3 {
            let g = gen::gnp_connected(5, 0.5, &mut rng);
            let gs = GsConstruction::build(&g);
            let vc = exact_vertex_cover(&g).len() as u64;
            let (_, spanner_cost_opt) = exact_min_2_spanner_weighted(&gs.graph, &gs.weights);
            assert_eq!(spanner_cost_opt, vc, "Claim 3.1 equality violated");
        }
    }

    #[test]
    fn simulation_round_formula() {
        assert_eq!(mvc_rounds_from_spanner_rounds(10), 30);
    }

    #[test]
    fn zero_one_variant_gives_factor_two_transfer() {
        // Section 3 remark: on the 0/1-weight G_S, the optimum is
        // sandwiched |VC|/2 ≤ w(H*) ≤ |VC|, and any spanner converts
        // to a cover of size ≤ 2·w(H).
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..3 {
            let g = gen::gnp_connected(6, 0.45, &mut rng);
            let gs01 = GsConstruction::build_01(&g);
            let vc = exact_vertex_cover(&g).len() as u64;
            let (h, cost) = exact_min_2_spanner_weighted(&gs01.graph, &gs01.weights);
            assert!(cost <= vc, "cover_to_spanner gives cost |C|");
            assert!(2 * cost >= vc, "normalization at most doubles");
            let (cover, _) = gs01.spanner_to_cover(&h);
            assert!(is_vertex_cover(&g, &cover));
            assert!(cover.len() as u64 <= 2 * cost);
        }
    }

    #[test]
    fn directed_reduction_cover_to_spanner_is_valid() {
        use dsa_core::verify::is_k_spanner_directed;
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..3 {
            let g = gen::gnp_connected(7, 0.4, &mut rng);
            let gsd = GsDirected::build(&g);
            // Structure: 3 triangle edges per vertex, 5 per edge.
            assert_eq!(
                gsd.graph.num_edges(),
                3 * g.num_vertices() + 5 * g.num_edges()
            );
            let cover = exact_vertex_cover(&g);
            let h = gsd.cover_to_spanner(&cover);
            assert!(is_k_spanner_directed(&gsd.graph, &h, 2));
            assert_eq!(spanner_cost(&h, &gsd.weights), cover.len() as u64);
        }
    }

    #[test]
    fn structural_normalization_ignores_weights() {
        // The normalization distinguishes tops from diagonals by
        // structure, so it behaves identically on both weightings.
        let g = gen::cycle(5);
        let gs2 = GsConstruction::build(&g);
        let gs01 = GsConstruction::build_01(&g);
        let full = EdgeSet::full(gs2.graph.num_edges());
        let (c2, _) = gs2.spanner_to_cover(&full);
        let (c01, _) = gs01.spanner_to_cover(&full);
        assert_eq!(c2, c01);
    }
}
