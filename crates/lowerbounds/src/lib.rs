//! Executable hardness machinery for Sections 2–3 of *Distributed
//! Spanner Approximation* (Censor-Hillel & Dory, PODC 2018).
//!
//! Lower bounds cannot be "run", but every combinatorial ingredient of
//! the proofs can be built and checked on concrete instances:
//!
//! * [`disjointness`] — set-disjointness / gap-disjointness inputs
//!   (the 2-party problems the reductions start from),
//! * [`construction_g`] — the Figure-1 graph `G(ℓ, β)` behind
//!   Theorems 1.1 and 2.8, with executable versions of Claim 2.2 and
//!   the Lemma 2.3 / 2.6 spanner-size dichotomies,
//! * [`construction_gw`] — the Figure-2 weighted graphs behind
//!   Theorems 2.9 and 2.10 (cost-0-spanner dichotomy),
//! * [`construction_gs`] — the Figure-3 MVC reduction behind the
//!   Section-3 bounds, with both directions of Claim 3.1,
//! * [`vc`] — vertex-cover verifier, greedy, and exact solver,
//! * [`two_party`] — the Alice/Bob cut simulation: run any protocol
//!   on a construction while metering the bits that cross the planted
//!   cut, plus the paper's predicted round lower-bound formulas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod construction_g;
pub mod construction_gs;
pub mod construction_gw;
pub mod disjointness;
pub mod two_party;
pub mod vc;
