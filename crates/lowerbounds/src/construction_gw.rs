//! The Figure-2 weighted lower-bound constructions (Section 2.3).
//!
//! In the weighted regime the dichotomy sharpens: all non-dense edges
//! get weight 0 and the dense edges weight 1, so a **cost-0** k-spanner
//! exists iff the planted inputs are disjoint — any approximation
//! ratio must preserve cost 0, which is what makes the Ω̃(n) bounds of
//! Theorems 2.9 (directed, k ≥ 4) and 2.10 (undirected, with a path
//! gadget stretching the construction to any k ≥ 4) work.

use dsa_graphs::traversal::{bfs_distances_directed, bfs_distances_in};
use dsa_graphs::{DiGraph, EdgeSet, EdgeWeights, Graph, VertexId};

use crate::disjointness::Instance;

/// The directed weighted construction `G_w(ℓ)` of Theorem 2.9.
#[derive(Clone, Debug)]
pub struct GwDirected {
    /// Block count; the instance has `ℓ²` bits and the graph `6ℓ`
    /// vertices.
    pub ell: usize,
    /// The graph.
    pub graph: DiGraph,
    /// Edge weights: 0 off the dense component, 1 on it.
    pub weights: EdgeWeights,
    /// The dense component `D = X2 × Y2`.
    pub d_edges: EdgeSet,
    /// The planted instance.
    pub instance: Instance,
}

impl GwDirected {
    /// Vertex ids: `x¹_i = i`, `x²_i = ℓ+i`, `y¹_i = 2ℓ+i`,
    /// `y²_i = 3ℓ+i`, `x_i = 4ℓ+i`, `y_i = 5ℓ+i`.
    pub fn x1(&self, i: usize) -> VertexId {
        i
    }
    /// See [`GwDirected::x1`].
    pub fn x2(&self, i: usize) -> VertexId {
        self.ell + i
    }
    /// See [`GwDirected::x1`].
    pub fn y1(&self, i: usize) -> VertexId {
        2 * self.ell + i
    }
    /// See [`GwDirected::x1`].
    pub fn y2(&self, i: usize) -> VertexId {
        3 * self.ell + i
    }
    /// See [`GwDirected::x1`].
    pub fn x_leaf(&self, i: usize) -> VertexId {
        4 * self.ell + i
    }
    /// See [`GwDirected::x1`].
    pub fn y_leaf(&self, i: usize) -> VertexId {
        5 * self.ell + i
    }

    /// Builds `G_w(ℓ)` for an instance with `ℓ²` bits.
    ///
    /// # Panics
    ///
    /// Panics if the instance length is not `ℓ²`.
    pub fn build(ell: usize, instance: Instance) -> GwDirected {
        assert_eq!(instance.len(), ell * ell, "instance must have ℓ² bits");
        let mut g = DiGraph::new(6 * ell);
        let mut weights = Vec::new();
        let mut d_ids = Vec::new();
        let this = |i: usize| i; // x1
        let _ = this;
        // Helper closures need the final ids; inline the layout.
        let x1 = |i: usize| i;
        let x2 = |i: usize| ell + i;
        let y1 = |i: usize| 2 * ell + i;
        let y2 = |i: usize| 3 * ell + i;
        let xl = |i: usize| 4 * ell + i;
        let yl = |i: usize| 5 * ell + i;

        for i in 0..ell {
            g.add_edge(x1(i), y1(i));
            weights.push(0);
            g.add_edge(x2(i), y2(i));
            weights.push(0);
            g.add_edge(xl(i), x1(i));
            weights.push(0);
            g.add_edge(y2(i), yl(i));
            weights.push(0);
        }
        for i in 0..ell {
            for j in 0..ell {
                let e = g.add_edge(xl(i), yl(j));
                weights.push(1);
                d_ids.push(e);
            }
        }
        for i in 0..ell {
            for j in 0..ell {
                if !instance.a[i * ell + j] {
                    g.add_edge(x1(i), x2(j));
                    weights.push(0);
                }
                if !instance.b[i * ell + j] {
                    g.add_edge(y1(i), y2(j));
                    weights.push(0);
                }
            }
        }
        let mut d_edges = EdgeSet::new(g.num_edges());
        for e in d_ids {
            d_edges.insert(e);
        }
        GwDirected {
            ell,
            graph: g,
            weights: EdgeWeights::from_vec(weights),
            d_edges,
            instance,
        }
    }

    /// Whether a cost-0 k-spanner exists for `k ≥ 4`: every dense edge
    /// `(x_i, y_j)` must be covered by a weight-0 directed path of
    /// length ≤ 4. Checked by BFS on the weight-0 subgraph.
    pub fn zero_cost_spanner_exists(&self, k: usize) -> bool {
        if k < 4 {
            return false;
        }
        let zero: EdgeSet = {
            let mut s = EdgeSet::new(self.graph.num_edges());
            for (e, w) in self.weights.iter() {
                if w == 0 {
                    s.insert(e);
                }
            }
            s
        };
        (0..self.ell).all(|i| {
            let dist = bfs_distances_directed(&self.graph, self.x_leaf(i), Some(&zero), k);
            (0..self.ell).all(|j| matches!(dist[self.y_leaf(j)], Some(d) if d <= k))
        })
    }

    /// Bob's side `V_B = Y1` for the cut meter.
    pub fn bob_side(&self) -> Vec<bool> {
        let mut side = vec![false; self.graph.num_vertices()];
        for i in 0..self.ell {
            side[self.y1(i)] = true;
            side[self.y2(i)] = true;
        }
        side
    }

    /// Cut size toward Bob (Θ(ℓ)).
    pub fn cut_size(&self) -> usize {
        let side = self.bob_side();
        self.graph
            .edges()
            .filter(|&(_, u, v)| side[u] != side[v])
            .count()
    }
}

/// The undirected weighted construction of Theorem 2.10: like
/// [`GwDirected`] but undirected, with the `y²_i — y_i` edge replaced
/// by a path of length `k−3` so longer detours cannot sneak in.
#[derive(Clone, Debug)]
pub struct GwUndirected {
    /// Block count.
    pub ell: usize,
    /// The stretch the construction is built for (k ≥ 4).
    pub k: usize,
    /// The graph.
    pub graph: Graph,
    /// Edge weights (0 except the dense component).
    pub weights: EdgeWeights,
    /// The dense component.
    pub d_edges: EdgeSet,
    /// The planted instance.
    pub instance: Instance,
}

impl GwUndirected {
    /// Builds the undirected construction for stretch `k ≥ 4`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 4` or the instance length is not `ℓ²`.
    pub fn build(ell: usize, k: usize, instance: Instance) -> GwUndirected {
        assert!(k >= 4, "the undirected bound needs k >= 4");
        assert_eq!(instance.len(), ell * ell, "instance must have ℓ² bits");
        // Layout: the 6ℓ base vertices, then (k-4)·ℓ path gadget
        // vertices appended.
        let base = 6 * ell;
        let gadget_len = k - 4; // intermediate vertices on each path
        let n = base + gadget_len * ell;
        let mut g = Graph::new(n);
        let mut weights = Vec::new();
        let mut d_ids = Vec::new();
        let x1 = |i: usize| i;
        let x2 = |i: usize| ell + i;
        let y1 = |i: usize| 2 * ell + i;
        let y2 = |i: usize| 3 * ell + i;
        let xl = |i: usize| 4 * ell + i;
        let yl = |i: usize| 5 * ell + i;
        let mid = |i: usize, t: usize| base + i * gadget_len + t;

        for i in 0..ell {
            g.add_edge(x1(i), y1(i));
            weights.push(0);
            g.add_edge(x2(i), y2(i));
            weights.push(0);
            g.add_edge(xl(i), x1(i));
            weights.push(0);
            // Path of length k-3 from y2_i to y_i.
            let mut prev = y2(i);
            for t in 0..gadget_len {
                g.add_edge(prev, mid(i, t));
                weights.push(0);
                prev = mid(i, t);
            }
            g.add_edge(prev, yl(i));
            weights.push(0);
        }
        for i in 0..ell {
            for j in 0..ell {
                let e = g.add_edge(xl(i), yl(j));
                weights.push(1);
                d_ids.push(e);
            }
        }
        for i in 0..ell {
            for j in 0..ell {
                if !instance.a[i * ell + j] {
                    g.add_edge(x1(i), x2(j));
                    weights.push(0);
                }
                if !instance.b[i * ell + j] {
                    g.add_edge(y1(i), y2(j));
                    weights.push(0);
                }
            }
        }
        let mut d_edges = EdgeSet::new(g.num_edges());
        for e in d_ids {
            d_edges.insert(e);
        }
        GwUndirected {
            ell,
            k,
            graph: g,
            weights: EdgeWeights::from_vec(weights),
            d_edges,
            instance,
        }
    }

    /// Whether a cost-0 k-spanner exists: every dense edge `{x_i, y_j}`
    /// needs a weight-0 path of length ≤ k.
    pub fn zero_cost_spanner_exists(&self) -> bool {
        let zero: EdgeSet = {
            let mut s = EdgeSet::new(self.graph.num_edges());
            for (e, w) in self.weights.iter() {
                if w == 0 {
                    s.insert(e);
                }
            }
            s
        };
        let xl = |i: usize| 4 * self.ell + i;
        let yl = |i: usize| 5 * self.ell + i;
        (0..self.ell).all(|i| {
            let dist = bfs_distances_in(&self.graph, xl(i), Some(&zero), self.k);
            (0..self.ell).all(|j| matches!(dist[yl(j)], Some(d) if d <= self.k))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjointness::{random_disjoint, random_intersecting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn directed_dichotomy() {
        let mut rng = StdRng::seed_from_u64(11);
        for ell in [2usize, 4, 6] {
            let d = GwDirected::build(ell, random_disjoint(ell * ell, &mut rng));
            assert_eq!(d.graph.num_vertices(), 6 * ell);
            assert!(d.zero_cost_spanner_exists(4), "ell={ell}");
            assert!(d.zero_cost_spanner_exists(6), "larger k only easier");

            let i = GwDirected::build(ell, random_intersecting(ell * ell, 1, &mut rng));
            assert!(!i.zero_cost_spanner_exists(4), "ell={ell}");
            assert!(
                !i.zero_cost_spanner_exists(10),
                "no long detours exist in the directed construction"
            );
        }
    }

    #[test]
    fn directed_cut_is_linear() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = GwDirected::build(5, random_disjoint(25, &mut rng));
        // Matching (2ℓ) + y2->y gadget (ℓ) cross the Y1 cut.
        assert_eq!(d.cut_size(), 3 * 5);
    }

    #[test]
    fn undirected_dichotomy_for_various_k() {
        let mut rng = StdRng::seed_from_u64(13);
        for k in 4..=7usize {
            let ell = 3;
            let d = GwUndirected::build(ell, k, random_disjoint(ell * ell, &mut rng));
            assert!(d.zero_cost_spanner_exists(), "k={k} disjoint");
            let i = GwUndirected::build(ell, k, random_intersecting(ell * ell, 1, &mut rng));
            assert!(
                !i.zero_cost_spanner_exists(),
                "k={k}: path gadget must block long undirected detours"
            );
        }
    }

    #[test]
    fn undirected_vertex_count_grows_with_k() {
        let mut rng = StdRng::seed_from_u64(4);
        let ell = 3;
        let g4 = GwUndirected::build(ell, 4, random_disjoint(9, &mut rng));
        let g7 = GwUndirected::build(ell, 7, random_disjoint(9, &mut rng));
        assert_eq!(g4.graph.num_vertices(), 6 * ell);
        assert_eq!(g7.graph.num_vertices(), 6 * ell + 3 * ell);
    }

    #[test]
    fn weights_are_zero_off_dense() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = GwDirected::build(3, random_disjoint(9, &mut rng));
        for (e, w) in d.weights.iter() {
            assert_eq!(w == 1, d.d_edges.contains(e));
        }
    }
}
