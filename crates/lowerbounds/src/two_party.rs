//! The Alice/Bob simulation argument, executable (Section 2, Lemma 2.4).
//!
//! The reduction works like this: Alice simulates everything outside
//! `Y1`, Bob simulates `Y1`; each CONGEST round costs them
//! `O(cut · log n)` bits. Solving disjointness needs `Ω(ℓ²)` bits,
//! the cut has `Θ(ℓ)` edges, so any algorithm whose output determines
//! disjointness needs `Ω(ℓ / log n)` rounds.
//!
//! This module makes all three ingredients measurable:
//!
//! * [`decide_disjointness_by_spanner`] — the Lemma 2.4 decision rule:
//!   an α-approximate spanner's `D`-edge count separates disjoint from
//!   intersecting inputs (E6 checks it never errs),
//! * [`FloodTopology`] — the trivial "everyone learns the graph"
//!   protocol, run over the metered cut to demonstrate that actually
//!   moving the `ℓ²` input bits across the `Θ(ℓ)` cut costs Θ(ℓ)
//!   rounds of full-bandwidth traffic,
//! * [`predicted_rounds_randomized`] / [`predicted_rounds_deterministic`]
//!   — the theorem formulas, for the harness tables.

use std::collections::BTreeSet;

use dsa_graphs::VertexId;
use dsa_runtime::{
    Metrics, Network, Outbox, Protocol, RoundCtx, Simulator, Word, WordReader, WordWriter,
};

use crate::construction_g::GConstruction;

/// The Lemma 2.4 decision rule, executed on a concrete construction:
/// compute the natural near-optimal spanner (non-`D` edges plus forced
/// `D` edges — any α-approximation is sandwiched between it and
/// `α` times it), then declare the inputs intersecting iff the spanner
/// keeps more than `α · t` dense edges, with `t = 7ℓβ`.
///
/// Returns `(declared_disjoint, d_edges_in_spanner, threshold)`.
pub fn decide_disjointness_by_spanner(c: &GConstruction, alpha: f64) -> (bool, usize, f64) {
    let spanner = c.minimal_spanner();
    let d_in_spanner = spanner.iter().filter(|&e| c.d_edges.contains(e)).count();
    let t = c.disjoint_spanner_bound() as f64;
    let declared_disjoint = (d_in_spanner as f64) <= alpha * t;
    (declared_disjoint, d_in_spanner, t)
}

/// The paper's randomized round lower bound
/// `Ω(√n / (√α · log n))` (Theorem 1.1), without the constant.
pub fn predicted_rounds_randomized(n: usize, alpha: f64) -> f64 {
    let n = n.max(2) as f64;
    n.sqrt() / (alpha.sqrt() * n.log2())
}

/// The paper's deterministic round lower bound
/// `Ω(n / (√α · log n))` (Theorem 2.8), without the constant.
pub fn predicted_rounds_deterministic(n: usize, alpha: f64) -> f64 {
    let n = n.max(2) as f64;
    n / (alpha.sqrt() * n.log2())
}

/// A trivial full-information protocol: every vertex floods every edge
/// it learns about (2 words per edge), until quiescence. Running it on
/// a lower-bound construction with the Bob cut metered shows how many
/// bits the naive approach pushes through the `Θ(ℓ)` cut.
#[derive(Clone, Debug, Default)]
pub struct FloodTopology;

/// Per-vertex state of [`FloodTopology`].
#[derive(Debug, Default)]
pub struct FloodNode {
    known: BTreeSet<(VertexId, VertexId)>,
    fresh: Vec<(VertexId, VertexId)>,
    quiet: bool,
}

impl Protocol for FloodTopology {
    type Node = FloodNode;

    fn init(&self, ctx: &mut RoundCtx<'_>) -> FloodNode {
        let mut node = FloodNode::default();
        for &u in ctx.neighbors {
            let e = (ctx.me.min(u), ctx.me.max(u));
            node.known.insert(e);
            node.fresh.push(e);
        }
        node
    }

    fn round(&self, node: &mut FloodNode, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
        for env in ctx.inbox {
            let mut r = WordReader::new(&env.words);
            for (a, b) in r.read_pair_list() {
                let e = (a as VertexId, b as VertexId);
                if node.known.insert(e) {
                    node.fresh.push(e);
                }
            }
        }
        if node.fresh.is_empty() {
            node.quiet = true;
            return;
        }
        node.quiet = false;
        let pairs: Vec<(Word, Word)> = node
            .fresh
            .drain(..)
            .map(|(a, b)| (a as Word, b as Word))
            .collect();
        let mut msg = WordWriter::new();
        msg.push_pair_list(&pairs);
        out.broadcast(ctx.neighbors, msg.finish());
    }

    fn is_done(&self, node: &FloodNode) -> bool {
        node.quiet
    }
}

/// Runs [`FloodTopology`] on the communication graph of a construction
/// with the Alice/Bob cut metered; returns the traffic metrics and
/// whether every vertex learned the full topology.
pub fn flood_with_metered_cut(c: &GConstruction, max_rounds: u64) -> (Metrics, bool) {
    let net = Network::from_digraph(&c.graph);
    let report = Simulator::new(&net, FloodTopology)
        .meter_cut(c.bob_side())
        .run(max_rounds);
    let m = c.graph.num_edges();
    // Antiparallel pairs merge in the undirected view, so full
    // knowledge means >= the underlying edge count.
    let (underlying, _) = c.graph.underlying();
    let all_learned = report
        .nodes
        .iter()
        .all(|n| n.known.len() >= underlying.num_edges().min(m));
    (report.metrics, all_learned && report.completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construction_g::GParams;
    use crate::disjointness::{random_disjoint, random_intersecting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decision_rule_is_always_correct() {
        let mut rng = StdRng::seed_from_u64(21);
        let params = GParams { ell: 3, beta: 6 };
        let alpha = 1.5;
        // β = qℓ with q = 2 > α·c/... the dichotomy needs β² > α·7ℓβ,
        // i.e. β > 10.5·ℓ... use a proper Theorem-1.1 parameterization.
        let params_ok = GParams::for_alpha(800, alpha);
        for _ in 0..2 {
            let d =
                GConstruction::build(params_ok, random_disjoint(params_ok.input_len(), &mut rng));
            let (decision, d_edges, _) = decide_disjointness_by_spanner(&d, alpha);
            assert!(decision, "disjoint declared intersecting");
            assert_eq!(d_edges, 0);

            let i = GConstruction::build(
                params_ok,
                random_intersecting(params_ok.input_len(), 1, &mut rng),
            );
            let (decision, d_edges, t) = decide_disjointness_by_spanner(&i, alpha);
            assert!(!decision, "intersecting declared disjoint");
            assert!(d_edges as f64 > alpha * t);
        }
        let _ = params;
    }

    #[test]
    fn flooding_learns_everything_and_crosses_the_cut() {
        let mut rng = StdRng::seed_from_u64(23);
        let params = GParams { ell: 2, beta: 3 };
        let c = GConstruction::build(params, random_disjoint(4, &mut rng));
        let (metrics, complete) = flood_with_metered_cut(&c, 10_000);
        assert!(complete);
        let cut_words = metrics.cut_words.expect("cut metered");
        // Bob must at least receive the Θ((ℓβ)²) dense edges: the
        // naive algorithm pushes them all through the Θ(ℓ) cut.
        assert!(
            cut_words as usize >= c.d_edges.len(),
            "cut words {cut_words} below |D| = {}",
            c.d_edges.len()
        );
    }

    #[test]
    fn predicted_bounds_are_monotone() {
        // More vertices -> more rounds; more approximation slack ->
        // fewer rounds.
        assert!(predicted_rounds_randomized(10_000, 2.0) > predicted_rounds_randomized(1_000, 2.0));
        assert!(
            predicted_rounds_randomized(10_000, 2.0) > predicted_rounds_randomized(10_000, 8.0)
        );
        assert!(
            predicted_rounds_deterministic(10_000, 2.0) > predicted_rounds_randomized(10_000, 2.0)
        );
    }
}
