//! The Figure-1 lower-bound construction `G(ℓ, β)` (Section 2).
//!
//! `G(ℓ, β)` is a directed graph whose minimum 5-spanner size depends
//! drastically on a planted set-disjointness instance: if Alice's and
//! Bob's strings are disjoint there is a spanner of `≤ 7ℓβ` edges
//! avoiding the dense component `D` entirely (Lemma 2.3); if some bit
//! is shared, `β²` edges of `D` are *forced* into every k-spanner,
//! k ≥ 5. The dense component lives wholly on Alice's side, so the cut
//! toward Bob's vertices `Y1` stays `Θ(ℓ)` — the asymmetry the proof
//! of Theorem 1.1 hinges on.

use dsa_graphs::traversal::bfs_distances_directed;
use dsa_graphs::{DiGraph, EdgeSet, VertexId};

use crate::disjointness::Instance;

/// Size parameters of `G(ℓ, β)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GParams {
    /// Number of index blocks (the disjointness instance has `ℓ²` bits).
    pub ell: usize,
    /// Block size of the dense component.
    pub beta: usize,
}

impl GParams {
    /// The parameter choice of Theorem 1.1 (randomized bound): given a
    /// target vertex count and an approximation ratio `α`, picks
    /// `q = ⌈αc⌉ + 1`, `ℓ = ⌊√(n/(cq))⌋`, `β = qℓ` with `c = 7`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters degenerate (`ℓ = 0`), which the
    /// theorem's requirement `α ≤ n/100` prevents.
    pub fn for_alpha(n_target: usize, alpha: f64) -> GParams {
        let c = 7.0;
        let q = (alpha * c).ceil() as usize + 1;
        let ell = ((n_target as f64) / (c * q as f64)).sqrt().floor() as usize;
        assert!(ell >= 1, "alpha too large for target size (need α ≤ n/100)");
        GParams { ell, beta: q * ell }
    }

    /// The parameter choice of Theorem 2.8 (deterministic bound, via
    /// gap-disjointness): `β = ⌈√(12αc)⌉ + 1`, `ℓ = ⌊n/(cβ)⌋`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters degenerate.
    pub fn for_alpha_deterministic(n_target: usize, alpha: f64) -> GParams {
        let c = 7.0;
        let beta = (12.0 * alpha * c).sqrt().ceil() as usize + 1;
        let ell = n_target / (7 * beta);
        assert!(ell >= 1, "alpha too large for target size");
        GParams { ell, beta }
    }

    /// The disjointness input length `N = ℓ²`.
    pub fn input_len(&self) -> usize {
        self.ell * self.ell
    }

    /// The vertex count `2ℓβ + 5ℓ` of `G(ℓ, β)`.
    pub fn num_vertices(&self) -> usize {
        2 * self.ell * self.beta + 5 * self.ell
    }
}

/// The built construction: graph, dense-component edge set, instance.
#[derive(Clone, Debug)]
pub struct GConstruction {
    /// The parameters used.
    pub params: GParams,
    /// The directed graph `G(ℓ, β)` with the input-dependent edges.
    pub graph: DiGraph,
    /// The edges of the dense component `D` (complete bipartite
    /// `X2 × Y2`, `(ℓβ)²` edges).
    pub d_edges: EdgeSet,
    /// The planted disjointness instance.
    pub instance: Instance,
}

impl GConstruction {
    /// Builds `G(ℓ, β)` for a disjointness instance of length `ℓ²`.
    ///
    /// # Panics
    ///
    /// Panics if the instance length is not `ℓ²`.
    pub fn build(params: GParams, instance: Instance) -> GConstruction {
        let (ell, beta) = (params.ell, params.beta);
        assert_eq!(
            instance.len(),
            params.input_len(),
            "instance must have ℓ² bits"
        );
        let mut g = DiGraph::new(params.num_vertices());

        // The matching X1 -> Y1.
        for i in 0..ell {
            g.add_edge(params.x1(i), params.y1(i));
            g.add_edge(params.x2(i), params.y2(i));
        }
        // The dense component D: complete bipartite X2 -> Y2.
        let mut d_ids = Vec::with_capacity(ell * beta * ell * beta);
        for i in 0..ell {
            for j in 0..beta {
                for r in 0..ell {
                    for s in 0..beta {
                        d_ids.push(g.add_edge(params.xg(i, j), params.yg(r, s)));
                    }
                }
            }
        }
        // Grid attachments.
        for i in 0..ell {
            for j in 0..beta {
                g.add_edge(params.xg(i, j), params.x1(i));
                g.add_edge(params.y3(i), params.yg(i, j));
            }
            g.add_edge(params.y2(i), params.y3(i));
        }
        // Input edges: (x1_i -> x2_j) iff a_ij = 0; (y1_i -> y2_j) iff
        // b_ij = 0.
        for i in 0..ell {
            for j in 0..ell {
                if !instance.a[i * ell + j] {
                    g.add_edge(params.x1(i), params.x2(j));
                }
                if !instance.b[i * ell + j] {
                    g.add_edge(params.y1(i), params.y2(j));
                }
            }
        }
        let mut d = EdgeSet::new(g.num_edges());
        for e in d_ids {
            d.insert(e);
        }
        GConstruction {
            params,
            graph: g,
            d_edges: d,
            instance,
        }
    }

    /// Bob's vertex side `V_B = Y1` (both `y¹` and `y²` rows), as a
    /// boolean mask for the cut meter.
    pub fn bob_side(&self) -> Vec<bool> {
        let mut side = vec![false; self.graph.num_vertices()];
        for i in 0..self.params.ell {
            side[self.params.y1(i)] = true;
            side[self.params.y2(i)] = true;
        }
        side
    }

    /// Number of edges crossing the Alice/Bob cut (the proof needs
    /// `Θ(ℓ)`; the exact count is `3ℓ` plus the `b`-dependent edges
    /// inside Bob's side don't cross).
    pub fn cut_size(&self) -> usize {
        let side = self.bob_side();
        self.graph
            .edges()
            .filter(|&(_, u, v)| side[u] != side[v])
            .count()
    }

    /// The bit-index pairs `(i, r)` with `a_ir = b_ir = 1` — exactly
    /// the pairs whose `β²` dense edges are forced into any spanner.
    pub fn bad_pairs(&self) -> Vec<(usize, usize)> {
        let ell = self.params.ell;
        (0..ell)
            .flat_map(|i| (0..ell).map(move |r| (i, r)))
            .filter(|&(i, r)| self.instance.a[i * ell + r] && self.instance.b[i * ell + r])
            .collect()
    }

    /// Whether a directed path `x¹_i → y²_r` of length ≤ 2 avoiding `D`
    /// exists (the reachability at the heart of Claim 2.2). Checked by
    /// BFS, not by consulting the input bits.
    pub fn bypass_within_2(&self, i: usize, r: usize) -> bool {
        let non_d = self.non_d_spanner();
        let dist = bfs_distances_directed(&self.graph, self.params.x1(i), Some(&non_d), 2);
        matches!(dist[self.params.y2(r)], Some(d) if d <= 2)
    }

    /// Whether `y²_r` is reachable from `x¹_i` at *any* length avoiding
    /// `D` (Claim 2.2's second half: when neither input edge exists,
    /// there is no such path at all).
    pub fn bypass_any_length(&self, i: usize, r: usize) -> bool {
        let non_d = self.non_d_spanner();
        let dist = bfs_distances_directed(&self.graph, self.params.x1(i), Some(&non_d), usize::MAX);
        dist[self.params.y2(r)].is_some()
    }

    /// The set of all non-`D` edges.
    pub fn non_d_spanner(&self) -> EdgeSet {
        let mut h = EdgeSet::full(self.graph.num_edges());
        h.subtract(&self.d_edges);
        h
    }

    /// Whether the non-`D` edge set is a k-spanner of the whole graph.
    /// Exact: a `D` edge `(x_{ij}, y_{rs})` is covered by non-`D` edges
    /// iff `x¹_i → y²_r` is reachable within 2 (the unique escape from
    /// the grid is via `x¹_i` and the unique entry is via `y³_r`), and
    /// the resulting path has length exactly 5.
    pub fn non_d_is_k_spanner(&self, k: usize) -> bool {
        if k < 5 {
            return false;
        }
        let ell = self.params.ell;
        (0..ell).all(|i| (0..ell).all(|r| self.bypass_within_2(i, r)))
    }

    /// The number of `D` edges that *every* k-spanner (k ≥ 5) must
    /// contain: `β²` per bad pair, verified by reachability rather than
    /// by trusting the input.
    pub fn forced_d_edges(&self) -> usize {
        let ell = self.params.ell;
        let beta = self.params.beta;
        let mut forced = 0;
        for i in 0..ell {
            for r in 0..ell {
                if !self.bypass_any_length(i, r) {
                    forced += beta * beta;
                }
            }
        }
        forced
    }

    /// A small valid k-spanner (k ≥ 5): all non-`D` edges plus exactly
    /// the forced `D` edges.
    pub fn minimal_spanner(&self) -> EdgeSet {
        let mut h = self.non_d_spanner();
        let (ell, beta) = (self.params.ell, self.params.beta);
        for i in 0..ell {
            for r in 0..ell {
                if self.bypass_any_length(i, r) {
                    continue;
                }
                for j in 0..beta {
                    for s in 0..beta {
                        let e = self
                            .graph
                            .edge_id(self.params.xg(i, j), self.params.yg(r, s))
                            .expect("dense edges exist");
                        h.insert(e);
                    }
                }
            }
        }
        h
    }

    /// The Lemma 2.3 bound on the disjoint-case spanner: `c·ℓ·β` with
    /// `c = 7` (valid when `ℓ ≤ β`).
    pub fn disjoint_spanner_bound(&self) -> usize {
        7 * self.params.ell * self.params.beta
    }

    /// The Lemma 2.6 bound on the disjoint-case spanner for the
    /// gap-disjointness regime (`β ≤ ℓ`): `c·ℓ²`.
    pub fn disjoint_spanner_bound_gap(&self) -> usize {
        7 * self.params.ell * self.params.ell
    }
}

impl GParams {
    /// Vertex id of `x¹_i`.
    pub fn x1(&self, i: usize) -> VertexId {
        i
    }
    /// Vertex id of `x²_i`.
    pub fn x2(&self, i: usize) -> VertexId {
        self.ell + i
    }
    /// Vertex id of `y¹_i`.
    pub fn y1(&self, i: usize) -> VertexId {
        2 * self.ell + i
    }
    /// Vertex id of `y²_i`.
    pub fn y2(&self, i: usize) -> VertexId {
        3 * self.ell + i
    }
    /// Vertex id of grid vertex `x_{ij}` (the `X2` block).
    pub fn xg(&self, i: usize, j: usize) -> VertexId {
        4 * self.ell + i * self.beta + j
    }
    /// Vertex id of grid vertex `y_{ij}` (the `Y2` block).
    pub fn yg(&self, i: usize, j: usize) -> VertexId {
        4 * self.ell + self.ell * self.beta + i * self.beta + j
    }
    /// Vertex id of `y³_i`.
    pub fn y3(&self, i: usize) -> VertexId {
        4 * self.ell + 2 * self.ell * self.beta + i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjointness::{random_disjoint, random_far_from_disjoint, random_intersecting};
    use dsa_core::verify::is_k_spanner_directed;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn structural_counts_match_the_paper() {
        let mut rng = StdRng::seed_from_u64(1);
        for (ell, beta) in [(2, 2), (3, 5), (4, 4)] {
            let params = GParams { ell, beta };
            let inst = random_disjoint(params.input_len(), &mut rng);
            let c = GConstruction::build(params, inst);
            assert_eq!(c.graph.num_vertices(), 2 * ell * beta + 5 * ell);
            assert_eq!(c.d_edges.len(), (ell * beta) * (ell * beta));
            assert_eq!(c.cut_size(), 3 * ell, "cut must be Θ(ℓ)");
        }
    }

    #[test]
    fn claim_2_2_bypass_iff_input_edge() {
        let mut rng = StdRng::seed_from_u64(3);
        let params = GParams { ell: 4, beta: 4 };
        for _ in 0..3 {
            let inst = random_intersecting(params.input_len(), 3, &mut rng);
            let c = GConstruction::build(params, inst.clone());
            for i in 0..4 {
                for r in 0..4 {
                    let has_edge = !inst.a[i * 4 + r] || !inst.b[i * 4 + r];
                    assert_eq!(c.bypass_within_2(i, r), has_edge, "pair ({i},{r})");
                    // Second half of Claim 2.2: no bypass of any length.
                    assert_eq!(c.bypass_any_length(i, r), has_edge, "pair ({i},{r})");
                }
            }
        }
    }

    #[test]
    fn lemma_2_3_disjoint_case() {
        let mut rng = StdRng::seed_from_u64(5);
        let params = GParams { ell: 3, beta: 6 }; // β ≥ ℓ as the lemma wants
        let inst = random_disjoint(params.input_len(), &mut rng);
        let c = GConstruction::build(params, inst);
        assert!(c.non_d_is_k_spanner(5));
        assert_eq!(c.forced_d_edges(), 0);
        let h = c.non_d_spanner();
        assert!(h.len() <= c.disjoint_spanner_bound(), "|H| = {}", h.len());
        // Full independent verification with the BFS spanner checker.
        assert!(is_k_spanner_directed(&c.graph, &h, 5));
        assert!(is_k_spanner_directed(&c.graph, &h, 7));
    }

    #[test]
    fn lemma_2_3_intersecting_case() {
        let mut rng = StdRng::seed_from_u64(7);
        let params = GParams { ell: 3, beta: 6 };
        let inst = random_intersecting(params.input_len(), 1, &mut rng);
        let c = GConstruction::build(params, inst);
        assert!(!c.non_d_is_k_spanner(5));
        assert_eq!(c.forced_d_edges(), params.beta * params.beta);
        // The minimal spanner (non-D + forced) is valid.
        let h = c.minimal_spanner();
        assert!(is_k_spanner_directed(&c.graph, &h, 5));
    }

    #[test]
    fn lemma_2_6_gap_case() {
        let mut rng = StdRng::seed_from_u64(9);
        let params = GParams { ell: 6, beta: 3 }; // β ≤ ℓ for the gap regime
        let inst = random_far_from_disjoint(params.input_len(), &mut rng);
        let c = GConstruction::build(params, inst);
        let forced = c.forced_d_edges();
        let bound = params.beta * params.beta * params.ell * params.ell / 12;
        assert!(forced >= bound, "forced {forced} below β²ℓ²/12 = {bound}");
    }

    #[test]
    fn parameter_choices_match_the_theorems() {
        let p = GParams::for_alpha(10_000, 2.0);
        // q = ⌈2·7⌉+1 = 15, ℓ = ⌊√(10000/105)⌋ = 9, β = 135.
        assert_eq!(p, GParams { ell: 9, beta: 135 });
        assert!(p.beta >= p.ell, "Theorem 1.1 needs β ≥ ℓ");

        let pd = GParams::for_alpha_deterministic(10_000, 2.0);
        // β = ⌈√168⌉+1 = 14, ℓ = ⌊10000/98⌋ = 102.
        assert_eq!(pd, GParams { ell: 102, beta: 14 });
        assert!(pd.beta <= pd.ell, "Theorem 2.8 needs β ≤ ℓ");
    }

    #[test]
    #[should_panic(expected = "ℓ² bits")]
    fn wrong_instance_length_panics() {
        let params = GParams { ell: 3, beta: 3 };
        let inst = crate::disjointness::Instance {
            a: vec![false; 4],
            b: vec![false; 4],
        };
        GConstruction::build(params, inst);
    }
}
