//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, exposing the API subset this workspace's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], and the bitset strategies.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation. Semantics differ from real
//! proptest in two deliberate ways: inputs are drawn from a fixed-seed
//! deterministic generator (so CI runs are reproducible), and failing
//! cases are reported without shrinking. Assertion macros and the
//! `proptest!` surface syntax are compatible, so the test sources would
//! compile unchanged against the real crate.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

/// Strategies: composable recipes for generating random test inputs.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a strategy-producing `f` and
        /// generates from the result.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*}
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RandomValue;
    use std::marker::PhantomData;

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: RandomValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::random(rng)
        }
    }

    /// A strategy generating uniform values of `T`.
    pub fn any<T: RandomValue>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A length specification for [`vec`]: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and
    /// whose length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Bit-set strategies.
pub mod bits {
    /// Read access to a set of bits.
    pub trait BitSetLike {
        /// Whether bit `i` is set.
        fn test(&self, i: usize) -> bool;
    }

    /// A simple growable bit set.
    #[derive(Clone, Debug, Default)]
    pub struct BitSet(Vec<bool>);

    impl BitSetLike for BitSet {
        fn test(&self, i: usize) -> bool {
            self.0.get(i).copied().unwrap_or(false)
        }
    }

    /// Strategies producing [`BitSet`]s.
    pub mod bitset {
        use super::BitSet;
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// The strategy returned by [`between`].
        pub struct Between {
            lo: usize,
            hi: usize,
        }

        impl Strategy for Between {
            type Value = BitSet;

            fn generate(&self, rng: &mut StdRng) -> BitSet {
                let mut bits = vec![false; self.hi];
                for bit in bits.iter_mut().take(self.hi).skip(self.lo) {
                    *bit = rng.gen_bool(0.5);
                }
                BitSet(bits)
            }
        }

        /// A strategy for bit sets whose set bits all lie in `lo..hi`.
        pub fn between(lo: usize, hi: usize) -> Between {
            assert!(lo <= hi, "between({lo}, {hi}) is empty");
            Between { lo, hi }
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro.
pub mod test_runner {
    use std::fmt;

    /// Configuration for a property test.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property-test case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// The common imports for writing property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// item becomes a `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                // Fixed seed: reproducible inputs on every run.
                let mut __rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    0x5EED_CA5E_u64,
                );
                for __case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = __result {
                        panic!("property failed at case {}: {}", __case, err);
                    }
                }
            }
        )*
    };
}

/// `assert!` for property tests: fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: `{:?} == {:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?} != {:?}`", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 1u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=5).contains(&y));
        }

        #[test]
        fn maps_compose(v in (0u64..10, 1u64..10).prop_map(|(a, b)| a * b)) {
            prop_assert!(v <= 81);
        }

        #[test]
        fn vec_sizes(ids in crate::collection::vec(0usize..5, 0..7)) {
            prop_assert!(ids.len() < 7);
            prop_assert!(ids.iter().all(|&i| i < 5));
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k = {k} out of range for n = {n}");
        }
    }

    #[test]
    fn bitsets_respect_bounds() {
        use crate::bits::{bitset, BitSetLike};
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let strat = bitset::between(2, 6);
        for _ in 0..100 {
            let bs = strat.generate(&mut rng);
            assert!(!bs.test(0) && !bs.test(1));
            assert!(!bs.test(6) && !bs.test(100));
        }
    }
}
