//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing exactly the 0.8-era API subset this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! convenience methods (`gen`, `gen_bool`, `gen_range`), and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead of the real crate. The
//! generator is xoshiro256++ seeded through SplitMix64 — not
//! cryptographic, but high-quality and, crucially, **deterministic**:
//! every algorithm in the workspace derives its randomness from an
//! explicit seed, and reproducibility from seeds is all the test suite
//! and the experiment harness rely on. The exact stream differs from
//! the real `rand::rngs::StdRng` (which is ChaCha12); no code in this
//! repository depends on the concrete stream, only on determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait RandomValue {
    /// Draws one value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*}
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// An unbiased draw from `0..span` (`1 <= span <= 2^64`) by rejection
/// sampling: values at or above the largest multiple of `span` are
/// re-drawn, so plain modulo bias never reaches callers.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!((1..=1u128 << 64).contains(&span));
    if span == 1u128 << 64 {
        return rng.next_u64() as u128;
    }
    let zone = (1u128 << 64) - ((1u128 << 64) % span);
    loop {
        let x = rng.next_u64() as u128;
        if x < zone {
            return x % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = uniform_below(rng, span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = uniform_below(rng, span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*}
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferred type.
    fn gen<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::random(self) < p
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The workspace's standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_divergence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let z: i32 = rng.gen_range(0..3);
            assert!((0..3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_and_mass() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
