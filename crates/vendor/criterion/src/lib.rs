//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate, exposing the API subset this workspace's
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `bench_with_input`, [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal harness. It has none of real criterion's
//! statistics: each benchmark is warmed up once and then timed over a
//! small fixed number of samples, reporting min / mean / max wall-clock
//! time per iteration. That is enough to compare orders of magnitude
//! between algorithm variants, which is all the experiment docs rely
//! on; swap in the real crate for publication-grade numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark (after one warm-up run).
const SAMPLES: usize = 5;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness always
    /// takes a small fixed number of samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmarks `f` with a fixed input under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the harness's fixed sample count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches and lazy statics).
        let _ = routine();
        self.samples.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!("{label:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]");
}

/// Bundles benchmark functions into one named runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(42), &42u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // Warm-up + SAMPLES timed runs.
        assert_eq!(runs, 1 + SAMPLES as u64);
    }
}
