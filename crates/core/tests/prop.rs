//! Property tests for the core algorithms: star selection invariants
//! (Section 4.1), engine/baseline sandwich bounds, and verifier
//! consistency.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsa_core::dist::{min_2_spanner, EngineConfig};
use dsa_core::seq::{exact_min_2_spanner, exact_min_k_spanner, greedy_2_spanner};
use dsa_core::star::{pow2_ratio, IdList, Leaf, LocalStars, Pair};
use dsa_core::verify::{is_k_spanner, uncovered_edges};
use dsa_graphs::{gen, Graph, Ratio};

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (3usize..max_n, 0u64..400, 1u32..5).prop_map(|(n, seed, d)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp_connected(n, 0.08 * d as f64, &mut rng)
    })
}

/// Random LocalStars instance: a handful of leaves and random pairs.
fn arb_local_stars() -> impl Strategy<Value = LocalStars> {
    (2usize..8, 0u64..300).prop_map(|(l, seed)| {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let leaves = (0..l)
            .map(|i| Leaf {
                vertex: 100 + i,
                weight: rng.gen_range(1..4),
                edges: IdList::one(i),
            })
            .collect();
        let mut pairs = Vec::new();
        let mut item = 0;
        for a in 0..l {
            for b in (a + 1)..l {
                if rng.gen_bool(0.5) {
                    pairs.push(Pair {
                        a,
                        b,
                        items: IdList::one(item),
                    });
                    item += 1;
                }
            }
        }
        LocalStars { leaves, pairs }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The flow-based densest star really is densest: no subset of
    /// leaves (exhaustively enumerated) beats it.
    #[test]
    fn densest_star_beats_all_subsets(ls in arb_local_stars()) {
        let Some((_, best)) = ls.densest(None) else {
            prop_assert!(ls.is_empty());
            return Ok(());
        };
        let l = ls.leaves.len();
        for mask in 1u32..(1 << l) {
            let member: Vec<bool> = (0..l).map(|i| mask >> i & 1 == 1).collect();
            if let Some(d) = ls.density_of(&member) {
                prop_assert!(d <= best, "subset {member:?} denser: {d} > {best}");
            }
        }
    }

    /// Section 4.1 invariants: the chosen star meets the ρ̃/4 density
    /// threshold, and with a previous star of the same key the choice
    /// shrinks it (Claim 4.4), never falling back.
    #[test]
    fn star_choice_meets_threshold_and_shrinks(ls in arb_local_stars()) {
        let Some(rho) = ls.max_density() else { return Ok(()); };
        let exp = rho.ceil_pow2_exponent().unwrap();
        let threshold = pow2_ratio(exp - 2);
        let Some(choice) = ls.choose_star(threshold, None) else { return Ok(()); };
        prop_assert!(!choice.fallback);
        let d = ls.density_of(&choice.member).unwrap_or_else(Ratio::zero);
        prop_assert!(d >= threshold, "chosen density {d} below {threshold}");

        // Re-choosing with the previous star must return a subset.
        let prev = choice.member.clone();
        let again = ls.choose_star(threshold, Some(&prev)).unwrap();
        prop_assert!(!again.fallback);
        prop_assert!(
            again.member.iter().zip(&prev).all(|(&m, &p)| !m || p),
            "re-choice must shrink the previous star"
        );
    }

    /// Exact ≤ greedy ≤ full graph, and all outputs verify.
    #[test]
    fn solution_sandwich(g in arb_connected(11)) {
        let opt = exact_min_2_spanner(&g);
        let greedy = greedy_2_spanner(&g);
        prop_assert!(is_k_spanner(&g, &opt, 2));
        prop_assert!(is_k_spanner(&g, &greedy, 2));
        prop_assert!(opt.len() <= greedy.len());
        prop_assert!(greedy.len() <= g.num_edges());
        prop_assert!(opt.len() + 1 >= g.num_vertices());
    }

    /// Exact k-spanners are monotone non-increasing in k.
    #[test]
    fn exact_monotone_in_k(g in arb_connected(9)) {
        let h2 = exact_min_k_spanner(&g, 2).len();
        let h3 = exact_min_k_spanner(&g, 3).len();
        prop_assert!(h3 <= h2);
    }

    /// The distributed engine's spanner, minus any single non-critical
    /// edge, is detected by the verifier when coverage breaks —
    /// i.e. the verifier and uncovered_edges agree.
    #[test]
    fn verifier_consistency(g in arb_connected(14), seed in 0u64..40) {
        let run = min_2_spanner(&g, &EngineConfig::seeded(seed));
        prop_assert!(run.converged);
        let unc = uncovered_edges(&g, &run.spanner, 2);
        prop_assert!(unc.is_empty());
        // Remove one spanner edge: uncovered_edges must agree with
        // is_k_spanner either way.
        let first = run.spanner.iter().next();
        if let Some(e) = first {
            let mut h = run.spanner.clone();
            h.remove(e);
            let unc = uncovered_edges(&g, &h, 2);
            prop_assert_eq!(unc.is_empty(), is_k_spanner(&g, &h, 2));
        }
    }

    /// An engine spanner never contains an edge the graph doesn't have
    /// (ids are within universe) and is minimal enough to be below m.
    #[test]
    fn engine_output_well_formed(g in arb_connected(20), seed in 0u64..40) {
        let run = min_2_spanner(&g, &EngineConfig::seeded(seed));
        prop_assert!(run.converged);
        prop_assert_eq!(run.spanner.universe(), g.num_edges());
        prop_assert!(run.spanner.len() <= g.num_edges());
        // Iteration stats are consistent.
        prop_assert_eq!(run.stats.len() as u64, run.iterations);
        if let Some(last) = run.stats.last() {
            prop_assert_eq!(last.uncovered, 0);
        }
    }

    /// Empty-pair local stars never produce a star.
    #[test]
    fn empty_local_stars(l in 1usize..6) {
        let ls = LocalStars {
            leaves: (0..l).map(|i| Leaf { vertex: i, weight: 1, edges: IdList::one(i) }).collect(),
            pairs: Vec::new(),
        };
        prop_assert!(ls.max_density().is_none());
        prop_assert!(ls.choose_star(Ratio::one(), None).is_none());
    }
}
