//! The variant-generic iteration engine for the Section-4 distributed
//! minimum 2-spanner scheme.
//!
//! All four problem variants of the paper (undirected, directed,
//! weighted, client-server) run the *same* iteration skeleton and only
//! differ in what an "item to cover" is, which edges a star leaf
//! contributes, and the density thresholds. [`SpannerVariant`]
//! abstracts exactly those differences; [`run_engine`] is the shared
//! skeleton:
//!
//! 1. every vertex builds its star search space over the still
//!    uncovered items ([`SpannerVariant::local_stars`]) and computes
//!    its densest-star density `ρ(v, H_v)` via the `dsa-flow` oracle;
//! 2. if the maximum density is at (or, for client-server, below) the
//!    variant's threshold, the remaining items are self-added
//!    ([`SpannerVariant::force_cover`]) and the run terminates;
//! 3. otherwise the vertices whose *rounded* density `ρ̃(v)` is maximal
//!    in their 2-neighborhood become candidates and choose a star of
//!    density at least `ρ̃(v)/4` (`ρ̃(v)/8` for the directed variant)
//!    by the Section 4.1 mechanism — re-choosing **shrink-only** while
//!    the rounded density is unchanged, which Claim 4.4 proves never
//!    fails (the engine counts [`SpannerRun::star_fallbacks`] so tests
//!    can confirm the claim empirically);
//! 4. every uncovered item votes for the first candidate 2-spanning it
//!    in random-permutation order, and a candidate whose star is backed
//!    by at least a `1/8` fraction of the items it spans (the
//!    [`EngineConfig::accept_denominator`]) adds the star to the
//!    spanner.
//!
//! The engine is the *centrally scheduled* rendition of the algorithm —
//! the same iterations as [`crate::protocol`], without the
//! message-level bookkeeping — which makes it the fast path for
//! experiments and the reference the protocol is tested against.
//!
//! # Sharded execution
//!
//! The per-vertex work inside an iteration is embarrassingly parallel —
//! exactly the per-vertex locality the paper's LOCAL model exposes.
//! With [`EngineConfig::num_shards`] > 1 the engine splits Step 1 (star
//! spaces + densest-star densities, one flow-oracle call per vertex,
//! the dominant cost) and Step 3's candidate construction into
//! contiguous vertex-range shards, and Step 4's vote collection into
//! item-range shards, each executed on scoped `std::thread`s.
//!
//! **Determinism contract:** the result is bit-identical for every
//! shard count. Three properties make that hold:
//!
//! * shard outputs are merged back in vertex (resp. item) order, and
//!   every cross-shard reduction (vote minima) is order-independent;
//! * all randomness is pre-drawn on the coordinating thread: the
//!   permutation values `r_v` for *all* `n` vertices are drawn from the
//!   seeded RNG in vertex order at the start of each iteration, so no
//!   RNG call ever happens inside a shard;
//! * shared state (`uncovered`, previous stars, densities) is read-only
//!   while shards run; mutations happen on the coordinating thread in
//!   vertex order between the parallel sections.
//!
//! # Incremental coverage
//!
//! Recomputing `uncovered = targets − covered(H)` from scratch costs
//! `O(Σ_v deg(v)²)` per iteration. Coverage is monotone (the spanner
//! only grows), so the engine instead maintains `uncovered`
//! incrementally via [`SpannerVariant::covered_delta`], which reports
//! only the items newly covered by the edges added this iteration —
//! `O(Σ_{new e} deg)` work. The final termination pass still recomputes
//! from scratch, so [`SpannerRun::converged`] is always grounded in a
//! full check.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsa_graphs::{EdgeId, EdgeSet, Ratio, VertexId};

use crate::star::{pow2_ratio, LocalStars, StarScratch};

/// One problem variant of the Section-4 scheme: what needs covering,
/// which stars exist, and at which density the iteration stops.
///
/// *Items* are the units of coverage (undirected edges, directed edges,
/// or client edges), identified by dense ids `0..num_items()`. *Edges*
/// are the spanner building blocks identified by the ids of the
/// underlying graph; [`crate::star::Leaf::edges`] and
/// [`SpannerVariant::force_cover`] speak edge ids, while
/// [`crate::star::Pair::items`] speaks item ids.
pub trait SpannerVariant {
    /// Number of vertices of the communication graph.
    fn num_vertices(&self) -> usize;

    /// Size of the item universe (coverage is tracked in `EdgeSet`s of
    /// this universe).
    fn num_items(&self) -> usize;

    /// The items that must be covered for the run to converge.
    fn targets(&self) -> EdgeSet;

    /// Edges placed in the spanner before the first iteration (the
    /// weighted variant pre-adopts weight-0 edges). The returned set's
    /// universe is the spanner-edge universe.
    fn preselected(&self) -> EdgeSet;

    /// The target items covered by the edge set `h` within stretch 2.
    fn covered(&self, h: &EdgeSet) -> EdgeSet;

    /// Inserts into `out` (at least) every item that is covered by `h`
    /// *because of* the edges `new_edges` — the increment the engine
    /// subtracts from its `uncovered` set after adding `new_edges` to
    /// the spanner this iteration.
    ///
    /// `new_edges` are already members of `h` when this is called.
    /// Implementations may over-report items that were covered before
    /// (subtracting an already-covered item is a no-op) but must never
    /// miss a newly covered one, and must never report an uncovered
    /// item. The default falls back to the full recompute, so custom
    /// variants stay correct without implementing the fast path.
    fn covered_delta(&self, h: &EdgeSet, new_edges: &[EdgeId], out: &mut EdgeSet) {
        let _ = new_edges;
        out.union_with(&self.covered(h));
    }

    /// The star search space of `v` with respect to the still
    /// `uncovered` items: the potential leaves and the uncovered items
    /// each leaf pair 2-spans.
    fn local_stars(&self, v: VertexId, uncovered: &EdgeSet) -> LocalStars;

    /// The edges self-added to cover `item` at termination (step 7 of
    /// the paper's algorithm): the item's own edge, or — for a
    /// client-server item that is not itself a server — a covering
    /// server 2-path.
    fn force_cover(&self, item: usize) -> Vec<EdgeId>;

    /// Sorted neighbor list of `v` in the communication graph, used for
    /// the 2-neighborhood density aggregation of the candidacy rule.
    fn comm_neighbors(&self, v: VertexId) -> &[VertexId];

    /// The candidacy/termination density threshold: 1 for the
    /// unweighted variants, the largest power of two at most `1/w_max`
    /// for the weighted variant, and 1/2 for client-server.
    fn threshold(&self) -> Ratio;

    /// Whether termination requires the maximum density to drop
    /// *strictly below* [`SpannerVariant::threshold`] (client-server)
    /// rather than to it.
    fn strict_termination(&self) -> bool {
        false
    }

    /// The star-choice threshold is `ρ̃(v) / 2^offset`: 2 in the
    /// undirected analysis (Section 4.1), 3 for the directed variant
    /// (Section 4.3.1).
    fn choice_exponent_offset(&self) -> i32 {
        2
    }
}

/// Tunable parameters of [`run_engine`]. The defaults are the paper's
/// constants; the ablation experiments override individual fields via
/// struct update syntax on [`EngineConfig::seeded`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Seed of the engine's random permutation values `r_v`.
    pub seed: u64,
    /// A candidate is accepted when it collects at least
    /// `|C_v| / accept_denominator` votes (paper: 8).
    pub accept_denominator: u64,
    /// Use the Section 4.1 monotone (shrink-only) star memory; `false`
    /// re-chooses an arbitrary densest star every iteration (ablation
    /// A2).
    pub monotone_stars: bool,
    /// Round densities to powers of two for candidacy and thresholds;
    /// `false` compares exact densities (ablation A3).
    pub round_densities: bool,
    /// Safety cap on iterations; every iteration covers at least one
    /// item, so runs converge long before this on any real input.
    pub max_iterations: u64,
    /// Vertex/item shards executed in parallel inside each iteration
    /// (see the module docs). `1` runs fully inline on the calling
    /// thread; `0` uses one shard per available core; requests are
    /// clamped to `max(64, cores)` so an untrusted value can never
    /// demand an absurd thread count. The result is bit-identical for
    /// every value, so this is execution policy, not part of a job's
    /// identity.
    pub num_shards: usize,
    /// Cooperative cancellation: when set, the engine checks the flag
    /// between iterations and returns early (with
    /// [`SpannerRun::cancelled`] set) once it is `true`. Like
    /// `num_shards`, this is execution policy and never part of a
    /// job's identity.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Record per-iteration, per-section, per-shard wall times into
    /// [`SpannerRun::trace`]. Timing reads clocks only — it never
    /// touches the RNG stream or the merge order — so the spanner,
    /// stats, and every other result field stay byte-identical with
    /// the toggle on or off. Like `num_shards`, this is execution
    /// policy and never part of a job's identity.
    pub collect_timings: bool,
}

impl EngineConfig {
    /// The paper's configuration with the given seed.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            accept_denominator: 8,
            monotone_stars: true,
            round_densities: true,
            max_iterations: 1_000_000,
            num_shards: 1,
            cancel: None,
            collect_timings: false,
        }
    }

    /// Whether the cooperative-cancellation flag is set and raised.
    pub fn is_cancelled(&self) -> bool {
        self.cancel
            .as_ref()
            .is_some_and(|flag| flag.load(Ordering::Relaxed))
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::seeded(0)
    }
}

/// Per-iteration accounting of a [`run_engine`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IterationStats {
    /// Vertices that announced a candidate star this iteration.
    pub candidates: usize,
    /// Candidates whose star collected enough votes.
    pub accepted: usize,
    /// Spanner edges newly added this iteration.
    pub added_edges: usize,
    /// Target items still uncovered after this iteration.
    pub uncovered: usize,
}

/// Result of a [`run_engine`] run.
#[derive(Clone, Debug)]
pub struct SpannerRun {
    /// The computed spanner, as a set of edge ids.
    pub spanner: EdgeSet,
    /// Iterations executed (equals `stats.len()`).
    pub iterations: u64,
    /// Whether every target item was covered before the iteration cap.
    pub converged: bool,
    /// Whether the run stopped early because
    /// [`EngineConfig::cancel`] was raised (the spanner is then the
    /// partial state at the last completed iteration).
    pub cancelled: bool,
    /// How often the Claim-4.4 shrink-only re-choice failed and a fresh
    /// star was chosen; the claim says this stays 0.
    pub star_fallbacks: u64,
    /// Per-iteration accounting.
    pub stats: Vec<IterationStats>,
    /// Per-iteration wall-clock trace; `Some` only when
    /// [`EngineConfig::collect_timings`] was set. Timing data is
    /// observational: it is excluded from the store and wire
    /// encodings, from job identity, and from every result
    /// comparison — the deterministic payload of a run is unchanged
    /// by its presence.
    pub trace: Option<EngineTrace>,
}

impl SpannerRun {
    /// The LOCAL rounds this run would cost as a message-passing
    /// protocol: [`crate::protocol::PHASES`] rounds per iteration.
    pub fn local_rounds(&self) -> u64 {
        self.iterations * crate::protocol::PHASES
    }
}

/// Wall-clock accounting of where a [`run_engine`] call spent its time,
/// accumulated across all iterations. Deliberately *not* part of
/// [`SpannerRun`]: timings are non-deterministic, and `SpannerRun` is
/// the byte-stable identity the service caches and ships.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Step 1: per-vertex star spaces + densest-star flow calls.
    pub step1: Duration,
    /// Step 3: candidacy aggregation and star choice.
    pub step3: Duration,
    /// Step 4: vote collection and acceptance.
    pub step4: Duration,
    /// Coverage maintenance: `covered_delta` subtraction plus the
    /// from-scratch termination recompute.
    pub coverage: Duration,
}

impl PhaseTimings {
    /// Total time across the four instrumented phases.
    pub fn total(&self) -> Duration {
        self.step1 + self.step3 + self.step4 + self.coverage
    }
}

/// Wall-clock timing of one sharded engine section in one iteration.
#[derive(Clone, Debug, Default)]
pub struct SectionTiming {
    /// Wall time of the whole section as seen by the coordinating
    /// thread (includes merge work and any serial pre/post loops).
    pub wall: Duration,
    /// Per-shard wall times of the parallel portion, in shard (range)
    /// order. The spread across entries is the shard imbalance.
    pub shards: Vec<Duration>,
}

/// Wall-clock timing of one engine iteration, by section.
///
/// The termination pass (Step 2 self-adds plus the final from-scratch
/// coverage recompute) appears as a final entry whose `step3`/`step4`
/// sections are empty.
#[derive(Clone, Debug, Default)]
pub struct IterationTiming {
    /// Step 1: star spaces + densest-star flow calls (sharded over
    /// vertex ranges).
    pub step1: SectionTiming,
    /// Step 3: candidacy aggregation and star choice (sharded over
    /// vertex ranges).
    pub step3: SectionTiming,
    /// Step 4: vote collection and acceptance (sharded over item
    /// ranges).
    pub step4: SectionTiming,
    /// Coverage maintenance on the coordinating thread.
    pub coverage: Duration,
}

/// The full per-iteration timing trace of a run, collected when
/// [`EngineConfig::collect_timings`] is set. Purely observational —
/// see [`SpannerRun::trace`].
#[derive(Clone, Debug, Default)]
pub struct EngineTrace {
    /// One entry per executed iteration (`iterations.len()` equals
    /// `SpannerRun::stats.len()`).
    pub iterations: Vec<IterationTiming>,
}

/// The `(r_v, vertex, candidate index)` key an item backs in Step 4:
/// the minimum key over the candidates 2-spanning the item wins its
/// vote, matching the permutation order of the paper.
type VoteKey = (u64, VertexId, usize);

/// A candidate vertex of one iteration: its chosen star and the random
/// permutation value that orders the vote.
struct Candidate {
    v: VertexId,
    member: Vec<bool>,
    spanned: Vec<usize>,
    rv: u64,
}

/// The per-vertex candidacy output of the parallel Step-3 phase,
/// before the coordinating thread merges it (in vertex order) into the
/// candidate list and the star memory.
struct ChosenStar {
    member: Vec<bool>,
    spanned: Vec<usize>,
    fallback: bool,
}

/// Balanced contiguous index ranges covering `0..len`, at most one per
/// index. Empty when `len == 0`.
fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, len.max(1));
    let base = len / shards;
    let rem = len % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let end = start + base + usize::from(i < rem);
        if start < end {
            ranges.push(start..end);
        }
        start = end;
    }
    ranges
}

/// Runs `f` on each shard's index range (scoped threads when more than
/// one shard) and concatenates the outputs in range order — the merge
/// step that keeps sharded results identical to the inline run.
///
/// Also returns each shard's wall time, in range order, so the engine
/// trace can expose shard imbalance. The two clock reads per shard are
/// noise next to the work a shard does, and the timing never feeds
/// back into the outputs or their order.
fn sharded_chunks<T, F>(len: usize, shards: usize, f: F) -> (Vec<T>, Vec<Duration>)
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let ranges = shard_ranges(len, shards);
    if ranges.len() <= 1 {
        let t = Instant::now(); // dsa-lint: allow(DSA-D002, reason="shard timings feed SpannerRun::trace only, never encoded output")
        let out = f(0..len);
        return (out, vec![t.elapsed()]);
    }
    let mut out = Vec::with_capacity(len);
    let mut times = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let f = &f;
                scope.spawn(move || {
                    let t = Instant::now(); // dsa-lint: allow(DSA-D002, reason="shard timings feed SpannerRun::trace only, never encoded output")
                    let chunk = f(range);
                    (chunk, t.elapsed())
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((chunk, elapsed)) => {
                    out.extend(chunk);
                    times.push(elapsed);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    (out, times)
}

/// Per-index parallel map with order-preserving merge (see
/// [`sharded_chunks`]).
fn sharded_map<T, F>(len: usize, shards: usize, f: F) -> (Vec<T>, Vec<Duration>)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    sharded_chunks(len, shards, |range| range.map(&f).collect())
}

/// Hard ceiling on engine shards (threads per sharded section).
/// Shard counts can come from untrusted requests over the service's
/// wire protocol; past `max(64, cores)` more shards only add spawn
/// overhead, and an absurd value must not translate into an absurd
/// thread count. Results are shard-count-independent, so clamping is
/// always safe.
const MAX_SHARDS: usize = 64;

/// Resolves [`EngineConfig::num_shards`]: `0` means one shard per
/// available core, and any request is clamped to
/// `max(64, available cores)`.
fn resolve_shards(requested: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    match requested {
        0 => cores,
        k => k.min(MAX_SHARDS.max(cores)),
    }
}

/// Runs the Section-4 iteration skeleton for `variant`.
///
/// The result is a pure function of `variant` and the result-relevant
/// configuration fields (seed, denominator, toggles, iteration cap) —
/// independent of [`EngineConfig::num_shards`], which only controls
/// how many threads execute each iteration.
///
/// # Panics
///
/// Panics if `cfg.accept_denominator == 0`.
pub fn run_engine<V: SpannerVariant + Sync>(variant: &V, cfg: &EngineConfig) -> SpannerRun {
    run_engine_timed(variant, cfg).0
}

/// [`run_engine`] plus per-phase wall-clock accounting — the
/// instrumentation the `exp_engine_scaling` bench reports. The
/// [`SpannerRun`] is byte-identical to the untimed entry point.
///
/// # Panics
///
/// Panics if `cfg.accept_denominator == 0`.
pub fn run_engine_timed<V: SpannerVariant + Sync>(
    variant: &V,
    cfg: &EngineConfig,
) -> (SpannerRun, PhaseTimings) {
    assert!(
        cfg.accept_denominator >= 1,
        "accept denominator must be positive"
    );
    let n = variant.num_vertices();
    let num_items = variant.num_items();
    let shards = resolve_shards(cfg.num_shards);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut h = variant.preselected();
    let targets = variant.targets();
    let mut uncovered = targets.clone();
    uncovered.subtract(&variant.covered(&h));

    let threshold = variant.threshold();
    let offset = variant.choice_exponent_offset();
    // Star memory for the Claim-4.4 monotone choice: the key (rounded
    // or exact density) under which the star was chosen, plus the star.
    let mut prev_star: Vec<Option<(Ratio, Vec<bool>)>> = vec![None; n];
    let mut stats: Vec<IterationStats> = Vec::new();
    let mut star_fallbacks = 0u64;
    let mut converged = uncovered.is_empty();
    let mut cancelled = false;
    let mut timings = PhaseTimings::default();
    let mut trace_iters: Vec<IterationTiming> = Vec::new();

    // Hot-loop buffers, allocated once and refilled per iteration.
    let mut keys: Vec<Ratio> = vec![Ratio::zero(); n];
    let mut max1: Vec<Ratio> = vec![Ratio::zero(); n];
    let mut max2: Vec<Ratio> = vec![Ratio::zero(); n];
    let mut rvs: Vec<u64> = vec![0; n];
    let mut new_edges: Vec<EdgeId> = Vec::new();
    let mut delta = EdgeSet::new(num_items);
    // Star spaces and densities carried across iterations. A vertex's
    // LocalStars is a pure function of the (static) graph and the
    // uncovered items inside its neighborhood, and `uncovered` only
    // ever shrinks — so the stored space is still exact unless one of
    // its pair items got covered since it was built. Checking that is
    // a bitset probe per stored pair, vastly cheaper than the flow
    // oracle the recompute would run.
    let mut locals: Vec<LocalStars> = Vec::new();
    let mut rho: Vec<Ratio> = Vec::new();
    // The unrestricted densest star each Step 1 found — ρ(v)'s
    // witness. Step 3 seeds fresh star choices with it instead of
    // re-running the flow oracle.
    let mut best: Vec<Option<(Vec<bool>, Ratio)>> = Vec::new();

    while !converged && (stats.len() as u64) < cfg.max_iterations {
        if cfg.is_cancelled() {
            cancelled = true;
            break;
        }

        // Step 1 (sharded): per-vertex star spaces and densest-star
        // densities — one flow-oracle call per stale vertex, the
        // dominant cost of an iteration.
        // A vertex's star space plus the densest star found in it.
        type StarState = (LocalStars, Option<(Vec<bool>, Ratio)>);
        let t_step1 = Instant::now(); // dsa-lint: allow(DSA-D002, reason="step timing is trace-only diagnostics, never encoded output")
        let step1_shards: Vec<Duration>;
        if locals.is_empty() {
            let (per_vertex, shard_times): (Vec<StarState>, _) = sharded_map(n, shards, |v| {
                let ls = variant.local_stars(v, &uncovered);
                let best = ls.densest(None);
                (ls, best)
            });
            step1_shards = shard_times;
            (locals, best) = per_vertex.into_iter().unzip();
            rho = best
                .iter()
                .map(|b| b.as_ref().map_or_else(Ratio::zero, |&(_, d)| d))
                .collect();
        } else {
            let (refreshed, shard_times): (Vec<Option<StarState>>, _) = {
                let locals = &locals;
                let uncovered = &uncovered;
                sharded_map(n, shards, move |v| {
                    let fresh = locals[v]
                        .pairs
                        .iter()
                        .all(|p| p.items.iter().all(|&item| uncovered.contains(item)));
                    if fresh {
                        return None;
                    }
                    let ls = variant.local_stars(v, uncovered);
                    let best = ls.densest(None);
                    Some((ls, best))
                })
            };
            step1_shards = shard_times;
            for (v, refreshed) in refreshed.into_iter().enumerate() {
                if let Some((ls, b)) = refreshed {
                    locals[v] = ls;
                    rho[v] = b.as_ref().map_or_else(Ratio::zero, |&(_, d)| d);
                    best[v] = b;
                }
            }
        }
        let global_max = rho.iter().copied().max().unwrap_or_else(Ratio::zero);
        let step1_wall = t_step1.elapsed();
        timings.step1 += step1_wall;

        // Step 2: termination — self-add what no dense-enough star
        // covers (the centrally scheduled analogue of every vertex
        // seeing only below-threshold densities nearby).
        let finished = if variant.strict_termination() {
            global_max < threshold
        } else {
            global_max <= threshold
        };
        if finished {
            let leftovers: Vec<usize> = uncovered.iter().collect();
            let mut added = 0usize;
            for item in leftovers {
                for e in variant.force_cover(item) {
                    added += usize::from(h.insert(e));
                }
            }
            // Final pass: recompute from scratch so `converged` rests
            // on a full check, not the incremental bookkeeping.
            let t_cov = Instant::now(); // dsa-lint: allow(DSA-D002, reason="coverage timing is trace-only diagnostics, never encoded output")
            uncovered = targets.clone();
            uncovered.subtract(&variant.covered(&h));
            let cov_wall = t_cov.elapsed();
            timings.coverage += cov_wall;
            if cfg.collect_timings {
                trace_iters.push(IterationTiming {
                    step1: SectionTiming {
                        wall: step1_wall,
                        shards: step1_shards,
                    },
                    coverage: cov_wall,
                    ..IterationTiming::default()
                });
            }
            stats.push(IterationStats {
                candidates: 0,
                accepted: 0,
                added_edges: added,
                uncovered: uncovered.len(),
            });
            converged = uncovered.is_empty();
            break;
        }

        // Step 3: candidacy. Densities are rounded up to powers of two
        // (unless ablated) and aggregated twice over the closed
        // neighborhood, giving each vertex the maximum over its
        // 2-neighborhood.
        let t_step3 = Instant::now(); // dsa-lint: allow(DSA-D002, reason="step timing is trace-only diagnostics, never encoded output")
        for v in 0..n {
            keys[v] = if cfg.round_densities {
                rho[v]
                    .ceil_pow2_exponent()
                    .map(pow2_ratio)
                    .unwrap_or_else(Ratio::zero)
            } else {
                rho[v]
            };
        }
        for v in 0..n {
            max1[v] = variant
                .comm_neighbors(v)
                .iter()
                .fold(keys[v], |m, &u| m.max(keys[u]));
        }
        for v in 0..n {
            max2[v] = variant
                .comm_neighbors(v)
                .iter()
                .fold(max1[v], |m, &u| m.max(max1[u]));
        }

        // Pre-draw the permutation values for *all* vertices in vertex
        // order, on this thread: the RNG stream is then independent of
        // which vertices end up candidates and of the shard schedule.
        let rv_max = (n.max(2) as u64).saturating_pow(4);
        for rv in rvs.iter_mut() {
            *rv = rng.gen_range(1..=rv_max);
        }

        // Sharded candidate construction: pure per-vertex reads of the
        // iteration state; star memory is updated afterwards, in
        // vertex order, on this thread. Each shard owns one reusable
        // StarScratch, so the choice loop stops allocating per vertex
        // once its arena has warmed up.
        let (chosen, step3_shards): (Vec<Option<ChosenStar>>, _) =
            sharded_chunks(n, shards, |range| {
                let mut scratch = StarScratch::default();
                range
                    .map(|v| {
                        if rho[v].is_zero() || rho[v] < threshold || keys[v] != max2[v] {
                            return None;
                        }
                        let choice_threshold = if cfg.round_densities {
                            let exp = rho[v].ceil_pow2_exponent().expect("positive density");
                            // Clamp to pow2_ratio's exact range; only
                            // reachable with astronomical weights, where
                            // the saturated threshold is equally
                            // serviceable.
                            pow2_ratio((exp - offset).max(-62))
                        } else {
                            // Exact-density ablation: ρ(v) / 2^offset.
                            // Shift the numerator down instead when the
                            // denominator would overflow (astronomical
                            // star weights).
                            let (num, den) = (rho[v].numerator(), rho[v].denominator());
                            if den.leading_zeros() as i32 >= offset {
                                Ratio::new(num, den << offset)
                            } else {
                                Ratio::new(num >> offset, den)
                            }
                        };
                        let prev = if cfg.monotone_stars {
                            prev_star[v]
                                .as_ref()
                                .filter(|(key, _)| *key == keys[v])
                                .map(|(_, member)| member.as_slice())
                        } else {
                            None
                        };
                        let choice = locals[v].choose_star_seeded(
                            choice_threshold,
                            prev,
                            Some(&best[v]),
                            &mut scratch,
                        )?;
                        let spanned = locals[v].spanned_items(&choice.member);
                        if spanned.is_empty() {
                            return None;
                        }
                        Some(ChosenStar {
                            member: choice.member,
                            spanned,
                            fallback: choice.fallback,
                        })
                    })
                    .collect()
            });

        let mut candidates: Vec<Candidate> = Vec::new();
        for (v, chosen) in chosen.into_iter().enumerate() {
            let Some(star) = chosen else { continue };
            if star.fallback {
                star_fallbacks += 1;
            }
            if cfg.monotone_stars {
                // Reuse the existing buffer when shapes match instead
                // of reallocating every iteration.
                match &mut prev_star[v] {
                    Some((key, buf)) if buf.len() == star.member.len() => {
                        *key = keys[v];
                        buf.copy_from_slice(&star.member);
                    }
                    slot => *slot = Some((keys[v], star.member.clone())),
                }
            }
            candidates.push(Candidate {
                v,
                member: star.member,
                spanned: star.spanned,
                rv: rvs[v],
            });
        }
        let step3_wall = t_step3.elapsed();
        timings.step3 += step3_wall;
        let t_step4 = Instant::now(); // dsa-lint: allow(DSA-D002, reason="step timing is trace-only diagnostics, never encoded output")

        // Step 4 (sharded over item ranges): voting. Each uncovered
        // item backs the first candidate 2-spanning it in `(r_v, v)`
        // order; ties on r_v (rare) break by vertex id, as a real
        // permutation would. Every shard owns a contiguous item range
        // and scans each candidate's (sorted) spanned list from the
        // first in-range entry.
        let (backer, step4_shards): (Vec<Option<VoteKey>>, _) =
            sharded_chunks(num_items, shards, |range| {
                let mut out: Vec<Option<VoteKey>> = vec![None; range.len()];
                for (ci, c) in candidates.iter().enumerate() {
                    let key = (c.rv, c.v, ci);
                    let from = c.spanned.partition_point(|&item| item < range.start);
                    for &item in &c.spanned[from..] {
                        if item >= range.end {
                            break;
                        }
                        let slot = &mut out[item - range.start];
                        if slot.is_none_or(|b| key < b) {
                            *slot = Some(key);
                        }
                    }
                }
                out
            });
        let mut votes = vec![0u64; candidates.len()];
        for b in backer.iter().flatten() {
            votes[b.2] += 1;
        }

        // Acceptance: enough of the spanned items voted for the star.
        new_edges.clear();
        let mut accepted = 0usize;
        for (ci, c) in candidates.iter().enumerate() {
            if votes[ci] * cfg.accept_denominator >= c.spanned.len() as u64 {
                accepted += 1;
                for (leaf, &m) in locals[c.v].leaves.iter().zip(&c.member) {
                    if m {
                        for &e in &leaf.edges {
                            if h.insert(e) {
                                new_edges.push(e);
                            }
                        }
                    }
                }
            }
        }

        let step4_wall = t_step4.elapsed();
        timings.step4 += step4_wall;

        // Incremental coverage: only the items the new edges can have
        // covered leave `uncovered` (coverage is monotone, so the
        // delta is exact — see the module docs).
        let t_cov = Instant::now(); // dsa-lint: allow(DSA-D002, reason="coverage timing is trace-only diagnostics, never encoded output")
        delta.clear();
        variant.covered_delta(&h, &new_edges, &mut delta);
        uncovered.subtract(&delta);
        let cov_wall = t_cov.elapsed();
        timings.coverage += cov_wall;
        if cfg.collect_timings {
            trace_iters.push(IterationTiming {
                step1: SectionTiming {
                    wall: step1_wall,
                    shards: step1_shards,
                },
                step3: SectionTiming {
                    wall: step3_wall,
                    shards: step3_shards,
                },
                step4: SectionTiming {
                    wall: step4_wall,
                    shards: step4_shards,
                },
                coverage: cov_wall,
            });
        }
        stats.push(IterationStats {
            candidates: candidates.len(),
            accepted,
            added_edges: new_edges.len(),
            uncovered: uncovered.len(),
        });
        converged = uncovered.is_empty();
    }

    (
        SpannerRun {
            spanner: h,
            iterations: stats.len() as u64,
            converged,
            cancelled,
            star_fallbacks,
            stats,
            trace: cfg.collect_timings.then_some(EngineTrace {
                iterations: trace_iters,
            }),
        },
        timings,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_partition_exactly() {
        for (len, shards) in [(0, 3), (1, 4), (7, 3), (8, 4), (10, 1), (5, 9), (64, 8)] {
            let ranges = shard_ranges(len, shards);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "gap at len={len} shards={shards}");
                assert!(r.start < r.end, "empty range at len={len} shards={shards}");
                next = r.end;
            }
            assert_eq!(next, len, "ranges must cover 0..{len}");
            assert!(ranges.len() <= shards.max(1));
            // Balanced: sizes differ by at most one.
            if let (Some(min), Some(max)) = (
                ranges.iter().map(|r| r.len()).min(),
                ranges.iter().map(|r| r.len()).max(),
            ) {
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn sharded_map_matches_inline_for_any_shard_count() {
        let f = |i: usize| i * i + 1;
        let expect: Vec<usize> = (0..37).map(f).collect();
        for shards in [1, 2, 3, 8, 37, 100] {
            let (out, times) = sharded_map(37, shards, f);
            assert_eq!(out, expect, "shards={shards}");
            assert_eq!(times.len(), shard_ranges(37, shards).len().max(1));
        }
        assert_eq!(sharded_map(0, 4, f).0, Vec::<usize>::new());
    }

    #[test]
    fn sharded_chunks_preserve_range_order() {
        let (out, times) = sharded_chunks(10, 3, |r| r.map(|i| i as u64).collect::<Vec<_>>());
        assert_eq!(out, (0..10).collect::<Vec<u64>>());
        // One wall time per shard, in range order.
        assert_eq!(times.len(), 3);
    }

    #[test]
    fn resolve_shards_auto_is_positive_and_requests_are_clamped() {
        assert!(resolve_shards(0) >= 1);
        assert_eq!(resolve_shards(5), 5);
        // A hostile request (e.g. a remote `shards 100000` header) is
        // capped instead of becoming a thread-spawn storm.
        assert!(resolve_shards(100_000) <= MAX_SHARDS.max(resolve_shards(0)));
    }

    #[test]
    fn cancelled_flag_reads_through() {
        let mut cfg = EngineConfig::seeded(0);
        assert!(!cfg.is_cancelled());
        let flag = Arc::new(AtomicBool::new(false));
        cfg.cancel = Some(Arc::clone(&flag));
        assert!(!cfg.is_cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(cfg.is_cancelled());
    }
}
