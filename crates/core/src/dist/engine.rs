//! The variant-generic iteration engine for the Section-4 distributed
//! minimum 2-spanner scheme.
//!
//! All four problem variants of the paper (undirected, directed,
//! weighted, client-server) run the *same* iteration skeleton and only
//! differ in what an "item to cover" is, which edges a star leaf
//! contributes, and the density thresholds. [`SpannerVariant`]
//! abstracts exactly those differences; [`run_engine`] is the shared
//! skeleton:
//!
//! 1. every vertex builds its star search space over the still
//!    uncovered items ([`SpannerVariant::local_stars`]) and computes
//!    its densest-star density `ρ(v, H_v)` via the `dsa-flow` oracle;
//! 2. if the maximum density is at (or, for client-server, below) the
//!    variant's threshold, the remaining items are self-added
//!    ([`SpannerVariant::force_cover`]) and the run terminates;
//! 3. otherwise the vertices whose *rounded* density `ρ̃(v)` is maximal
//!    in their 2-neighborhood become candidates and choose a star of
//!    density at least `ρ̃(v)/4` (`ρ̃(v)/8` for the directed variant)
//!    by the Section 4.1 mechanism — re-choosing **shrink-only** while
//!    the rounded density is unchanged, which Claim 4.4 proves never
//!    fails (the engine counts [`SpannerRun::star_fallbacks`] so tests
//!    can confirm the claim empirically);
//! 4. every uncovered item votes for the first candidate 2-spanning it
//!    in random-permutation order, and a candidate whose star is backed
//!    by at least a `1/8` fraction of the items it spans (the
//!    [`EngineConfig::accept_denominator`]) adds the star to the
//!    spanner.
//!
//! The engine is the *centrally scheduled* rendition of the algorithm —
//! the same iterations as [`crate::protocol`], without the
//! message-level bookkeeping — which makes it the fast path for
//! experiments and the reference the protocol is tested against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsa_graphs::{EdgeId, EdgeSet, Ratio, VertexId};

use crate::star::{pow2_ratio, LocalStars};

/// One problem variant of the Section-4 scheme: what needs covering,
/// which stars exist, and at which density the iteration stops.
///
/// *Items* are the units of coverage (undirected edges, directed edges,
/// or client edges), identified by dense ids `0..num_items()`. *Edges*
/// are the spanner building blocks identified by the ids of the
/// underlying graph; [`crate::star::Leaf::edges`] and
/// [`SpannerVariant::force_cover`] speak edge ids, while
/// [`crate::star::Pair::items`] speaks item ids.
pub trait SpannerVariant {
    /// Number of vertices of the communication graph.
    fn num_vertices(&self) -> usize;

    /// Size of the item universe (coverage is tracked in `EdgeSet`s of
    /// this universe).
    fn num_items(&self) -> usize;

    /// The items that must be covered for the run to converge.
    fn targets(&self) -> EdgeSet;

    /// Edges placed in the spanner before the first iteration (the
    /// weighted variant pre-adopts weight-0 edges). The returned set's
    /// universe is the spanner-edge universe.
    fn preselected(&self) -> EdgeSet;

    /// The target items covered by the edge set `h` within stretch 2.
    fn covered(&self, h: &EdgeSet) -> EdgeSet;

    /// The star search space of `v` with respect to the still
    /// `uncovered` items: the potential leaves and the uncovered items
    /// each leaf pair 2-spans.
    fn local_stars(&self, v: VertexId, uncovered: &EdgeSet) -> LocalStars;

    /// The edges self-added to cover `item` at termination (step 7 of
    /// the paper's algorithm): the item's own edge, or — for a
    /// client-server item that is not itself a server — a covering
    /// server 2-path.
    fn force_cover(&self, item: usize) -> Vec<EdgeId>;

    /// Sorted neighbor list of `v` in the communication graph, used for
    /// the 2-neighborhood density aggregation of the candidacy rule.
    fn comm_neighbors(&self, v: VertexId) -> &[VertexId];

    /// The candidacy/termination density threshold: 1 for the
    /// unweighted variants, the largest power of two at most `1/w_max`
    /// for the weighted variant, and 1/2 for client-server.
    fn threshold(&self) -> Ratio;

    /// Whether termination requires the maximum density to drop
    /// *strictly below* [`SpannerVariant::threshold`] (client-server)
    /// rather than to it.
    fn strict_termination(&self) -> bool {
        false
    }

    /// The star-choice threshold is `ρ̃(v) / 2^offset`: 2 in the
    /// undirected analysis (Section 4.1), 3 for the directed variant
    /// (Section 4.3.1).
    fn choice_exponent_offset(&self) -> i32 {
        2
    }
}

/// Tunable parameters of [`run_engine`]. The defaults are the paper's
/// constants; the ablation experiments override individual fields via
/// struct update syntax on [`EngineConfig::seeded`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Seed of the engine's random permutation values `r_v`.
    pub seed: u64,
    /// A candidate is accepted when it collects at least
    /// `|C_v| / accept_denominator` votes (paper: 8).
    pub accept_denominator: u64,
    /// Use the Section 4.1 monotone (shrink-only) star memory; `false`
    /// re-chooses an arbitrary densest star every iteration (ablation
    /// A2).
    pub monotone_stars: bool,
    /// Round densities to powers of two for candidacy and thresholds;
    /// `false` compares exact densities (ablation A3).
    pub round_densities: bool,
    /// Safety cap on iterations; every iteration covers at least one
    /// item, so runs converge long before this on any real input.
    pub max_iterations: u64,
}

impl EngineConfig {
    /// The paper's configuration with the given seed.
    pub fn seeded(seed: u64) -> Self {
        EngineConfig {
            seed,
            accept_denominator: 8,
            monotone_stars: true,
            round_densities: true,
            max_iterations: 1_000_000,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::seeded(0)
    }
}

/// Per-iteration accounting of a [`run_engine`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IterationStats {
    /// Vertices that announced a candidate star this iteration.
    pub candidates: usize,
    /// Candidates whose star collected enough votes.
    pub accepted: usize,
    /// Spanner edges newly added this iteration.
    pub added_edges: usize,
    /// Target items still uncovered after this iteration.
    pub uncovered: usize,
}

/// Result of a [`run_engine`] run.
#[derive(Clone, Debug)]
pub struct SpannerRun {
    /// The computed spanner, as a set of edge ids.
    pub spanner: EdgeSet,
    /// Iterations executed (equals `stats.len()`).
    pub iterations: u64,
    /// Whether every target item was covered before the iteration cap.
    pub converged: bool,
    /// How often the Claim-4.4 shrink-only re-choice failed and a fresh
    /// star was chosen; the claim says this stays 0.
    pub star_fallbacks: u64,
    /// Per-iteration accounting.
    pub stats: Vec<IterationStats>,
}

impl SpannerRun {
    /// The LOCAL rounds this run would cost as a message-passing
    /// protocol: [`crate::protocol::PHASES`] rounds per iteration.
    pub fn local_rounds(&self) -> u64 {
        self.iterations * crate::protocol::PHASES
    }
}

/// A candidate vertex of one iteration: its chosen star and the random
/// permutation value that orders the vote.
struct Candidate {
    v: VertexId,
    member: Vec<bool>,
    spanned: Vec<usize>,
    rv: u64,
}

/// Runs the Section-4 iteration skeleton for `variant`.
///
/// # Panics
///
/// Panics if `cfg.accept_denominator == 0`.
pub fn run_engine<V: SpannerVariant>(variant: &V, cfg: &EngineConfig) -> SpannerRun {
    assert!(
        cfg.accept_denominator >= 1,
        "accept denominator must be positive"
    );
    let n = variant.num_vertices();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut h = variant.preselected();
    let targets = variant.targets();
    let mut uncovered = targets.clone();
    uncovered.subtract(&variant.covered(&h));

    let threshold = variant.threshold();
    let offset = variant.choice_exponent_offset();
    // Star memory for the Claim-4.4 monotone choice: the key (rounded
    // or exact density) under which the star was chosen, plus the star.
    let mut prev_star: Vec<Option<(Ratio, Vec<bool>)>> = vec![None; n];
    let mut stats: Vec<IterationStats> = Vec::new();
    let mut star_fallbacks = 0u64;
    let mut converged = uncovered.is_empty();

    while !converged && (stats.len() as u64) < cfg.max_iterations {
        // Step 1: per-vertex star spaces and densest-star densities.
        let locals: Vec<LocalStars> = (0..n).map(|v| variant.local_stars(v, &uncovered)).collect();
        let rho: Vec<Ratio> = locals
            .iter()
            .map(|ls| ls.max_density().unwrap_or_else(Ratio::zero))
            .collect();
        let global_max = rho.iter().copied().max().unwrap_or_else(Ratio::zero);

        // Step 2: termination — self-add what no dense-enough star
        // covers (the centrally scheduled analogue of every vertex
        // seeing only below-threshold densities nearby).
        let finished = if variant.strict_termination() {
            global_max < threshold
        } else {
            global_max <= threshold
        };
        if finished {
            let leftovers: Vec<usize> = uncovered.iter().collect();
            let mut added = 0usize;
            for item in leftovers {
                for e in variant.force_cover(item) {
                    added += usize::from(h.insert(e));
                }
            }
            uncovered = targets.clone();
            uncovered.subtract(&variant.covered(&h));
            stats.push(IterationStats {
                candidates: 0,
                accepted: 0,
                added_edges: added,
                uncovered: uncovered.len(),
            });
            converged = uncovered.is_empty();
            break;
        }

        // Step 3: candidacy. Densities are rounded up to powers of two
        // (unless ablated) and aggregated twice over the closed
        // neighborhood, giving each vertex the maximum over its
        // 2-neighborhood.
        let keys: Vec<Ratio> = rho
            .iter()
            .map(|&r| {
                if cfg.round_densities {
                    r.ceil_pow2_exponent()
                        .map(pow2_ratio)
                        .unwrap_or_else(Ratio::zero)
                } else {
                    r
                }
            })
            .collect();
        let max1: Vec<Ratio> = (0..n)
            .map(|v| {
                variant
                    .comm_neighbors(v)
                    .iter()
                    .fold(keys[v], |m, &u| m.max(keys[u]))
            })
            .collect();
        let max2: Vec<Ratio> = (0..n)
            .map(|v| {
                variant
                    .comm_neighbors(v)
                    .iter()
                    .fold(max1[v], |m, &u| m.max(max1[u]))
            })
            .collect();

        let rv_max = (n.max(2) as u64).saturating_pow(4);
        let mut candidates: Vec<Candidate> = Vec::new();
        for v in 0..n {
            if rho[v].is_zero() || rho[v] < threshold || keys[v] != max2[v] {
                continue;
            }
            let choice_threshold = if cfg.round_densities {
                let exp = rho[v].ceil_pow2_exponent().expect("positive density");
                // Clamp to pow2_ratio's exact range; only reachable
                // with astronomical weights, where the saturated
                // threshold is equally serviceable.
                pow2_ratio((exp - offset).max(-62))
            } else {
                // Exact-density ablation: ρ(v) / 2^offset. Shift the
                // numerator down instead when the denominator would
                // overflow (astronomical star weights).
                let (num, den) = (rho[v].numerator(), rho[v].denominator());
                if den.leading_zeros() as i32 >= offset {
                    Ratio::new(num, den << offset)
                } else {
                    Ratio::new(num >> offset, den)
                }
            };
            let prev = if cfg.monotone_stars {
                prev_star[v]
                    .as_ref()
                    .filter(|(key, _)| *key == keys[v])
                    .map(|(_, member)| member.clone())
            } else {
                None
            };
            let Some(choice) = locals[v].choose_star(choice_threshold, prev.as_deref()) else {
                continue;
            };
            if choice.fallback {
                star_fallbacks += 1;
            }
            let spanned = locals[v].spanned_items(&choice.member);
            if spanned.is_empty() {
                continue;
            }
            if cfg.monotone_stars {
                prev_star[v] = Some((keys[v], choice.member.clone()));
            }
            let rv = rng.gen_range(1..=rv_max);
            candidates.push(Candidate {
                v,
                member: choice.member,
                spanned,
                rv,
            });
        }

        // Step 4: voting. Each uncovered item backs the first candidate
        // 2-spanning it in `(r_v, v)` order; ties on r_v (rare) break by
        // vertex id, as a real permutation would.
        let mut backer: Vec<Option<(u64, VertexId, usize)>> = vec![None; variant.num_items()];
        for (ci, c) in candidates.iter().enumerate() {
            for &item in &c.spanned {
                let key = (c.rv, c.v, ci);
                if backer[item].is_none_or(|b| key < b) {
                    backer[item] = Some(key);
                }
            }
        }
        let mut votes = vec![0u64; candidates.len()];
        for b in backer.iter().flatten() {
            votes[b.2] += 1;
        }

        // Acceptance: enough of the spanned items voted for the star.
        let mut added = 0usize;
        let mut accepted = 0usize;
        for (ci, c) in candidates.iter().enumerate() {
            if votes[ci] * cfg.accept_denominator >= c.spanned.len() as u64 {
                accepted += 1;
                for (leaf, &m) in locals[c.v].leaves.iter().zip(&c.member) {
                    if m {
                        for &e in &leaf.edges {
                            added += usize::from(h.insert(e));
                        }
                    }
                }
            }
        }

        uncovered = targets.clone();
        uncovered.subtract(&variant.covered(&h));
        stats.push(IterationStats {
            candidates: candidates.len(),
            accepted,
            added_edges: added,
            uncovered: uncovered.len(),
        });
        converged = uncovered.is_empty();
    }

    SpannerRun {
        spanner: h,
        iterations: stats.len() as u64,
        converged,
        star_fallbacks,
        stats,
    }
}
