//! Owned problem instances and the single dispatch entry point over
//! the four Section-4 variants.
//!
//! The free functions of [`crate::dist`] each borrow their own input
//! shape, which is the right API for direct callers but forces any
//! *generic* caller — a job queue, a network server, a load generator —
//! to match on four signatures. [`VariantInstance`] packages one
//! problem instance (graph plus variant-specific data) as an owned
//! value, [`VariantKind`] names its shape, and [`run_variant`] is the
//! one dispatch point, so layers above `dsa-core` never touch the
//! individual entry points.

use std::fmt;
use std::str::FromStr;

use dsa_graphs::{DiGraph, EdgeSet, EdgeWeights, Graph};

use super::engine::{run_engine_timed, EngineConfig, PhaseTimings, SpannerRun};
use super::{
    min_2_spanner, min_2_spanner_client_server, min_2_spanner_directed, min_2_spanner_weighted,
    ClientServerTwoSpanner, DirectedTwoSpanner, UndirectedTwoSpanner, WeightedTwoSpanner,
};

/// The shape of a minimum 2-spanner problem variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// Theorem 1.3: undirected, unweighted.
    Undirected,
    /// Theorem 4.9: directed.
    Directed,
    /// Theorem 4.12: weighted.
    Weighted,
    /// Theorem 4.15: client-server.
    ClientServer,
}

impl VariantKind {
    /// All four kinds, in theorem order.
    pub const ALL: [VariantKind; 4] = [
        VariantKind::Undirected,
        VariantKind::Directed,
        VariantKind::Weighted,
        VariantKind::ClientServer,
    ];

    /// The stable lowercase name, used on the wire and in CLIs.
    pub fn as_str(self) -> &'static str {
        match self {
            VariantKind::Undirected => "undirected",
            VariantKind::Directed => "directed",
            VariantKind::Weighted => "weighted",
            VariantKind::ClientServer => "client-server",
        }
    }
}

impl fmt::Display for VariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for VariantKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        VariantKind::ALL
            .into_iter()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| format!("unknown variant `{s}` (expected one of: undirected, directed, weighted, client-server)"))
    }
}

/// One owned problem instance: the graph together with the data its
/// variant needs.
///
/// Equality is structural (same vertex count, same edges in the same
/// id order, same per-variant data) — what a serving layer needs to
/// confirm that two hash-keyed lookups really are the same job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VariantInstance {
    /// An undirected instance (Theorem 1.3).
    Undirected {
        /// The input graph.
        graph: Graph,
    },
    /// A directed instance (Theorem 4.9).
    Directed {
        /// The input digraph.
        graph: DiGraph,
    },
    /// A weighted instance (Theorem 4.12).
    Weighted {
        /// The input graph.
        graph: Graph,
        /// Per-edge costs, indexed by edge id.
        weights: EdgeWeights,
    },
    /// A client-server instance (Theorem 4.15).
    ClientServer {
        /// The input graph.
        graph: Graph,
        /// The client edges (those needing coverage).
        clients: EdgeSet,
        /// The server edges (those allowed into the spanner).
        servers: EdgeSet,
    },
}

impl VariantInstance {
    /// The shape of this instance.
    pub fn kind(&self) -> VariantKind {
        match self {
            VariantInstance::Undirected { .. } => VariantKind::Undirected,
            VariantInstance::Directed { .. } => VariantKind::Directed,
            VariantInstance::Weighted { .. } => VariantKind::Weighted,
            VariantInstance::ClientServer { .. } => VariantKind::ClientServer,
        }
    }

    /// Vertex count of the underlying graph.
    pub fn num_vertices(&self) -> usize {
        match self {
            VariantInstance::Undirected { graph } => graph.num_vertices(),
            VariantInstance::Directed { graph } => graph.num_vertices(),
            VariantInstance::Weighted { graph, .. } => graph.num_vertices(),
            VariantInstance::ClientServer { graph, .. } => graph.num_vertices(),
        }
    }

    /// Edge count of the underlying graph (the spanner-edge universe).
    pub fn num_edges(&self) -> usize {
        match self {
            VariantInstance::Undirected { graph } => graph.num_edges(),
            VariantInstance::Directed { graph } => graph.num_edges(),
            VariantInstance::Weighted { graph, .. } => graph.num_edges(),
            VariantInstance::ClientServer { graph, .. } => graph.num_edges(),
        }
    }

    /// Checks the cross-field invariants the borrowing constructors
    /// would `assert!`, as a recoverable error — the form a serving
    /// layer needs before feeding untrusted input to [`run_variant`].
    pub fn validate(&self) -> Result<(), String> {
        match self {
            VariantInstance::Undirected { .. } | VariantInstance::Directed { .. } => Ok(()),
            VariantInstance::Weighted { graph, weights } => {
                if weights.len() != graph.num_edges() {
                    return Err(format!(
                        "weight count {} does not match edge count {}",
                        weights.len(),
                        graph.num_edges()
                    ));
                }
                Ok(())
            }
            VariantInstance::ClientServer {
                graph,
                clients,
                servers,
            } => {
                if clients.universe() != graph.num_edges() {
                    return Err(format!(
                        "client universe {} does not match edge count {}",
                        clients.universe(),
                        graph.num_edges()
                    ));
                }
                if servers.universe() != graph.num_edges() {
                    return Err(format!(
                        "server universe {} does not match edge count {}",
                        servers.universe(),
                        graph.num_edges()
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Runs the engine on `instance`, dispatching to the matching
/// Section-4 entry point.
///
/// # Panics
///
/// Panics if the instance's cross-field invariants are violated (call
/// [`VariantInstance::validate`] first on untrusted input).
pub fn run_variant(instance: &VariantInstance, cfg: &EngineConfig) -> SpannerRun {
    match instance {
        VariantInstance::Undirected { graph } => min_2_spanner(graph, cfg),
        VariantInstance::Directed { graph } => min_2_spanner_directed(graph, cfg),
        VariantInstance::Weighted { graph, weights } => min_2_spanner_weighted(graph, weights, cfg),
        VariantInstance::ClientServer {
            graph,
            clients,
            servers,
        } => min_2_spanner_client_server(graph, clients, servers, cfg),
    }
}

/// [`run_variant`] plus the engine's per-phase wall-clock accounting —
/// the dispatch point the benchmarks use. The [`SpannerRun`] is
/// byte-identical to [`run_variant`]'s.
///
/// # Panics
///
/// Panics if the instance's cross-field invariants are violated (call
/// [`VariantInstance::validate`] first on untrusted input).
pub fn run_variant_timed(
    instance: &VariantInstance,
    cfg: &EngineConfig,
) -> (SpannerRun, PhaseTimings) {
    match instance {
        VariantInstance::Undirected { graph } => {
            run_engine_timed(&UndirectedTwoSpanner::new(graph), cfg)
        }
        VariantInstance::Directed { graph } => {
            run_engine_timed(&DirectedTwoSpanner::new(graph), cfg)
        }
        VariantInstance::Weighted { graph, weights } => {
            run_engine_timed(&WeightedTwoSpanner::new(graph, weights), cfg)
        }
        VariantInstance::ClientServer {
            graph,
            clients,
            servers,
        } => run_engine_timed(&ClientServerTwoSpanner::new(graph, clients, servers), cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kind_names_roundtrip() {
        for kind in VariantKind::ALL {
            assert_eq!(kind.as_str().parse::<VariantKind>(), Ok(kind));
        }
        assert!("bogus".parse::<VariantKind>().is_err());
    }

    #[test]
    fn dispatch_matches_direct_entry_points() {
        let mut rng = StdRng::seed_from_u64(41);
        let cfg = EngineConfig::seeded(6);

        let g = gen::gnp_connected(20, 0.3, &mut rng);
        let via = run_variant(&VariantInstance::Undirected { graph: g.clone() }, &cfg);
        assert_eq!(via.spanner, min_2_spanner(&g, &cfg).spanner);

        let d = gen::random_digraph_connected(16, 0.12, &mut rng);
        let via = run_variant(&VariantInstance::Directed { graph: d.clone() }, &cfg);
        assert_eq!(via.spanner, min_2_spanner_directed(&d, &cfg).spanner);

        let w = gen::random_weights(g.num_edges(), 0, 5, &mut rng);
        let via = run_variant(
            &VariantInstance::Weighted {
                graph: g.clone(),
                weights: w.clone(),
            },
            &cfg,
        );
        assert_eq!(via.spanner, min_2_spanner_weighted(&g, &w, &cfg).spanner);

        let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
        let via = run_variant(
            &VariantInstance::ClientServer {
                graph: g.clone(),
                clients: clients.clone(),
                servers: servers.clone(),
            },
            &cfg,
        );
        assert_eq!(
            via.spanner,
            min_2_spanner_client_server(&g, &clients, &servers, &cfg).spanner
        );
    }

    #[test]
    fn validate_catches_mismatches() {
        let g = gen::complete(4);
        let ok = VariantInstance::Weighted {
            graph: g.clone(),
            weights: EdgeWeights::unit(&g),
        };
        assert!(ok.validate().is_ok());
        let bad = VariantInstance::Weighted {
            graph: g.clone(),
            weights: EdgeWeights::constant(2, 1),
        };
        assert!(bad.validate().is_err());
        let bad = VariantInstance::ClientServer {
            graph: g.clone(),
            clients: EdgeSet::full(g.num_edges()),
            servers: EdgeSet::full(1),
        };
        assert!(bad.validate().is_err());
        let ok = VariantInstance::ClientServer {
            graph: g.clone(),
            clients: EdgeSet::full(g.num_edges()),
            servers: EdgeSet::full(g.num_edges()),
        };
        assert!(ok.validate().is_ok());
    }
}
