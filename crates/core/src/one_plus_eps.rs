//! The (1+ε)-approximation for minimum k-spanners in the LOCAL model
//! (Theorem 1.2, Section 6).
//!
//! The algorithm demonstrates the power of LOCAL: with unbounded local
//! computation, approximation ratios *far below* the sequential
//! hardness thresholds (`Θ(log n)` for k = 2 \[45\], quasi-polynomial
//! factors for k ≥ 3 \[19, 31\]) become achievable in
//! `O(poly(log n / ε))` rounds. It is one side of the LOCAL-vs-CONGEST
//! separation that the Section 2 lower bounds complete.
//!
//! Structure, following the paper:
//!
//! 1. a **network decomposition** of `G^r` (Linial–Saks \[52\]) colors
//!    clusters of weak diameter `O(log n)` (in `G^r`) with `O(log n)`
//!    colors — [`linial_saks`];
//! 2. vertices are processed in lexicographic `(color, id)` order; each
//!    vertex `v` finds the smallest radius `r_v` with
//!    `g(v, r_v + 2k) ≤ (1+ε) · g(v, r_v)`, where `g(v, d)` is the size
//!    of an optimal spanner of the still-uncovered edges of the ball
//!    `B_d(v)` (computable exactly because LOCAL allows unbounded local
//!    computation — here an exponential-time branch and bound, which is
//!    why this algorithm is only run on small instances);
//! 3. an optimal spanner of the uncovered edges of `B_{r_v+2k}(v)` is
//!    added to the output.
//!
//! Vertices of the same color whose clusters are far apart in `G^r`
//! would run step 2–3 in parallel in the real protocol; processing them
//! sequentially in `(color, id)` order produces the identical output,
//! which is what this implementation does.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsa_graphs::traversal::{ball, bfs_distances};
use dsa_graphs::{EdgeId, EdgeSet, EdgeWeights, Graph, VertexId};

use crate::seq::exact_min_spanner_covering_weighted;
use crate::verify::uncovered_edges;

/// A network decomposition: cluster ids and colors per vertex.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// Cluster representative per vertex.
    pub cluster: Vec<VertexId>,
    /// Color class per vertex (same for all vertices of a cluster).
    pub color: Vec<usize>,
    /// Number of colors used.
    pub num_colors: usize,
}

/// Linial–Saks randomized low-diameter decomposition of `G^r`:
/// clusters have weak diameter `O(log n)` in `G^r`, and two clusters of
/// the same color are non-adjacent in `G^r` (distance `> r` in `G`).
/// Uses `O(log n)` colors w.h.p.
///
/// # Panics
///
/// Panics if `r == 0`.
pub fn linial_saks(g: &Graph, r: usize, seed: u64) -> Decomposition {
    assert!(r >= 1, "power parameter r must be positive");
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cluster: Vec<Option<VertexId>> = vec![None; n];
    let mut color: Vec<usize> = vec![0; n];
    // Truncated-geometric radius bound.
    let bound = ((n.max(2) as f64).log2().ceil() as usize) + 1;

    // Distance in G^r = ceil(dist_G / r).
    let dist_gr =
        |dists: &[Option<usize>], v: VertexId| -> Option<usize> { dists[v].map(|d| d.div_ceil(r)) };

    let mut current_color = 0;
    let max_phases = 8 * bound + 8;
    for _phase in 0..max_phases {
        let remaining: Vec<VertexId> = (0..n).filter(|&v| cluster[v].is_none()).collect();
        if remaining.is_empty() {
            break;
        }
        // Every remaining vertex draws a truncated geometric radius.
        let mut radius = vec![0usize; n];
        for &u in &remaining {
            let mut ru = 0;
            while ru < bound && rng.gen_bool(0.5) {
                ru += 1;
            }
            radius[u] = ru;
        }
        // BFS from every remaining vertex (centers broadcast their id
        // to distance r_u in G^r).
        let mut chosen: Vec<Option<(VertexId, usize)>> = vec![None; n]; // (center, dist)
        for &u in &remaining {
            let dists = bfs_distances(g, u);
            for &v in &remaining {
                if let Some(d) = dist_gr(&dists, v) {
                    if d <= radius[u] {
                        // Highest-id center wins.
                        let better = match chosen[v] {
                            None => true,
                            Some((c, _)) => u > c,
                        };
                        if better {
                            chosen[v] = Some((u, d));
                        }
                    }
                }
            }
        }
        // Interior vertices (strictly inside their center's radius)
        // join this phase's color class.
        let mut any = false;
        for &v in &remaining {
            if let Some((c, d)) = chosen[v] {
                if d < radius[c] {
                    cluster[v] = Some(c);
                    color[v] = current_color;
                    any = true;
                }
            }
        }
        if any {
            current_color += 1;
        }
    }
    // Safety net (probability ~0): leftovers become singleton clusters
    // of fresh colors.
    for v in 0..n {
        if cluster[v].is_none() {
            cluster[v] = Some(v);
            color[v] = current_color;
            current_color += 1;
        }
    }
    Decomposition {
        cluster: cluster.into_iter().map(|c| c.expect("assigned")).collect(),
        color,
        num_colors: current_color,
    }
}

/// Result of the (1+ε) algorithm.
#[derive(Clone, Debug)]
pub struct OnePlusEpsRun {
    /// The k-spanner.
    pub spanner: EdgeSet,
    /// Colors used by the network decomposition.
    pub colors: usize,
    /// Largest ball radius `r_v` any vertex needed.
    pub max_radius: usize,
    /// Vertices that actually added edges.
    pub active_vertices: usize,
}

/// The (1+ε)-approximate minimum k-spanner algorithm of Theorem 1.2.
///
/// **Small instances only**: the inner oracle solves NP-hard spanner
/// problems exactly (as the LOCAL model permits); expect exponential
/// local work beyond a few dozen edges per ball.
///
/// # Panics
///
/// Panics if `k == 0` or `eps <= 0`.
///
/// # Example
///
/// ```
/// use dsa_core::one_plus_eps::one_plus_eps_spanner;
/// use dsa_core::verify::is_k_spanner;
/// use dsa_graphs::gen::complete;
///
/// let g = complete(6);
/// let run = one_plus_eps_spanner(&g, 2, 1.0, 7);
/// assert!(is_k_spanner(&g, &run.spanner, 2));
/// // K6's optimum is a 5-edge star; (1+ε) with ε=1 allows ≤ 10.
/// assert!(run.spanner.len() <= 10);
/// ```
pub fn one_plus_eps_spanner(g: &Graph, k: usize, eps: f64, seed: u64) -> OnePlusEpsRun {
    one_plus_eps_impl(g, None, k, eps, seed)
}

/// Weighted variant of [`one_plus_eps_spanner`]: the ball oracle
/// minimizes cost instead of size. As the paper notes at the end of
/// Section 6, the framework carries over directly; the complexity
/// becomes `O(poly(log(nW)/ε))`.
///
/// # Panics
///
/// Panics if `k == 0`, `eps <= 0`, or the weights don't match `g`.
pub fn one_plus_eps_spanner_weighted(
    g: &Graph,
    w: &EdgeWeights,
    k: usize,
    eps: f64,
    seed: u64,
) -> OnePlusEpsRun {
    assert_eq!(w.len(), g.num_edges(), "weights must match edges");
    one_plus_eps_impl(g, Some(w), k, eps, seed)
}

fn one_plus_eps_impl(
    g: &Graph,
    w: Option<&EdgeWeights>,
    k: usize,
    eps: f64,
    seed: u64,
) -> OnePlusEpsRun {
    assert!(k >= 1, "stretch must be positive");
    assert!(eps > 0.0, "epsilon must be positive");
    let n = g.num_vertices();
    let m = g.num_edges();
    let unit = EdgeWeights::unit(g);
    let weights = w.unwrap_or(&unit);

    // r = O(k log(nW) / eps) upper-bounds every r_v + 4k: failures
    // along the radius chain r, r+2k, r+4k, ... each grow g(v, ·) by a
    // (1+eps) factor, and g(v, ·) ≤ n²·w_max, so at most
    // 2k·log_{1+eps}(n²·w_max) radius increments can fail.
    let w_max = weights.max().max(1) as f64;
    let log_growth = (((n.max(2) as f64).powi(2) * w_max).ln() / (1.0 + eps).ln()).ceil() as usize;
    let r_bound = 2 * k * (log_growth + 2) + 4 * k + 1;
    let decomp = linial_saks(g, r_bound.max(1), seed);

    // Process vertices in (color, id) order.
    let mut order: Vec<VertexId> = (0..n).collect();
    order.sort_by_key(|&v| (decomp.color[v], v));

    let mut h = EdgeSet::new(m);
    let mut covered = EdgeSet::new(m); // target edges covered by h
    let mut max_radius = 0usize;
    let mut active = 0usize;

    let oracle = |targets: &[EdgeId]| -> u64 {
        if targets.is_empty() {
            0
        } else {
            exact_min_spanner_covering_weighted(g, weights, targets, k).1
        }
    };

    for &v in &order {
        // Find the smallest radius with bounded marginal growth.
        let mut rv = 0usize;
        loop {
            let inner = uncovered_targets_in_ball(g, &covered, v, rv);
            let outer = uncovered_targets_in_ball(g, &covered, v, rv + 2 * k);
            let g_inner = oracle(&inner);
            let g_outer = oracle(&outer);
            if (g_outer as f64) <= (1.0 + eps) * (g_inner as f64) {
                if !outer.is_empty() {
                    let (add, _) = exact_min_spanner_covering_weighted(g, weights, &outer, k);
                    h.union_with(&add);
                    // Recompute coverage (any target with a <= k path
                    // in h is covered).
                    let unc = uncovered_edges(g, &h, k);
                    covered = EdgeSet::full(m);
                    for e in unc {
                        covered.remove(e);
                    }
                    active += 1;
                }
                max_radius = max_radius.max(rv);
                break;
            }
            rv += 1;
            assert!(
                rv <= r_bound,
                "radius growth exceeded the theoretical bound"
            );
        }
    }

    OnePlusEpsRun {
        spanner: h,
        colors: decomp.num_colors,
        max_radius,
        active_vertices: active,
    }
}

/// The uncovered edges with both endpoints within distance `d` of `v`.
fn uncovered_targets_in_ball(g: &Graph, covered: &EdgeSet, v: VertexId, d: usize) -> Vec<EdgeId> {
    let ball_vertices = ball(g, v, d);
    let mut inside = vec![false; g.num_vertices()];
    for &u in &ball_vertices {
        inside[u] = true;
    }
    g.edges()
        .filter(|&(e, u, w)| !covered.contains(e) && inside[u] && inside[w])
        .map(|(e, _, _)| e)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::exact_min_k_spanner;
    use crate::verify::is_k_spanner;
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decomposition_covers_and_separates() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::gnp_connected(40, 0.1, &mut rng);
        let r = 2;
        let d = linial_saks(&g, r, 5);
        assert!(d.num_colors >= 1);
        // Same color, different cluster => distance > r in G.
        for v in 0..g.num_vertices() {
            let dists = dsa_graphs::traversal::bfs_distances(&g, v);
            for (u, du) in dists.iter().enumerate() {
                if u != v && d.color[u] == d.color[v] && d.cluster[u] != d.cluster[v] {
                    let duv = du.expect("connected");
                    assert!(duv > r, "vertices {v},{u} at distance {duv} <= r={r}");
                }
            }
        }
    }

    #[test]
    fn decomposition_uses_few_colors() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::gnp_connected(60, 0.08, &mut rng);
        let d = linial_saks(&g, 3, 1);
        // O(log n) colors w.h.p.; log2(60) ~ 6, allow slack.
        assert!(d.num_colors <= 30, "colors = {}", d.num_colors);
    }

    #[test]
    fn one_plus_eps_is_valid_and_near_optimal() {
        let mut rng = StdRng::seed_from_u64(17);
        for seed in 0..3u64 {
            let g = gen::gnp_connected(10, 0.3, &mut rng);
            let opt = exact_min_k_spanner(&g, 2).len() as f64;
            let run = one_plus_eps_spanner(&g, 2, 0.5, seed);
            assert!(is_k_spanner(&g, &run.spanner, 2));
            assert!(
                run.spanner.len() as f64 <= 1.5 * opt + 1e-9,
                "got {} vs opt {opt}",
                run.spanner.len()
            );
        }
    }

    #[test]
    fn weighted_variant_is_near_optimal() {
        use crate::seq::exact_min_2_spanner_weighted;
        use crate::verify::spanner_cost;
        let mut rng = StdRng::seed_from_u64(37);
        for seed in 0..2u64 {
            let g = gen::gnp_connected(9, 0.3, &mut rng);
            let w = gen::random_weights(g.num_edges(), 1, 5, &mut rng);
            let run = one_plus_eps_spanner_weighted(&g, &w, 2, 1.0, seed);
            assert!(is_k_spanner(&g, &run.spanner, 2));
            let (_, opt) = exact_min_2_spanner_weighted(&g, &w);
            let cost = spanner_cost(&run.spanner, &w);
            assert!(
                cost as f64 <= 2.0 * opt as f64 + 1e-9,
                "cost {cost} vs opt {opt}"
            );
        }
    }

    #[test]
    fn works_for_k3() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = gen::gnp_connected(9, 0.3, &mut rng);
        let run = one_plus_eps_spanner(&g, 3, 1.0, 2);
        assert!(is_k_spanner(&g, &run.spanner, 3));
        let opt = exact_min_k_spanner(&g, 3).len() as f64;
        assert!(run.spanner.len() as f64 <= 2.0 * opt + 1e-9);
    }
}
