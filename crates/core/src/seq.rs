//! Sequential baselines: the Kortsarz–Peleg greedy algorithm \[46\]
//! (whose `O(log m/n)` ratio Theorem 1.3 matches distributively) and
//! exact branch-and-bound solvers used as ground truth on small
//! instances.

use dsa_graphs::{EdgeId, EdgeSet, EdgeWeights, Graph, Ratio, VertexId};

use crate::star::LocalStars;

use crate::dist::engine::SpannerVariant;
use crate::dist::{
    ClientServerTwoSpanner, DirectedTwoSpanner, UndirectedTwoSpanner, WeightedTwoSpanner,
};
use dsa_graphs::DiGraph;

/// The sequential greedy minimum 2-spanner algorithm of Kortsarz and
/// Peleg: repeatedly add the globally densest star while its density is
/// at least 1, then self-add the remaining uncovered edges.
/// Guarantees an `O(log m/n)` approximation ratio.
///
/// # Example
///
/// ```
/// use dsa_core::seq::greedy_2_spanner;
/// use dsa_core::verify::is_k_spanner;
/// use dsa_graphs::gen::complete;
///
/// let g = complete(7);
/// let h = greedy_2_spanner(&g);
/// assert!(is_k_spanner(&g, &h, 2));
/// assert!(h.len() < g.num_edges());
/// ```
pub fn greedy_2_spanner(g: &Graph) -> EdgeSet {
    let variant = UndirectedTwoSpanner::new(g);
    greedy_over_variant(&variant, Ratio::one())
}

/// Weighted sequential greedy 2-spanner: densities are
/// `|C_S| / w(S)`, weight-0 edges are free, and single uncovered edges
/// compete with stars at density `1/w(e)`. `O(log Δ)`-style guarantee,
/// mirroring Section 4.3.2 sequentially.
pub fn greedy_2_spanner_weighted(g: &Graph, w: &EdgeWeights) -> EdgeSet {
    let variant = WeightedTwoSpanner::new(g, w);
    let mut h = variant.preselected();
    let targets = variant.targets();
    let mut uncovered = targets.clone();
    uncovered.subtract(&variant.covered(&h));
    let mut cache = StarCache::new(variant.num_vertices());
    let mut newly_covered = EdgeSet::full(variant.num_items());
    while !uncovered.is_empty() {
        cache.refresh(&variant, &uncovered, &newly_covered);
        let best = cache
            .global_best()
            .filter(|&(_, _, d)| d > Ratio::zero())
            .map(|(v, member, d)| (v, member.clone(), d));
        // Cheapest direct edge addition has "density" 1/w(e).
        let direct: Option<(EdgeId, Ratio)> = uncovered
            .iter()
            .map(|e| {
                let we = w.get(e);
                (
                    e,
                    if we == 0 {
                        Ratio::new(u64::MAX, 1)
                    } else {
                        Ratio::new(1, we)
                    },
                )
            })
            .max_by_key(|&(_, d)| d);
        let take_star = |h: &mut EdgeSet, v: VertexId, member: &[bool]| {
            let ls = cache.stars_of(v);
            for (leaf, &m) in ls.leaves.iter().zip(member) {
                if m {
                    for &edge in &leaf.edges {
                        h.insert(edge);
                    }
                }
            }
        };
        match (best, direct) {
            (Some((v, member, d)), Some((_, dd))) if d >= dd => take_star(&mut h, v, &member),
            (_, Some((e, _))) => {
                h.insert(e);
            }
            (Some((v, member, _)), None) => take_star(&mut h, v, &member),
            (None, None) => break,
        }
        let before = uncovered.clone();
        uncovered = targets.clone();
        uncovered.subtract(&variant.covered(&h));
        newly_covered = before;
        newly_covered.subtract(&uncovered);
    }
    h
}

/// Sequential greedy directed 2-spanner, via the Section-4.3.1 proxy
/// densities (a 2-approximation of the true directed star density, so
/// the ratio guarantee carries the same constant-factor slack).
pub fn greedy_2_spanner_directed(g: &DiGraph) -> EdgeSet {
    let variant = DirectedTwoSpanner::new(g);
    greedy_over_variant(&variant, Ratio::one())
}

/// Sequential greedy client-server 2-spanner (the Elkin–Peleg \[29\]
/// style baseline): densest server-stars over uncovered client edges,
/// stopping at density 1/2 (a 2-path covering one client edge), then
/// self-adding client∩server leftovers.
pub fn greedy_2_spanner_client_server(g: &Graph, clients: &EdgeSet, servers: &EdgeSet) -> EdgeSet {
    let variant = ClientServerTwoSpanner::new(g, clients, servers);
    greedy_over_variant(&variant, Ratio::new(1, 2))
}

/// One cache entry: the star space plus its densest star, if any.
type CacheEntry = (LocalStars, Option<(Vec<bool>, Ratio)>);

/// Incremental densest-star cache shared by the greedy baselines: a
/// vertex's star space only changes when an item one of its pairs
/// spans gets covered, so only such "dirty" vertices are recomputed.
struct StarCache {
    entries: Vec<Option<CacheEntry>>,
}

impl StarCache {
    fn new(n: usize) -> Self {
        StarCache {
            entries: vec![None; n],
        }
    }

    /// Refresh entries invalidated by `newly_covered`.
    fn refresh<V: SpannerVariant>(
        &mut self,
        variant: &V,
        uncovered: &EdgeSet,
        newly_covered: &EdgeSet,
    ) {
        for v in 0..self.entries.len() {
            let dirty = match &self.entries[v] {
                None => true,
                Some((ls, _)) => ls
                    .pairs
                    .iter()
                    .any(|p| p.items.iter().any(|&it| newly_covered.contains(it))),
            };
            if dirty {
                let ls = variant.local_stars(v, uncovered);
                let densest = ls.densest(None);
                self.entries[v] = Some((ls, densest));
            }
        }
    }

    /// The globally densest star: (vertex, member, density).
    fn global_best(&self) -> Option<(VertexId, &Vec<bool>, Ratio)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(v, e)| {
                let (_, densest) = e.as_ref()?;
                let (member, d) = densest.as_ref()?;
                Some((v, member, *d))
            })
            .max_by(|a, b| a.2.cmp(&b.2).then(b.0.cmp(&a.0)))
    }

    fn stars_of(&self, v: VertexId) -> &LocalStars {
        &self.entries[v].as_ref().expect("refreshed").0
    }
}

/// Shared greedy loop: add the globally densest star while its density
/// reaches `stop_threshold`, then self-add whatever is uncovered.
fn greedy_over_variant<V: SpannerVariant>(variant: &V, stop_threshold: Ratio) -> EdgeSet {
    let mut h = variant.preselected();
    let targets = variant.targets();
    let mut uncovered = targets.clone();
    uncovered.subtract(&variant.covered(&h));
    let mut cache = StarCache::new(variant.num_vertices());
    let mut newly_covered = EdgeSet::full(variant.num_items());
    loop {
        if uncovered.is_empty() {
            return h;
        }
        cache.refresh(variant, &uncovered, &newly_covered);
        match cache.global_best() {
            Some((v, member, d)) if d >= stop_threshold => {
                let ls = cache.stars_of(v);
                let mut changed = false;
                for (leaf, &m) in ls.leaves.iter().zip(member) {
                    if m {
                        for &edge in &leaf.edges {
                            changed |= h.insert(edge);
                        }
                    }
                }
                if !changed {
                    // Defensive: a stale densest star cannot make
                    // progress, so finish with self-additions.
                    break;
                }
                let before = uncovered.clone();
                uncovered = targets.clone();
                uncovered.subtract(&variant.covered(&h));
                newly_covered = before;
                newly_covered.subtract(&uncovered);
            }
            _ => break,
        }
    }
    // Self-add remaining uncovered items.
    let pending: Vec<usize> = uncovered.iter().collect();
    for item in pending {
        for e in variant.force_cover(item) {
            h.insert(e);
        }
    }
    h
}

/// Exact minimum 2-spanner by branch and bound. Ground truth for small
/// graphs (think `m ≤ 40`); runtime is exponential in the worst case.
///
/// Branches on the uncovered edge with the fewest covering options:
/// either the edge itself joins the spanner, or one of its 2-paths
/// (through a common neighbor) does.
pub fn exact_min_2_spanner(g: &Graph) -> EdgeSet {
    exact_min_2_spanner_weighted(g, &EdgeWeights::unit(g)).0
}

/// Exact minimum-cost weighted 2-spanner by branch and bound; returns
/// the spanner and its cost.
pub fn exact_min_2_spanner_weighted(g: &Graph, w: &EdgeWeights) -> (EdgeSet, u64) {
    let m = g.num_edges();
    // Start from the whole graph as the incumbent.
    let mut best = EdgeSet::full(m);
    let mut best_cost: u64 = w.total();
    let mut current = EdgeSet::new(m);
    // Weight-0 edges are always free to take.
    for (e, weight) in w.iter() {
        if weight == 0 {
            current.insert(e);
        }
    }
    let zero_cost_base = 0u64;
    branch_2(
        g,
        w,
        &mut current,
        zero_cost_base,
        &mut best,
        &mut best_cost,
    );
    (best, best_cost)
}

fn branch_2(
    g: &Graph,
    w: &EdgeWeights,
    current: &mut EdgeSet,
    cost: u64,
    best: &mut EdgeSet,
    best_cost: &mut u64,
) {
    if cost >= *best_cost {
        return;
    }
    // Pick the uncovered edge with the fewest covering options.
    let mut pick: Option<(EdgeId, Vec<Vec<EdgeId>>)> = None;
    for (e, u, v) in g.edges() {
        if current.contains(e) {
            continue;
        }
        if dsa_graphs::traversal::covers_edge(g, current, e, 2) {
            continue;
        }
        let mut options: Vec<Vec<EdgeId>> = vec![vec![e]];
        for (x, eux) in g.neighbors(u) {
            if x == v {
                continue;
            }
            if let Some(exv) = g.edge_id(x, v) {
                options.push(vec![eux, exv]);
            }
        }
        if pick.as_ref().is_none_or(|(_, o)| options.len() < o.len()) {
            pick = Some((e, options));
        }
        if pick.as_ref().is_some_and(|(_, o)| o.len() == 1) {
            break;
        }
    }
    let Some((_, options)) = pick else {
        // Everything covered: new incumbent.
        if cost < *best_cost {
            *best = current.clone();
            *best_cost = cost;
        }
        return;
    };
    for option in options {
        let added: Vec<EdgeId> = option
            .iter()
            .copied()
            .filter(|&e| !current.contains(e))
            .collect();
        if added.is_empty() {
            continue;
        }
        let extra: u64 = added.iter().map(|&e| w.get(e)).sum();
        for &e in &added {
            current.insert(e);
        }
        branch_2(g, w, current, cost + extra, best, best_cost);
        for &e in &added {
            current.remove(e);
        }
    }
}

/// Exact minimum k-spanner by branch and bound over covering paths.
/// Ground truth for the (1+ε) experiments; small graphs only.
pub fn exact_min_k_spanner(g: &Graph, k: usize) -> EdgeSet {
    let targets: Vec<EdgeId> = (0..g.num_edges()).collect();
    exact_min_spanner_covering(g, &targets, k)
}

/// Exact minimum set of edges of `g` covering every edge in `targets`
/// within stretch `k` (the `g(v, d)` oracle of the Section 6
/// algorithm: a spanner for a *subset* of the edges may use any edge of
/// the whole graph). Branch and bound; small instances only.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn exact_min_spanner_covering(g: &Graph, targets: &[EdgeId], k: usize) -> EdgeSet {
    exact_min_spanner_covering_weighted(g, &EdgeWeights::unit(g), targets, k).0
}

/// Weighted version of [`exact_min_spanner_covering`]: minimizes the
/// total weight of the chosen edges. Used by the weighted (1+ε)
/// algorithm (the paper notes the Section 6 framework adapts to the
/// weighted case directly).
///
/// # Panics
///
/// Panics if `k == 0` or the weights don't match the graph.
pub fn exact_min_spanner_covering_weighted(
    g: &Graph,
    w: &EdgeWeights,
    targets: &[EdgeId],
    k: usize,
) -> (EdgeSet, u64) {
    assert!(k >= 1, "stretch must be at least 1");
    assert_eq!(w.len(), g.num_edges(), "weights must match edges");
    let m = g.num_edges();
    let mut best = EdgeSet::full(m);
    let mut best_cost = w.total() + 1;
    let mut current = EdgeSet::new(m);
    // Weight-0 edges are free to take.
    for (e, weight) in w.iter() {
        if weight == 0 {
            current.insert(e);
        }
    }
    branch_k(g, w, k, targets, &mut current, 0, &mut best, &mut best_cost);
    (best, best_cost)
}

#[allow(clippy::too_many_arguments)]
fn branch_k(
    g: &Graph,
    w: &EdgeWeights,
    k: usize,
    targets: &[EdgeId],
    current: &mut EdgeSet,
    cost: u64,
    best: &mut EdgeSet,
    best_cost: &mut u64,
) {
    if cost >= *best_cost {
        return;
    }
    // First uncovered target edge, fewest covering paths.
    let mut pick: Option<Vec<Vec<EdgeId>>> = None;
    for &e in targets {
        let (u, v) = g.endpoints(e);
        if dsa_graphs::traversal::covers_edge(g, current, e, k) {
            continue;
        }
        let paths = paths_up_to(g, u, v, k);
        if pick.as_ref().is_none_or(|p| paths.len() < p.len()) {
            pick = Some(paths);
        }
    }
    let Some(paths) = pick else {
        if cost < *best_cost {
            *best = current.clone();
            *best_cost = cost;
        }
        return;
    };
    for path in paths {
        let added: Vec<EdgeId> = path
            .iter()
            .copied()
            .filter(|&e| !current.contains(e))
            .collect();
        if added.is_empty() {
            continue;
        }
        let extra: u64 = added.iter().map(|&e| w.get(e)).sum();
        for &e in &added {
            current.insert(e);
        }
        branch_k(g, w, k, targets, current, cost + extra, best, best_cost);
        for &e in &added {
            current.remove(e);
        }
    }
}

/// All simple paths of length at most `k` between `u` and `v`, as edge
/// id lists.
pub(crate) fn paths_up_to(g: &Graph, u: VertexId, v: VertexId, k: usize) -> Vec<Vec<EdgeId>> {
    let mut out = Vec::new();
    let mut stack_edges: Vec<EdgeId> = Vec::new();
    let mut visited = vec![false; g.num_vertices()];
    visited[u] = true;
    dfs_paths(g, u, v, k, &mut visited, &mut stack_edges, &mut out);
    out
}

fn dfs_paths(
    g: &Graph,
    at: VertexId,
    target: VertexId,
    budget: usize,
    visited: &mut [bool],
    stack_edges: &mut Vec<EdgeId>,
    out: &mut Vec<Vec<EdgeId>>,
) {
    if at == target && !stack_edges.is_empty() {
        out.push(stack_edges.clone());
        return;
    }
    if budget == 0 {
        return;
    }
    for (x, e) in g.neighbors(at) {
        if visited[x] && x != target {
            continue;
        }
        if x == target {
            stack_edges.push(e);
            out.push(stack_edges.clone());
            stack_edges.pop();
            continue;
        }
        visited[x] = true;
        stack_edges.push(e);
        dfs_paths(g, x, target, budget - 1, visited, stack_edges, out);
        stack_edges.pop();
        visited[x] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_k_spanner, spanner_cost};
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_matches_structure_on_complete_graph() {
        let g = gen::complete(8);
        let h = greedy_2_spanner(&g);
        assert!(is_k_spanner(&g, &h, 2));
        // The densest star is a full star (density (n-1)(n-2)/2 / (n-1));
        // greedy should land near star size.
        assert!(h.len() <= 2 * (g.num_vertices() - 1), "got {}", h.len());
    }

    #[test]
    fn exact_on_complete_graph_is_a_star() {
        let g = gen::complete(5);
        let h = exact_min_2_spanner(&g);
        assert!(is_k_spanner(&g, &h, 2));
        assert_eq!(h.len(), 4, "K5's minimum 2-spanner is a spanning star");
    }

    #[test]
    fn exact_on_path_is_whole_graph() {
        let g = gen::path(6);
        let h = exact_min_2_spanner(&g);
        assert_eq!(h.len(), g.num_edges());
    }

    #[test]
    fn exact_is_lower_bound_for_greedy_and_distributed() {
        let mut rng = StdRng::seed_from_u64(21);
        for seed in 0..4u64 {
            let g = gen::gnp_connected(9, 0.4, &mut rng);
            let opt = exact_min_2_spanner(&g);
            let greedy = greedy_2_spanner(&g);
            let dist = crate::dist::min_2_spanner(&g, &crate::dist::EngineConfig::seeded(seed));
            assert!(is_k_spanner(&g, &opt, 2));
            assert!(is_k_spanner(&g, &greedy, 2));
            assert!(opt.len() <= greedy.len());
            assert!(opt.len() <= dist.spanner.len());
        }
    }

    #[test]
    fn weighted_exact_prefers_cheap_cover() {
        // Triangle: edge 0-2 has huge weight but can be covered by the
        // two cheap edges.
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let w = EdgeWeights::from_vec(vec![1, 1, 100]);
        let (h, cost) = exact_min_2_spanner_weighted(&g, &w);
        assert_eq!(cost, 2);
        assert!(!h.contains(2));
        assert!(is_k_spanner(&g, &h, 2));
    }

    #[test]
    fn weighted_greedy_valid_and_bounded() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::gnp_connected(12, 0.35, &mut rng);
        let w = gen::random_weights(g.num_edges(), 1, 9, &mut rng);
        let h = greedy_2_spanner_weighted(&g, &w);
        assert!(is_k_spanner(&g, &h, 2));
        let (_, opt_cost) = exact_min_2_spanner_weighted(&g, &w);
        let cost = spanner_cost(&h, &w);
        assert!(cost >= opt_cost);
        // log Δ style ratio on a 12-vertex graph stays small.
        assert!(cost <= 8 * opt_cost, "cost {cost} vs opt {opt_cost}");
    }

    #[test]
    fn exact_k_spanner_monotone_in_k() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = gen::gnp_connected(8, 0.35, &mut rng);
        let h2 = exact_min_k_spanner(&g, 2);
        let h3 = exact_min_k_spanner(&g, 3);
        let h4 = exact_min_k_spanner(&g, 4);
        assert!(is_k_spanner(&g, &h2, 2));
        assert!(is_k_spanner(&g, &h3, 3));
        assert!(is_k_spanner(&g, &h4, 4));
        assert!(h3.len() <= h2.len());
        assert!(h4.len() <= h3.len());
    }

    #[test]
    fn greedy_directed_valid_and_sparse_on_bidirected_complete() {
        let mut g = DiGraph::new(8);
        for u in 0..8 {
            for v in 0..8 {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        let h = greedy_2_spanner_directed(&g);
        assert!(crate::verify::is_k_spanner_directed(&g, &h, 2));
        assert!(h.len() < g.num_edges() / 2, "got {}", h.len());
    }

    #[test]
    fn greedy_client_server_valid() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = gen::gnp_connected(20, 0.3, &mut rng);
        let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
        let h = greedy_2_spanner_client_server(&g, &clients, &servers);
        assert!(h.is_subset_of(&servers));
        assert!(crate::verify::is_client_server_2_spanner(
            &g, &clients, &servers, &h
        ));
    }

    #[test]
    fn paths_enumeration_counts() {
        let g = gen::complete(4);
        // Paths of length <= 2 from 0 to 1: direct, via 2, via 3.
        let paths = paths_up_to(&g, 0, 1, 2);
        assert_eq!(paths.len(), 3);
        // Length <= 3 adds 0-2-3-1 and 0-3-2-1.
        let paths3 = paths_up_to(&g, 0, 1, 3);
        assert_eq!(paths3.len(), 5);
    }
}
