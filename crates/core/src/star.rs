//! Stars, star densities, and the star-choice mechanism of Section 4.1.
//!
//! A *v-star* is a non-empty subset of edges between a vertex `v` and
//! some of its neighbors; its *density* with respect to the uncovered
//! edge set `H_v` is the number of uncovered edges it 2-spans divided by
//! its size (or weight). Choosing a star is choosing a set of **leaves**,
//! so this module represents the per-vertex search space as a
//! [`LocalStars`] structure — a small vertex-weighted multigraph on the
//! neighbors of `v` — and implements:
//!
//! * the densest star, via the flow reduction (`dsa-flow`),
//! * the paper's Section 4.1 star-choice mechanism: start from the
//!   densest star and greedily absorb single leaves or disjoint stars
//!   while the density stays above `ρ̃/4` (or `ρ̃/8` for the directed
//!   variant), and, while the vertex's rounded density is unchanged,
//!   only ever *shrink* the previously chosen star (Claim 4.4).

use dsa_flow::densest_weighted_subgraph;
use dsa_graphs::{Ratio, VertexId};

/// An inline list of at most two ids (edge ids or item indices).
///
/// Every leaf carries at most two spanner edges (the antiparallel
/// directed pair) and every leaf pair spans at most two items, so the
/// hot per-vertex-per-iteration structures never touch the heap. The
/// engine builds one [`Leaf`] per neighbor and one [`Pair`] per
/// spanning neighbor pair on every vertex of every iteration; keeping
/// these inline removes two mallocs per element from the Step-1 loop.
///
/// Dereferences to `&[usize]`, so `.len()`, `.iter()`, indexing, and
/// `for &e in &list` all work as they did when these were `Vec`s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IdList {
    len: u8,
    buf: [usize; 2],
}

impl IdList {
    /// The empty list.
    pub const fn new() -> Self {
        IdList {
            len: 0,
            buf: [0; 2],
        }
    }

    /// A one-element list.
    pub const fn one(id: usize) -> Self {
        IdList {
            len: 1,
            buf: [id, 0],
        }
    }

    /// A two-element list.
    pub const fn two(a: usize, b: usize) -> Self {
        IdList {
            len: 2,
            buf: [a, b],
        }
    }

    /// Appends `id`.
    ///
    /// # Panics
    ///
    /// Panics if the list already holds two ids.
    pub fn push(&mut self, id: usize) {
        assert!(self.len < 2, "IdList holds at most two ids");
        self.buf[self.len as usize] = id;
        self.len += 1;
    }

    /// The ids as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.buf[..self.len as usize]
    }
}

impl std::ops::Deref for IdList {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl<'a> IntoIterator for &'a IdList {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<usize> for IdList {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut out = IdList::new();
        for id in iter {
            out.push(id);
        }
        out
    }
}

/// One potential leaf of a star centered at some vertex `v`.
#[derive(Clone, Debug)]
pub struct Leaf {
    /// The neighbor vertex this leaf stands for.
    pub vertex: VertexId,
    /// Contribution of this leaf to the density denominator: 1 for the
    /// unweighted problem, the edge weight for the weighted problem,
    /// the number of directed star edges for the directed problem.
    pub weight: u64,
    /// The selectable edges added to the spanner if this leaf is chosen
    /// (one undirected edge, or up to two directed edges).
    pub edges: IdList,
}

/// An unordered pair of leaves that 2-spans one or more uncovered items.
#[derive(Clone, Debug)]
pub struct Pair {
    /// Index of the first leaf in [`LocalStars::leaves`].
    pub a: usize,
    /// Index of the second leaf.
    pub b: usize,
    /// The uncovered items 2-spanned when both leaves are chosen
    /// (multiplicity = length; up to 2 for antiparallel directed edges).
    pub items: IdList,
}

/// Reusable buffers for [`LocalStars::choose_star_with`], so the
/// engine's Step-3 loop allocates nothing per vertex in steady state.
///
/// The inner per-leaf vectors keep their capacity across calls; each
/// call leaves them cleared for the next (debug-asserted on entry).
#[derive(Debug, Default)]
pub struct StarScratch {
    /// Pair adjacency per leaf, indexed by leaf id: `(other, mult)`.
    by_leaf: Vec<Vec<(usize, u64)>>,
}

/// The star search space at one vertex for one iteration: its potential
/// leaves and the uncovered items each leaf pair would 2-span.
#[derive(Clone, Debug, Default)]
pub struct LocalStars {
    /// Potential leaves (the neighbors of `v`), in ascending vertex order.
    pub leaves: Vec<Leaf>,
    /// Leaf pairs spanning at least one uncovered item.
    pub pairs: Vec<Pair>,
}

/// A chosen star: leaf membership plus bookkeeping about how the choice
/// was made.
#[derive(Clone, Debug)]
pub struct StarChoice {
    /// `member[i]` — whether leaf `i` is in the star.
    pub member: Vec<bool>,
    /// Whether the Section 4.1 shrink-only path failed and a fresh star
    /// had to be chosen. Claim 4.4 proves this never happens; the engine
    /// counts occurrences so the tests can assert the claim empirically.
    pub fallback: bool,
}

/// `2^exp` as an exact [`Ratio`] (negative exponents allowed).
///
/// # Panics
///
/// Panics for `|exp| > 62`.
pub fn pow2_ratio(exp: i32) -> Ratio {
    assert!(exp.unsigned_abs() <= 62, "exponent {exp} out of range");
    if exp >= 0 {
        Ratio::new(1u64 << exp, 1)
    } else {
        Ratio::new(1, 1u64 << (-exp))
    }
}

/// The candidacy/termination threshold of the weighted variant
/// (Section 4.3.2): the largest power of two at most `1 / w_max`,
/// saturating at `2^-62` ([`pow2_ratio`]'s exact range) for
/// astronomical weights — the threshold only decides when termination
/// self-adds leftovers, never correctness.
pub fn weight_threshold(w_max: u64) -> Ratio {
    let w = w_max.max(1);
    let mut j = 0i32;
    while j < 62 && pow2_ratio(j) < Ratio::new(w, 1) {
        j += 1;
    }
    pow2_ratio(-j)
}

impl LocalStars {
    /// Whether no pair spans anything (density 0 for every star).
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of uncovered items 2-spanned by the leaf set `member`.
    pub fn spanned_count(&self, member: &[bool]) -> u64 {
        self.pairs
            .iter()
            .filter(|p| member[p.a] && member[p.b])
            .map(|p| p.items.len() as u64)
            .sum()
    }

    /// The uncovered items 2-spanned by the leaf set `member`.
    pub fn spanned_items(&self, member: &[bool]) -> Vec<usize> {
        let mut items: Vec<usize> = self
            .pairs
            .iter()
            .filter(|p| member[p.a] && member[p.b])
            .flat_map(|p| p.items.iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();
        items
    }

    /// Total leaf weight of the set `member`, saturating at
    /// `u64::MAX` (astronomically weighted stars then read as density
    /// ~0 instead of overflowing).
    pub fn weight_of(&self, member: &[bool]) -> u64 {
        self.leaves
            .iter()
            .zip(member)
            .filter(|&(_, &m)| m)
            .fold(0u64, |acc, (l, _)| acc.saturating_add(l.weight))
    }

    /// Density of the leaf set `member`; `None` if the set has zero
    /// total weight (then it spans nothing by the caller's invariants)
    /// or is empty.
    pub fn density_of(&self, member: &[bool]) -> Option<Ratio> {
        let w = self.weight_of(member);
        if w == 0 {
            return None;
        }
        Some(Ratio::new(self.spanned_count(member), w))
    }

    /// The density of the densest star (`ρ(v, H_v)` in the paper), or
    /// `None` when every star has density 0.
    pub fn max_density(&self) -> Option<Ratio> {
        self.densest(None).map(|(_, d)| d)
    }

    /// The densest star restricted to leaves allowed by `within`
    /// (`None` = all leaves). Returns the leaf membership and density.
    ///
    /// Zero-weight leaves in range are always included — they can only
    /// increase the density (the weighted variant's weight-0 edges).
    pub fn densest(&self, within: Option<&[bool]>) -> Option<(Vec<bool>, Ratio)> {
        let allowed = |i: usize| within.is_none_or(|w| w[i]);
        // Build the local instance over allowed leaves.
        let idx: Vec<usize> = (0..self.leaves.len()).filter(|&i| allowed(i)).collect();
        if idx.is_empty() {
            return None;
        }
        let back: Vec<usize> = {
            let mut b = vec![usize::MAX; self.leaves.len()];
            for (k, &i) in idx.iter().enumerate() {
                b[i] = k;
            }
            b
        };
        let weights: Vec<u64> = idx.iter().map(|&i| self.leaves[i].weight).collect();
        let edges: Vec<(usize, usize, u64)> = self
            .pairs
            .iter()
            .filter(|p| allowed(p.a) && allowed(p.b) && !p.items.is_empty())
            .map(|p| (back[p.a], back[p.b], p.items.len() as u64))
            .collect();
        // The flow oracle's exact arithmetic needs
        // total_weight² · 2 · total_multiplicity to fit in i64; on
        // astronomically weighted instances fall back to the densest
        // single pair instead of panicking.
        let total_w: u128 = weights.iter().map(|&w| w as u128).sum();
        let total_m: u128 = edges.iter().map(|&(_, _, m)| m as u128).sum();
        let oracle_safe = total_w
            .checked_mul(total_w)
            .and_then(|w2| w2.checked_mul(2 * total_m.max(1)))
            .is_some_and(|bound| bound <= i64::MAX as u128);
        if !oracle_safe {
            return self.densest_pair(within);
        }
        let best = densest_weighted_subgraph(&weights, &edges)?;
        let mut member = vec![false; self.leaves.len()];
        for &k in &best.vertices {
            member[idx[k]] = true;
        }
        // Include free leaves.
        for &i in &idx {
            if self.leaves[i].weight == 0 {
                member[i] = true;
            }
        }
        let density = self.density_of(&member).unwrap_or(best.density);
        Some((member, density))
    }

    /// Overflow fallback for [`LocalStars::densest`]: the densest
    /// two-leaf star (plus free leaves), found by direct scan. Only
    /// used when the flow oracle's scaled capacities would overflow.
    fn densest_pair(&self, within: Option<&[bool]>) -> Option<(Vec<bool>, Ratio)> {
        let allowed = |i: usize| within.is_none_or(|w| w[i]);
        let mut best: Option<(Vec<bool>, Ratio)> = None;
        for p in &self.pairs {
            if !allowed(p.a) || !allowed(p.b) || p.items.is_empty() {
                continue;
            }
            let mut member = vec![false; self.leaves.len()];
            member[p.a] = true;
            member[p.b] = true;
            for (i, leaf) in self.leaves.iter().enumerate() {
                if leaf.weight == 0 && allowed(i) {
                    member[i] = true;
                }
            }
            if let Some(d) = self.density_of(&member) {
                if best.as_ref().is_none_or(|(_, bd)| d > *bd) {
                    best = Some((member, d));
                }
            }
        }
        best
    }

    /// The Section 4.1 star choice.
    ///
    /// `threshold` is `ρ̃(v)/4` (undirected) or `ρ̃(v)/8` (directed),
    /// where `ρ̃(v)` is the vertex's rounded density. `prev` is the star
    /// chosen the last time the vertex was a candidate *with the same
    /// rounded density*, if any; when present the choice is restricted
    /// to shrink it (Claim 4.4 proves the restriction never fails; the
    /// returned [`StarChoice::fallback`] flag records if it did).
    ///
    /// Returns `None` if no star with positive density exists at all.
    pub fn choose_star(&self, threshold: Ratio, prev: Option<&[bool]>) -> Option<StarChoice> {
        self.choose_star_with(threshold, prev, &mut StarScratch::default())
    }

    /// [`LocalStars::choose_star`] with caller-owned scratch buffers,
    /// for hot loops that choose stars for many vertices in a row.
    pub fn choose_star_with(
        &self,
        threshold: Ratio,
        prev: Option<&[bool]>,
        scratch: &mut StarScratch,
    ) -> Option<StarChoice> {
        self.choose_star_seeded(threshold, prev, None, scratch)
    }

    /// [`LocalStars::choose_star_with`] with an optional precomputed
    /// unrestricted-densest result (what [`LocalStars::densest`] with
    /// `within = None` returns). The engine computes exactly that in
    /// Step 1 for the density aggregate; passing it here spares the
    /// star choice a duplicate flow-oracle call per fresh candidate.
    pub fn choose_star_seeded(
        &self,
        threshold: Ratio,
        prev: Option<&[bool]>,
        cached_densest: Option<&Option<(Vec<bool>, Ratio)>>,
        scratch: &mut StarScratch,
    ) -> Option<StarChoice> {
        let densest_unrestricted = |ls: &LocalStars| match cached_densest {
            Some(c) => c.clone(),
            None => ls.densest(None),
        };
        if let Some(prev) = prev {
            // Same rounded density as before: keep the previous star if
            // it is still dense enough.
            if let Some(d) = self.density_of(prev) {
                if d >= threshold {
                    return Some(StarChoice {
                        member: prev.to_vec(),
                        fallback: false,
                    });
                }
            }
            // Otherwise look for a dense star inside the previous one.
            if let Some((seed, d)) = self.densest(Some(prev)) {
                if d >= threshold {
                    let member = self.grow(seed, threshold, Some(prev), scratch);
                    return Some(StarChoice {
                        member,
                        fallback: false,
                    });
                }
            }
            // Claim 4.4 says this is unreachable; fall back to a fresh
            // choice and record it.
            let (seed, _) = densest_unrestricted(self)?;
            let member = self.grow(seed, threshold, None, scratch);
            return Some(StarChoice {
                member,
                fallback: true,
            });
        }
        let (seed, _) = densest_unrestricted(self)?;
        let member = self.grow(seed, threshold, None, scratch);
        Some(StarChoice {
            member,
            fallback: false,
        })
    }

    /// Greedy absorption loop of Section 4.1: while possible, add a
    /// single leaf keeping the density at least `threshold`; otherwise
    /// add a disjoint star of density at least `threshold`; stop when
    /// neither applies. Restricted to `within` when given.
    fn grow(
        &self,
        mut member: Vec<bool>,
        threshold: Ratio,
        within: Option<&[bool]>,
        scratch: &mut StarScratch,
    ) -> Vec<bool> {
        let allowed = |i: usize| within.is_none_or(|w| w[i]);
        // Pair adjacency per leaf for incremental density updates,
        // built in the reused arena (each call leaves it cleared).
        debug_assert!(
            scratch.by_leaf.iter().all(Vec::is_empty),
            "StarScratch not cleared between uses"
        );
        if scratch.by_leaf.len() < self.leaves.len() {
            scratch.by_leaf.resize(self.leaves.len(), Vec::new());
        }
        let by_leaf = &mut scratch.by_leaf;
        for p in &self.pairs {
            by_leaf[p.a].push((p.b, p.items.len() as u64));
            by_leaf[p.b].push((p.a, p.items.len() as u64));
        }
        let mut num = self.spanned_count(&member);
        let mut den = self.weight_of(&member);
        loop {
            // Try single leaves first.
            let mut added_leaf = false;
            loop {
                let mut best: Option<(usize, u64)> = None;
                for i in 0..self.leaves.len() {
                    if member[i] || !allowed(i) {
                        continue;
                    }
                    let gain: u64 = by_leaf[i]
                        .iter()
                        .filter(|&&(j, _)| member[j])
                        .map(|&(_, mult)| mult)
                        .sum();
                    let new_num = num + gain;
                    let new_den = den.saturating_add(self.leaves[i].weight);
                    if new_den == 0 {
                        continue;
                    }
                    if Ratio::new(new_num, new_den) >= threshold
                        && best.is_none_or(|(_, g)| gain > g)
                    {
                        best = Some((i, gain));
                    }
                }
                match best {
                    Some((i, gain)) => {
                        member[i] = true;
                        num += gain;
                        den = den.saturating_add(self.leaves[i].weight);
                        added_leaf = true;
                    }
                    None => break,
                }
            }
            // Then a disjoint star.
            let complement: Vec<bool> = (0..self.leaves.len())
                .map(|i| !member[i] && allowed(i))
                .collect();
            let Some((disjoint, d)) = self.densest(Some(&complement)) else {
                if added_leaf {
                    continue;
                }
                break;
            };
            if d >= threshold {
                for (m, dj) in member.iter_mut().zip(&disjoint) {
                    *m |= dj;
                }
                num = self.spanned_count(&member);
                den = self.weight_of(&member);
            } else if !added_leaf {
                break;
            }
        }
        for adj in &mut by_leaf[..self.leaves.len()] {
            adj.clear();
        }
        member
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Local stars of the center of a wheel-like neighborhood:
    /// leaves 0..4, pairs forming a 4-cycle plus one chord.
    fn wheel() -> LocalStars {
        let leaves = (0..4)
            .map(|i| Leaf {
                vertex: 10 + i,
                weight: 1,
                edges: IdList::one(i),
            })
            .collect();
        let pairs = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| Pair {
                a,
                b,
                items: IdList::one(100 + k),
            })
            .collect();
        LocalStars { leaves, pairs }
    }

    #[test]
    fn densities() {
        let ls = wheel();
        assert_eq!(ls.density_of(&[true; 4]), Some(Ratio::new(5, 4)));
        assert_eq!(
            ls.density_of(&[true, true, true, false]),
            Some(Ratio::new(3, 3))
        );
        assert_eq!(ls.max_density(), Some(Ratio::new(5, 4)));
        assert_eq!(ls.spanned_count(&[true, true, false, false]), 1);
        assert_eq!(
            ls.spanned_items(&[true, true, true, false]),
            vec![100, 101, 104]
        );
    }

    #[test]
    fn pow2_ratios() {
        assert_eq!(pow2_ratio(0), Ratio::one());
        assert_eq!(pow2_ratio(3), Ratio::new(8, 1));
        assert_eq!(pow2_ratio(-2), Ratio::new(1, 4));
    }

    #[test]
    fn densest_respects_restriction() {
        let ls = wheel();
        // Restricted to {0, 1, 3}: pairs (0,1) and (3,0) live inside,
        // density 2/3.
        let within = vec![true, true, false, true];
        let (member, d) = ls.densest(Some(&within)).unwrap();
        assert_eq!(d, Ratio::new(2, 3));
        assert!(member.iter().zip(&within).all(|(&m, &w)| !m || w));
    }

    #[test]
    fn choose_star_fresh_takes_densest_and_grows() {
        let ls = wheel();
        // Rounded density of 5/4 is 2; threshold 2/4 = 1/2.
        let choice = ls.choose_star(Ratio::new(1, 2), None).unwrap();
        assert!(!choice.fallback);
        // The grown star must meet the threshold.
        assert!(ls.density_of(&choice.member).unwrap() >= Ratio::new(1, 2));
        // All leaves qualify here: the whole neighborhood has density 5/4.
        assert_eq!(choice.member, vec![true; 4]);
    }

    #[test]
    fn choose_star_keeps_previous_when_dense_enough() {
        let ls = wheel();
        let prev = vec![true, true, true, false]; // density 1
        let choice = ls.choose_star(Ratio::new(1, 2), Some(&prev)).unwrap();
        assert!(!choice.fallback);
        assert_eq!(choice.member, prev);
    }

    #[test]
    fn choose_star_shrinks_previous_when_it_degraded() {
        // Previous star {0,1,2,3} but the pairs touching leaf 3 are now
        // covered: only (0,1), (1,2), (0,2) remain.
        let leaves = (0..4)
            .map(|i| Leaf {
                vertex: 10 + i,
                weight: 1,
                edges: IdList::one(i),
            })
            .collect();
        let pairs = [(0, 1), (1, 2), (0, 2)]
            .iter()
            .enumerate()
            .map(|(k, &(a, b))| Pair {
                a,
                b,
                items: IdList::one(k),
            })
            .collect();
        let ls = LocalStars { leaves, pairs };
        let prev = vec![true; 4];
        // threshold 1: prev has density 3/4 < 1, densest within prev is
        // {0,1,2} with density 1.
        let choice = ls.choose_star(Ratio::one(), Some(&prev)).unwrap();
        assert!(!choice.fallback);
        assert_eq!(choice.member, vec![true, true, true, false]);
        // The choice is a subset of prev (Claim 4.4 invariant).
        assert!(choice.member.iter().zip(&prev).all(|(&m, &p)| !m || p));
    }

    #[test]
    fn zero_weight_leaves_always_join() {
        let leaves = vec![
            Leaf {
                vertex: 1,
                weight: 0,
                edges: IdList::one(0),
            },
            Leaf {
                vertex: 2,
                weight: 3,
                edges: IdList::one(1),
            },
            Leaf {
                vertex: 3,
                weight: 3,
                edges: IdList::one(2),
            },
        ];
        let pairs = vec![
            Pair {
                a: 0,
                b: 1,
                items: IdList::one(7),
            },
            Pair {
                a: 1,
                b: 2,
                items: IdList::one(8),
            },
        ];
        let ls = LocalStars { leaves, pairs };
        let (member, d) = ls.densest(None).unwrap();
        assert!(member[0], "free leaf must be included");
        assert_eq!(d, ls.density_of(&member).unwrap());
    }

    #[test]
    fn empty_pairs_mean_no_star() {
        let ls = LocalStars {
            leaves: vec![Leaf {
                vertex: 1,
                weight: 1,
                edges: IdList::one(0),
            }],
            pairs: Vec::new(),
        };
        assert!(ls.is_empty());
        assert_eq!(ls.max_density(), None);
        assert!(ls.choose_star(Ratio::one(), None).is_none());
    }
}
