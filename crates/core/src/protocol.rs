//! The Section-4 minimum 2-spanner algorithm as a genuine
//! message-passing LOCAL protocol.
//!
//! [`crate::dist`] runs the algorithm through a centrally-scheduled
//! engine; this module spells out the actual communication, so that
//! (a) the claim "each iteration takes O(1) LOCAL rounds using only the
//! 2-neighborhood" is *executed*, not asserted, and (b) the message
//! sizes can be measured: the paper's Section 1.3 observes that a
//! direct CONGEST implementation costs an `O(Δ)` factor because
//! adjacency lists and candidate stars must be shipped — experiment E12
//! measures exactly that on this protocol.
//!
//! One iteration = [`PHASES`] = 7 rounds:
//!
//! | phase | message | size (words) |
//! |---|---|---|
//! | 0 | endpoints of my uncovered incident edges | O(Δ) |
//! | 1 | my density `ρ(v, H_v)` (after local flow computation) | O(1) |
//! | 2 | max density over my closed neighborhood | O(1) |
//! | 3 | candidacy: `r_v` + chosen star's leaves | O(Δ) |
//! | 4 | votes (one per responsible uncovered edge) | O(1) |
//! | 5 | accepted star leaves + leftover additions | O(Δ) |
//! | 6 | my incident spanner edges | O(Δ) |
//!
//! Vertices decide everything from received messages only; the
//! simulator enforces that messages travel one hop per round.

use std::collections::{BTreeMap, BTreeSet};

use rand::Rng;

use dsa_graphs::{EdgeSet, EdgeWeights, Graph, Ratio, VertexId};
use dsa_runtime::{
    Metrics, Network, Outbox, Protocol, RoundCtx, Simulator, Word, WordReader, WordWriter,
};

use crate::star::{pow2_ratio, weight_threshold, IdList, Leaf, LocalStars, Pair};

/// Rounds per algorithm iteration.
pub const PHASES: u64 = 7;

/// The LOCAL 2-spanner protocol: undirected, unweighted by default,
/// or weighted via [`TwoSpannerProtocol::weighted`] (Section 4.3.2 —
/// densities become `|C_S|/w(S)`, weight-0 edges are pre-adopted, and
/// the candidacy/termination threshold becomes a power of two at most
/// `1/w_max` over the 2-neighborhood, aggregated by messages like the
/// densities are).
///
/// The phase schedule starts with a phase-6 round so that pre-adopted
/// weight-0 edges are announced before the first density computation.
#[derive(Clone, Debug)]
pub struct TwoSpannerProtocol<'a> {
    /// Acceptance rule: `votes ≥ |C_v| / accept_denominator` (paper: 8).
    pub accept_denominator: u64,
    mode: Mode<'a>,
}

/// Which Section-4 variant the protocol runs.
#[derive(Clone, Debug)]
enum Mode<'a> {
    Unweighted,
    Weighted {
        g: &'a Graph,
        w: &'a EdgeWeights,
    },
    ClientServer {
        g: &'a Graph,
        clients: &'a EdgeSet,
        servers: &'a EdgeSet,
    },
}

impl Default for TwoSpannerProtocol<'_> {
    fn default() -> Self {
        TwoSpannerProtocol {
            accept_denominator: 8,
            mode: Mode::Unweighted,
        }
    }
}

impl<'a> TwoSpannerProtocol<'a> {
    /// The weighted-variant protocol (Theorem 4.12).
    ///
    /// # Panics
    ///
    /// Panics if the weights don't match the graph.
    pub fn weighted(g: &'a Graph, w: &'a EdgeWeights) -> Self {
        assert_eq!(w.len(), g.num_edges(), "weights must match edges");
        TwoSpannerProtocol {
            accept_denominator: 8,
            mode: Mode::Weighted { g, w },
        }
    }

    /// The client-server variant protocol (Theorem 4.15): stars use
    /// server edges only, only client edges need covering, the
    /// threshold is 1/2, and termination is strict.
    ///
    /// # Panics
    ///
    /// Panics if the label universes don't match the graph.
    pub fn client_server(g: &'a Graph, clients: &'a EdgeSet, servers: &'a EdgeSet) -> Self {
        assert_eq!(clients.universe(), g.num_edges(), "client set mismatch");
        assert_eq!(servers.universe(), g.num_edges(), "server set mismatch");
        TwoSpannerProtocol {
            accept_denominator: 8,
            mode: Mode::ClientServer {
                g,
                clients,
                servers,
            },
        }
    }

    /// Weight of the edge between `v` and its neighbor `u` (1 when
    /// not in weighted mode).
    fn edge_weight(&self, v: VertexId, u: VertexId) -> u64 {
        match self.mode {
            Mode::Weighted { g, w } => w.get(g.edge_id(v, u).expect("neighbor edge")),
            _ => 1,
        }
    }

    /// Whether the edge `{v, u}` may join the spanner (a server edge).
    fn is_server(&self, v: VertexId, u: VertexId) -> bool {
        match self.mode {
            Mode::ClientServer { g, servers, .. } => {
                servers.contains(g.edge_id(v, u).expect("neighbor edge"))
            }
            _ => true,
        }
    }

    /// Whether the edge `{v, u}` needs covering (a client edge).
    fn is_client(&self, v: VertexId, u: VertexId) -> bool {
        match self.mode {
            Mode::ClientServer { g, clients, .. } => {
                clients.contains(g.edge_id(v, u).expect("neighbor edge"))
            }
            _ => true,
        }
    }
}

/// Per-vertex protocol state.
#[derive(Debug)]
pub struct TwoSpannerNode {
    neighbors: Vec<VertexId>,
    /// Other endpoints of my incident spanner edges.
    h_inc: BTreeSet<VertexId>,
    /// Other endpoints of my incident *covered* edges.
    covered_inc: BTreeSet<VertexId>,
    /// Iteration scratch: the star search space built in phase 1.
    local: LocalStars,
    /// Pair `p` of `local` spans the edge `hv_pairs[p.items[0]]`.
    hv_pairs: Vec<(VertexId, VertexId)>,
    rho: Ratio,
    max1: Ratio,
    /// Candidate scratch: chosen leaves, snapshot |C_v|, r_v.
    candidate: Option<(Vec<bool>, u64, u64)>,
    /// Star memory for the Section 4.1 monotone choice.
    prev_star: Option<(i32, Vec<bool>)>,
    /// Leftover edges recorded at termination, announced in phase 5.
    pending_leftovers: Vec<VertexId>,
    /// Max incident edge weight, aggregated like the densities so the
    /// weighted threshold `1/w_max` can be computed over the
    /// 2-neighborhood (1 everywhere when unweighted).
    my_wmax: u64,
    wmax1: u64,
    /// Neighbors over server edges (all neighbors outside
    /// client-server mode) — the potential star leaves.
    server_nbrs: Vec<VertexId>,
    terminated: bool,
    votes: u64,
    done: bool,
}

impl TwoSpannerNode {
    /// Neighbors whose edge to me is still uncovered.
    fn uncovered_inc(&self) -> Vec<VertexId> {
        self.neighbors
            .iter()
            .copied()
            .filter(|u| !self.covered_inc.contains(u))
            .collect()
    }
}

impl Protocol for TwoSpannerProtocol<'_> {
    type Node = TwoSpannerNode;

    fn init(&self, ctx: &mut RoundCtx<'_>) -> TwoSpannerNode {
        // Weighted mode pre-adopts weight-0 incident edges; they are
        // both in H and covered from the start. Client-server mode
        // marks non-client incident edges covered (they are not
        // targets) and restricts star leaves to server neighbors.
        let mut h_inc = BTreeSet::new();
        let mut covered_inc = BTreeSet::new();
        let mut my_wmax = 1;
        if matches!(self.mode, Mode::Weighted { .. }) {
            for &u in ctx.neighbors {
                let w = self.edge_weight(ctx.me, u);
                my_wmax = my_wmax.max(w);
                if w == 0 {
                    h_inc.insert(u);
                    covered_inc.insert(u);
                }
            }
        }
        if matches!(self.mode, Mode::ClientServer { .. }) {
            for &u in ctx.neighbors {
                if !self.is_client(ctx.me, u) {
                    covered_inc.insert(u);
                }
            }
        }
        let server_nbrs: Vec<VertexId> = ctx
            .neighbors
            .iter()
            .copied()
            .filter(|&u| self.is_server(ctx.me, u))
            .collect();
        TwoSpannerNode {
            neighbors: ctx.neighbors.to_vec(),
            h_inc,
            covered_inc,
            local: LocalStars::default(),
            hv_pairs: Vec::new(),
            rho: Ratio::zero(),
            max1: Ratio::zero(),
            candidate: None,
            prev_star: None,
            pending_leftovers: Vec::new(),
            my_wmax,
            wmax1: my_wmax,
            server_nbrs,
            terminated: false,
            votes: 0,
            done: ctx.neighbors.is_empty(),
        }
    }

    fn round(&self, node: &mut TwoSpannerNode, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
        // Round 1 runs phase 6 so pre-adopted weight-0 edges are
        // announced before the first density computation.
        match (ctx.round - 1 + 6) % PHASES {
            0 => phase0_uncovered(self, node, ctx, out),
            1 => phase1_density(self, node, ctx, out),
            2 => phase2_max1(node, ctx, out),
            3 => phase3_candidacy(self, node, ctx, out),
            4 => phase4_votes(node, ctx, out),
            5 => phase5_accept(self, node, ctx, out),
            6 => phase6_share_h(node, ctx, out),
            _ => unreachable!(),
        }
    }

    fn is_done(&self, node: &TwoSpannerNode) -> bool {
        node.done
    }
}

/// Phase 0: refresh coverage knowledge from the phase-6 spanner lists,
/// then broadcast my uncovered incident edges.
fn phase0_uncovered(
    p: &TwoSpannerProtocol<'_>,
    node: &mut TwoSpannerNode,
    ctx: &mut RoundCtx<'_>,
    out: &mut Outbox,
) {
    if ctx.round > 1 {
        // Inbox: each neighbor's incident-spanner list, plus its
        // incident-server list (used once, below).
        let mut nbr_h: BTreeMap<VertexId, BTreeSet<VertexId>> = BTreeMap::new();
        let mut nbr_servers: BTreeMap<VertexId, BTreeSet<VertexId>> = BTreeMap::new();
        for env in ctx.inbox {
            let mut r = WordReader::new(&env.words);
            let list: BTreeSet<VertexId> =
                r.read_list().into_iter().map(|w| w as VertexId).collect();
            let server_list: BTreeSet<VertexId> =
                r.read_list().into_iter().map(|w| w as VertexId).collect();
            nbr_h.insert(env.from, list);
            nbr_servers.insert(env.from, server_list);
        }
        // First phase 0 only: exclude incident client edges that no
        // server edges can ever cover (Section 4.3.3 restricts the
        // problem to coverable clients). Decidable locally from the
        // neighbors' server lists.
        if ctx.round == 2 && matches!(p.mode, Mode::ClientServer { .. }) {
            for &w in &node.neighbors.clone() {
                if node.covered_inc.contains(&w) {
                    continue;
                }
                let self_server = p.is_server(ctx.me, w);
                let coverable_via_path = node.neighbors.iter().any(|x| {
                    nbr_servers
                        .get(x)
                        .is_some_and(|list| list.contains(&ctx.me) && list.contains(&w))
                });
                if !self_server && !coverable_via_path {
                    node.covered_inc.insert(w);
                }
            }
        }
        for &w in &node.neighbors.clone() {
            if node.covered_inc.contains(&w) {
                continue;
            }
            let direct = node.h_inc.contains(&w);
            let via_two_path = node.neighbors.iter().any(|x| {
                nbr_h
                    .get(x)
                    .is_some_and(|list| list.contains(&ctx.me) && list.contains(&w))
            });
            if direct || via_two_path {
                node.covered_inc.insert(w);
            }
        }
        node.done = node.covered_inc.len() == node.neighbors.len();
    }
    let mut msg = WordWriter::new();
    let uncov: Vec<Word> = node.uncovered_inc().iter().map(|&u| u as Word).collect();
    msg.push_list(&uncov);
    out.broadcast(&node.neighbors, msg.finish());
}

/// Phase 1: build `H_v` from the received lists, compute the densest
/// star density with the flow oracle, broadcast it together with my
/// maximum incident weight (for the weighted threshold aggregate).
fn phase1_density(
    p: &TwoSpannerProtocol<'_>,
    node: &mut TwoSpannerNode,
    ctx: &mut RoundCtx<'_>,
    out: &mut Outbox,
) {
    // Potential leaves: server neighbors (all neighbors outside
    // client-server mode).
    let nbr_set: BTreeSet<VertexId> = node.server_nbrs.iter().copied().collect();
    let index: BTreeMap<VertexId, usize> = node
        .server_nbrs
        .iter()
        .enumerate()
        .map(|(i, &u)| (u, i))
        .collect();
    let mut pairs: Vec<Pair> = Vec::new();
    let mut hv_pairs: Vec<(VertexId, VertexId)> = Vec::new();
    let mut seen: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
    for env in ctx.inbox {
        let u = env.from;
        let mut r = WordReader::new(&env.words);
        for w in r.read_list() {
            let w = w as VertexId;
            // {u, w} is an uncovered edge; it belongs to H_v iff both
            // endpoints are my neighbors.
            if !nbr_set.contains(&w) || !nbr_set.contains(&u) {
                continue;
            }
            let key = (u.min(w), u.max(w));
            if !seen.insert(key) {
                continue;
            }
            let item = hv_pairs.len();
            hv_pairs.push(key);
            pairs.push(Pair {
                a: index[&key.0],
                b: index[&key.1],
                items: IdList::one(item),
            });
        }
    }
    let leaves: Vec<Leaf> = node
        .server_nbrs
        .iter()
        .enumerate()
        .map(|(i, &u)| Leaf {
            vertex: u,
            weight: p.edge_weight(ctx.me, u),
            edges: IdList::one(i),
        })
        .collect();
    node.local = LocalStars { leaves, pairs };
    node.hv_pairs = hv_pairs;
    node.rho = node.local.max_density().unwrap_or_else(Ratio::zero);

    let mut msg = WordWriter::new();
    msg.push_ratio(node.rho);
    msg.push(node.my_wmax);
    out.broadcast(&node.neighbors, msg.finish());
}

/// Phase 2: aggregate the closed-neighborhood maxima of density and
/// incident weight.
fn phase2_max1(node: &mut TwoSpannerNode, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
    let mut max1 = node.rho;
    let mut wmax1 = node.my_wmax;
    for env in ctx.inbox {
        let mut r = WordReader::new(&env.words);
        max1 = max1.max(r.read_ratio());
        wmax1 = wmax1.max(r.read());
    }
    node.max1 = max1;
    node.wmax1 = wmax1;
    let mut msg = WordWriter::new();
    msg.push_ratio(max1);
    msg.push(wmax1);
    out.broadcast(&node.neighbors, msg.finish());
}

/// Phase 3: decide termination and candidacy; candidates announce their
/// Section-4.1 star and permutation value.
fn phase3_candidacy(
    _p: &TwoSpannerProtocol<'_>,
    node: &mut TwoSpannerNode,
    ctx: &mut RoundCtx<'_>,
    out: &mut Outbox,
) {
    let mut max2 = node.rho;
    let mut wmax2 = node.wmax1;
    for env in ctx.inbox {
        let mut r = WordReader::new(&env.words);
        max2 = max2.max(r.read_ratio());
        wmax2 = wmax2.max(r.read());
    }
    // Candidacy/termination threshold: 1 unweighted; 1/2 in
    // client-server mode; otherwise the largest power of two at most
    // 1/w_max over the 2-neighborhood.
    let threshold = match _p.mode {
        Mode::ClientServer { .. } => Ratio::new(1, 2),
        _ => weight_threshold(wmax2),
    };

    // Termination (paper step 7): everything nearby has density at
    // most the threshold (strictly below 1/2 in client-server mode).
    let below = if matches!(_p.mode, Mode::ClientServer { .. }) {
        max2 < threshold
    } else {
        max2 <= threshold
    };
    if !node.terminated && below {
        node.terminated = true;
        // Self-added leftovers must be eligible spanner edges: in
        // client-server mode only client edges that are also servers.
        node.pending_leftovers = node
            .uncovered_inc()
            .into_iter()
            .filter(|&u| _p.is_server(ctx.me, u))
            .collect();
        for &u in &node.pending_leftovers.clone() {
            node.h_inc.insert(u);
            node.covered_inc.insert(u);
        }
    }

    // Candidacy: ρ(v) at least the threshold and maximal rounded
    // density in the 2-neighborhood.
    node.candidate = None;
    let my_key = node.rho.ceil_pow2_exponent();
    let max_key = max2.ceil_pow2_exponent();
    if node.rho >= threshold && my_key == max_key {
        let exp = my_key.expect("positive density has a key");
        let threshold = pow2_ratio((exp - 2).max(-62));
        let prev = node
            .prev_star
            .as_ref()
            .filter(|(e, _)| *e == exp)
            .map(|(_, m)| m.clone());
        if let Some(choice) = node.local.choose_star(threshold, prev.as_deref()) {
            let spanned = node.local.spanned_count(&choice.member);
            if spanned > 0 {
                let rv_max = (ctx.n.max(2) as u64).saturating_pow(4);
                let rv = ctx.rng.gen_range(1..=rv_max);
                node.prev_star = Some((exp, choice.member.clone()));
                let mut msg = WordWriter::new();
                msg.push(1);
                msg.push(rv);
                let leaves: Vec<Word> = node
                    .local
                    .leaves
                    .iter()
                    .zip(&choice.member)
                    .filter(|&(_, &m)| m)
                    .map(|(l, _)| l.vertex as Word)
                    .collect();
                msg.push_list(&leaves);
                node.candidate = Some((choice.member, spanned, rv));
                out.broadcast(&node.neighbors, msg.finish());
                return;
            }
        }
    }
    let mut msg = WordWriter::new();
    msg.push(0);
    out.broadcast(&node.neighbors, msg.finish());
}

/// Phase 4: each vertex votes on behalf of the uncovered incident
/// edges it is responsible for (smaller endpoint).
fn phase4_votes(node: &mut TwoSpannerNode, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
    struct Announce {
        rv: u64,
        leaves: BTreeSet<VertexId>,
    }
    let mut announces: BTreeMap<VertexId, Announce> = BTreeMap::new();
    for env in ctx.inbox {
        let mut r = WordReader::new(&env.words);
        if r.read() == 1 {
            let rv = r.read();
            let leaves = r.read_list().into_iter().map(|w| w as VertexId).collect();
            announces.insert(env.from, Announce { rv, leaves });
        }
    }
    node.votes = 0;
    for &w in &node.neighbors {
        if ctx.me > w || node.covered_inc.contains(&w) {
            continue; // covered, or the other endpoint is responsible
        }
        // Candidates 2-spanning {me, w} are common neighbors whose
        // announced star contains both endpoints.
        let winner = announces
            .iter()
            .filter(|(_, a)| a.leaves.contains(&ctx.me) && a.leaves.contains(&w))
            .map(|(&x, a)| (a.rv, x))
            .min();
        if let Some((_, x)) = winner {
            out.send(x, vec![w as Word]);
        }
    }
}

/// Phase 5: tally votes; accepted candidates adopt their star edges;
/// everyone announces spanner additions (accepted leaves + leftovers).
fn phase5_accept(
    p: &TwoSpannerProtocol<'_>,
    node: &mut TwoSpannerNode,
    ctx: &mut RoundCtx<'_>,
    out: &mut Outbox,
) {
    let votes = ctx.inbox.len() as u64;
    let mut accepted_leaves: Vec<Word> = Vec::new();
    if let Some((member, spanned, _rv)) = node.candidate.take() {
        if votes * p.accept_denominator >= spanned {
            for (leaf, &m) in node.local.leaves.iter().zip(&member) {
                if m {
                    node.h_inc.insert(leaf.vertex);
                    accepted_leaves.push(leaf.vertex as Word);
                }
            }
        }
    }
    let leftovers: Vec<Word> = node
        .pending_leftovers
        .drain(..)
        .map(|u| u as Word)
        .collect();
    let mut msg = WordWriter::new();
    msg.push_list(&accepted_leaves);
    msg.push_list(&leftovers);
    out.broadcast(&node.neighbors, msg.finish());
}

/// Phase 6: absorb announced additions, then share my incident spanner
/// list (plus my incident server list, consumed once in the first
/// phase 0) for the coverage refresh of the next phase 0.
fn phase6_share_h(node: &mut TwoSpannerNode, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
    for env in ctx.inbox {
        let mut r = WordReader::new(&env.words);
        let accepted: Vec<VertexId> = r.read_list().into_iter().map(|w| w as VertexId).collect();
        let leftovers: Vec<VertexId> = r.read_list().into_iter().map(|w| w as VertexId).collect();
        if accepted.contains(&ctx.me) || leftovers.contains(&ctx.me) {
            node.h_inc.insert(env.from);
        }
    }
    let list: Vec<Word> = node.h_inc.iter().map(|&u| u as Word).collect();
    let servers: Vec<Word> = node.server_nbrs.iter().map(|&u| u as Word).collect();
    let mut msg = WordWriter::new();
    msg.push_list(&list);
    msg.push_list(&servers);
    out.broadcast(&node.neighbors, msg.finish());
}

/// Result of a protocol run.
#[derive(Debug)]
pub struct ProtocolRun {
    /// The 2-spanner assembled from the per-vertex outputs.
    pub spanner: EdgeSet,
    /// Simulator traffic metrics (message sizes, totals).
    pub metrics: Metrics,
    /// Whether all vertices finished before the round cap.
    pub completed: bool,
}

/// Runs the message-passing 2-spanner protocol on `g`.
///
/// # Example
///
/// ```
/// use dsa_core::protocol::run_two_spanner_protocol;
/// use dsa_core::verify::is_k_spanner;
/// use dsa_graphs::gen::complete;
///
/// let g = complete(8);
/// let run = run_two_spanner_protocol(&g, 7, 10_000);
/// assert!(run.completed);
/// assert!(is_k_spanner(&g, &run.spanner, 2));
/// // Phase-0 adjacency messages are Θ(Δ) words: LOCAL-only behavior.
/// assert!(run.metrics.max_message_words >= g.max_degree());
/// ```
pub fn run_two_spanner_protocol(g: &Graph, seed: u64, max_rounds: u64) -> ProtocolRun {
    let net = Network::from_graph(g);
    let report = Simulator::new(&net, TwoSpannerProtocol::default())
        .seed(seed)
        .run(max_rounds);
    let mut spanner = EdgeSet::new(g.num_edges());
    for (v, node) in report.nodes.iter().enumerate() {
        for &u in &node.h_inc {
            let e = g.edge_id(v, u).expect("h_inc edges exist");
            spanner.insert(e);
        }
    }
    ProtocolRun {
        spanner,
        metrics: report.metrics,
        completed: report.completed,
    }
}

/// Runs the weighted message-passing 2-spanner protocol on `g`
/// (Theorem 4.12 as a LOCAL protocol).
///
/// # Panics
///
/// Panics if the weights don't match the graph.
pub fn run_weighted_two_spanner_protocol(
    g: &Graph,
    w: &EdgeWeights,
    seed: u64,
    max_rounds: u64,
) -> ProtocolRun {
    let net = Network::from_graph(g);
    let report = Simulator::new(&net, TwoSpannerProtocol::weighted(g, w))
        .seed(seed)
        .run(max_rounds);
    let mut spanner = EdgeSet::new(g.num_edges());
    for (v, node) in report.nodes.iter().enumerate() {
        for &u in &node.h_inc {
            let e = g.edge_id(v, u).expect("h_inc edges exist");
            spanner.insert(e);
        }
    }
    ProtocolRun {
        spanner,
        metrics: report.metrics,
        completed: report.completed,
    }
}

/// Runs the client-server message-passing 2-spanner protocol on `g`
/// (Theorem 4.15 as a LOCAL protocol). Uncoverable client edges are
/// excluded, as the paper prescribes.
///
/// # Panics
///
/// Panics if the label universes don't match the graph.
pub fn run_client_server_two_spanner_protocol(
    g: &Graph,
    clients: &EdgeSet,
    servers: &EdgeSet,
    seed: u64,
    max_rounds: u64,
) -> ProtocolRun {
    let net = Network::from_graph(g);
    let report = Simulator::new(&net, TwoSpannerProtocol::client_server(g, clients, servers))
        .seed(seed)
        .run(max_rounds);
    let mut spanner = EdgeSet::new(g.num_edges());
    for (v, node) in report.nodes.iter().enumerate() {
        for &u in &node.h_inc {
            let e = g.edge_id(v, u).expect("h_inc edges exist");
            spanner.insert(e);
        }
    }
    ProtocolRun {
        spanner,
        metrics: report.metrics,
        completed: report.completed,
    }
}

/// Runs the 2-spanner protocol as a **direct CONGEST implementation**:
/// every logical message is fragmented into physical messages of at
/// most `cap` payload words (via [`dsa_runtime::Fragmented`]), each
/// logical round costing `⌈(Δ+4)/cap⌉ + 1` physical rounds — the
/// `O(Δ)` overhead of Section 1.3, executed.
///
/// Returns the run plus the slot factor used.
pub fn run_two_spanner_protocol_congest(
    g: &Graph,
    seed: u64,
    max_rounds: u64,
    cap: usize,
) -> (ProtocolRun, usize) {
    let net = Network::from_graph(g);
    // Largest logical message: the phase-6 pair of lists, up to
    // 2Δ + 2 words, plus small framing slack.
    let slots = (2 * g.max_degree() + 6).div_ceil(cap) + 1;
    let frag = dsa_runtime::Fragmented::new(TwoSpannerProtocol::default(), cap, slots);
    let report = Simulator::new(&net, frag)
        .seed(seed)
        .bandwidth_cap_words(cap + 1)
        .run(max_rounds);
    let mut spanner = EdgeSet::new(g.num_edges());
    for (v, node) in report.nodes.iter().enumerate() {
        let inner = dsa_runtime::Fragmented::<TwoSpannerProtocol>::inner_node(node);
        for &u in &inner.h_inc {
            let e = g.edge_id(v, u).expect("h_inc edges exist");
            spanner.insert(e);
        }
    }
    (
        ProtocolRun {
            spanner,
            metrics: report.metrics,
            completed: report.completed,
        },
        slots,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_k_spanner;
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn protocol_output_is_valid_spanner() {
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..3u64 {
            let g = gen::gnp_connected(24, 0.25, &mut rng);
            let run = run_two_spanner_protocol(&g, seed, 50_000);
            assert!(run.completed, "seed {seed}");
            assert!(is_k_spanner(&g, &run.spanner, 2), "seed {seed}");
        }
    }

    #[test]
    fn h_inc_symmetry_holds() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::gnp_connected(20, 0.3, &mut rng);
        let net = Network::from_graph(&g);
        let report = Simulator::new(&net, TwoSpannerProtocol::default())
            .seed(9)
            .run(50_000);
        assert!(report.completed);
        for (v, node) in report.nodes.iter().enumerate() {
            for &u in &node.h_inc {
                assert!(
                    report.nodes[u].h_inc.contains(&v),
                    "asymmetric spanner knowledge {v} vs {u}"
                );
            }
        }
    }

    #[test]
    fn path_terminates_in_one_iteration() {
        let g = gen::path(10);
        let run = run_two_spanner_protocol(&g, 0, 1_000);
        assert!(run.completed);
        assert_eq!(run.spanner.len(), g.num_edges());
        // One iteration (7 rounds) plus the coverage refresh round.
        assert!(
            run.metrics.rounds <= 2 * PHASES + 2,
            "rounds = {}",
            run.metrics.rounds
        );
    }

    #[test]
    fn message_sizes_scale_with_degree() {
        // The star graph has Δ = n-1; phase-6 spanner lists from the hub
        // are Θ(Δ) words, demonstrating the CONGEST overhead (E12).
        let g = gen::star(30);
        let run = run_two_spanner_protocol(&g, 1, 1_000);
        assert!(run.completed);
        assert!(run.metrics.max_message_words >= 29);
    }

    #[test]
    fn weighted_protocol_outputs_valid_spanners() {
        let mut rng = StdRng::seed_from_u64(19);
        for seed in 0..3u64 {
            let g = gen::gnp_connected(22, 0.3, &mut rng);
            let w = gen::random_weights(g.num_edges(), 0, 7, &mut rng);
            let run = run_weighted_two_spanner_protocol(&g, &w, seed, 100_000);
            assert!(run.completed, "seed {seed}");
            assert!(is_k_spanner(&g, &run.spanner, 2), "seed {seed}");
            // Every weight-0 edge is pre-adopted.
            for (e, weight) in w.iter() {
                if weight == 0 {
                    assert!(run.spanner.contains(e), "free edge {e} missing");
                }
            }
        }
    }

    #[test]
    fn weighted_protocol_prefers_cheap_stars() {
        // Wheel with cheap spokes and expensive rim: the protocol's
        // cost must be far below taking the rim.
        let n = 10;
        let mut g = Graph::new(n);
        let mut weights = Vec::new();
        for u in 1..n {
            g.add_edge(0, u);
            weights.push(1);
        }
        for u in 1..n {
            let next = if u == n - 1 { 1 } else { u + 1 };
            g.ensure_edge(u, next);
            weights.push(40);
        }
        let w = EdgeWeights::from_vec(weights);
        let run = run_weighted_two_spanner_protocol(&g, &w, 3, 100_000);
        assert!(run.completed);
        assert!(is_k_spanner(&g, &run.spanner, 2));
        let cost = crate::verify::spanner_cost(&run.spanner, &w);
        assert!(cost <= 9 + 3 * 40, "cost {cost} too high");
    }

    #[test]
    fn unit_weighted_protocol_close_to_unweighted() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = gen::gnp_connected(24, 0.3, &mut rng);
        let w = EdgeWeights::unit(&g);
        let a = run_two_spanner_protocol(&g, 5, 100_000);
        let b = run_weighted_two_spanner_protocol(&g, &w, 5, 100_000);
        assert!(a.completed && b.completed);
        // Unit weights make the weighted protocol the same algorithm;
        // identical seeds give identical runs.
        assert_eq!(a.spanner, b.spanner);
    }

    #[test]
    fn client_server_protocol_valid_and_server_only() {
        use crate::verify::is_client_server_2_spanner;
        let mut rng = StdRng::seed_from_u64(29);
        for seed in 0..3u64 {
            let g = gen::gnp_connected(22, 0.3, &mut rng);
            let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
            let run = run_client_server_two_spanner_protocol(&g, &clients, &servers, seed, 200_000);
            assert!(run.completed, "seed {seed}");
            assert!(run.spanner.is_subset_of(&servers), "seed {seed}");
            assert!(
                is_client_server_2_spanner(&g, &clients, &servers, &run.spanner),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn client_server_protocol_excludes_uncoverable() {
        // Pendant client edge with no server coverage: the protocol
        // must complete anyway, leaving it uncovered.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)]);
        let e03 = g.edge_id(0, 3).unwrap();
        let clients = EdgeSet::full(g.num_edges());
        let mut servers = EdgeSet::full(g.num_edges());
        servers.remove(e03);
        let run = run_client_server_two_spanner_protocol(&g, &clients, &servers, 2, 100_000);
        assert!(run.completed);
        assert!(!run.spanner.contains(e03));
        assert!(crate::verify::is_client_server_2_spanner(
            &g,
            &clients,
            &servers,
            &run.spanner
        ));
    }

    #[test]
    fn all_edges_both_labels_reduce_to_unweighted() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::gnp_connected(20, 0.3, &mut rng);
        let all = EdgeSet::full(g.num_edges());
        let cs = run_client_server_two_spanner_protocol(&g, &all, &all, 7, 200_000);
        assert!(cs.completed);
        assert!(is_k_spanner(&g, &cs.spanner, 2));
    }

    #[test]
    fn congest_emulation_matches_local_run() {
        // Same protocol, same seed: the fragmented CONGEST emulation
        // must produce the identical spanner while respecting the word
        // cap, at a Θ(Δ) round overhead.
        let mut rng = StdRng::seed_from_u64(14);
        let g = gen::gnp_connected(20, 0.3, &mut rng);
        let local = run_two_spanner_protocol(&g, 6, 100_000);
        let (congest, slots) = run_two_spanner_protocol_congest(&g, 6, 1_000_000, 2);
        assert!(local.completed && congest.completed);
        assert_eq!(local.spanner, congest.spanner, "emulation must be exact");
        assert_eq!(congest.metrics.cap_violations, Some(0));
        assert!(congest.metrics.max_message_words <= 3);
        // Round overhead ≈ the slot factor.
        assert!(
            congest.metrics.rounds >= (slots as u64 - 1) * (local.metrics.rounds - 1),
            "congest {} vs local {} × slots {slots}",
            congest.metrics.rounds,
            local.metrics.rounds
        );
    }

    #[test]
    fn matches_engine_quality() {
        // The protocol and the engine are two renditions of one
        // algorithm; their outputs should be comparable in size.
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::gnp_connected(30, 0.3, &mut rng);
        let engine = crate::dist::min_2_spanner(&g, &crate::dist::EngineConfig::seeded(5));
        let proto = run_two_spanner_protocol(&g, 5, 50_000);
        assert!(proto.completed);
        assert!(is_k_spanner(&g, &proto.spanner, 2));
        let (a, b) = (engine.spanner.len() as f64, proto.spanner.len() as f64);
        assert!(a <= 2.5 * b && b <= 2.5 * a, "engine {a} vs protocol {b}");
    }
}
