//! Baswana–Sen style (2k−1)-spanners with O(k·n^{1+1/k}) expected size.
//!
//! The paper contrasts its directed-k-spanner hardness results with the
//! *undirected* setting, where k-round CONGEST constructions of
//! (2k−1)-spanners with `O(n^{1+1/k})` edges \[7, 28\] immediately give
//! an `O(n^{1/k})` approximation of the minimum (2k−1)-spanner (any
//! spanner of a connected graph has at least `n−1` edges). This module
//! implements the classic randomized clustering algorithm so the
//! separation experiments (E11 in DESIGN.md) can measure that baseline.

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsa_graphs::{EdgeId, EdgeSet, Graph, VertexId};

/// Result of a Baswana–Sen run.
#[derive(Clone, Debug)]
pub struct SparseSpannerRun {
    /// The (2k−1)-spanner.
    pub spanner: EdgeSet,
    /// Number of clusters sampled at each of the k−1 sampling phases.
    pub sampled_clusters: Vec<usize>,
}

/// Computes a (2k−1)-spanner of expected size `O(k · n^{1+1/k})` by the
/// Baswana–Sen clustering algorithm (each phase is implementable in
/// O(1) CONGEST rounds; the classic implementation takes k rounds
/// total).
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use dsa_core::sparse::baswana_sen;
/// use dsa_core::verify::is_k_spanner;
/// use dsa_graphs::gen::complete;
///
/// let g = complete(20);
/// let run = baswana_sen(&g, 2, 7);
/// assert!(is_k_spanner(&g, &run.spanner, 3)); // stretch 2k-1 = 3
/// assert!(run.spanner.len() < g.num_edges());
/// ```
pub fn baswana_sen(g: &Graph, k: usize, seed: u64) -> SparseSpannerRun {
    assert!(k >= 1, "stretch parameter k must be positive");
    let n = g.num_vertices();
    let mut h = EdgeSet::new(g.num_edges());
    let mut rng = StdRng::seed_from_u64(seed);
    if k == 1 {
        // A 1-spanner is the graph itself.
        return SparseSpannerRun {
            spanner: EdgeSet::full(g.num_edges()),
            sampled_clusters: Vec::new(),
        };
    }
    let p = (n.max(2) as f64).powf(-1.0 / k as f64);

    // cluster[v] = Some(cluster id) while v is clustered.
    let mut cluster: Vec<Option<VertexId>> = (0..n).map(Some).collect();
    let mut sampled_counts = Vec::new();

    for _phase in 1..k {
        let live_clusters: BTreeSet<VertexId> = cluster.iter().flatten().copied().collect();
        let sampled: BTreeSet<VertexId> = live_clusters
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(p))
            .collect();
        sampled_counts.push(sampled.len());
        let old = cluster.clone();
        for v in 0..n {
            let Some(cv) = old[v] else { continue };
            if sampled.contains(&cv) {
                continue; // stays clustered
            }
            // One (arbitrary, here first) edge per adjacent cluster.
            let mut adj: BTreeMap<VertexId, EdgeId> = BTreeMap::new();
            for (u, e) in g.neighbors(v) {
                if let Some(cu) = old[u] {
                    if cu != cv {
                        adj.entry(cu).or_insert(e);
                    }
                }
            }
            // Join a sampled adjacent cluster if one exists ...
            if let Some((&cu, &e)) = adj.iter().find(|(cu, _)| sampled.contains(cu)) {
                h.insert(e);
                cluster[v] = Some(cu);
            } else {
                // ... otherwise connect to every adjacent cluster and
                // leave the clustering.
                for &e in adj.values() {
                    h.insert(e);
                }
                cluster[v] = None;
            }
        }
    }

    // Final phase: every still-clustered vertex connects to each
    // adjacent cluster. Intra-cluster connectivity comes from the
    // joining (tree) edges inserted during the phases.
    let old = cluster.clone();
    for v in 0..n {
        let Some(cv) = old[v] else { continue };
        let mut adj: BTreeMap<VertexId, EdgeId> = BTreeMap::new();
        for (u, e) in g.neighbors(v) {
            if let Some(cu) = old[u] {
                if cu != cv {
                    adj.entry(cu).or_insert(e);
                }
            }
        }
        for &e in adj.values() {
            h.insert(e);
        }
    }

    SparseSpannerRun {
        spanner: h,
        sampled_clusters: sampled_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_k_spanner;
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn k1_returns_whole_graph() {
        let g = gen::complete(6);
        let run = baswana_sen(&g, 1, 0);
        assert_eq!(run.spanner.len(), g.num_edges());
    }

    #[test]
    fn stretch_holds_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(13);
        for k in 2..=4usize {
            for trial in 0..3u64 {
                let g = gen::gnp_connected(60, 0.15, &mut rng);
                let run = baswana_sen(&g, k, trial * 17 + k as u64);
                assert!(
                    is_k_spanner(&g, &run.spanner, 2 * k - 1),
                    "stretch violated for k={k} trial={trial}"
                );
            }
        }
    }

    #[test]
    fn k2_sparsifies_dense_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = gen::gnp_connected(100, 0.5, &mut rng);
        let run = baswana_sen(&g, 2, 3);
        assert!(is_k_spanner(&g, &run.spanner, 3));
        // m ≈ 2500; a 3-spanner of expected size O(n^{1.5}) ≈ 1000
        // should be far below m. Allow generous slack.
        assert!(
            run.spanner.len() < g.num_edges() / 2,
            "spanner {} of {}",
            run.spanner.len(),
            g.num_edges()
        );
    }

    #[test]
    fn spanner_of_connected_graph_is_connected() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = gen::gnp_connected(40, 0.2, &mut rng);
        let run = baswana_sen(&g, 3, 11);
        let mut sg = Graph::new(g.num_vertices());
        for e in run.spanner.iter() {
            let (u, v) = g.endpoints(e);
            sg.add_edge(u, v);
        }
        assert!(dsa_graphs::traversal::is_connected(&sg));
    }
}
