//! The primary contribution of *Distributed Spanner Approximation*
//! (Censor-Hillel & Dory, PODC 2018): distributed approximation
//! algorithms for minimum k-spanner problems, together with the
//! sequential baselines the paper compares against and independent
//! verifiers for every variant.
//!
//! # Map from paper to modules
//!
//! | Paper | Module |
//! |---|---|
//! | §4 distributed min 2-spanner (Thm 1.3) | [`dist`] ([`dist::min_2_spanner`]) |
//! | §4.3.1 directed (Thm 4.9) | [`dist::min_2_spanner_directed`] |
//! | §4.3.2 weighted (Thm 4.12) | [`dist::min_2_spanner_weighted`] |
//! | §4.3.3 client-server (Thm 4.15) | [`dist::min_2_spanner_client_server`] |
//! | §4.1 star-choice mechanism | [`star`] |
//! | §6 (1+ε)-approximation (Thm 1.2) | [`one_plus_eps`] |
//! | §4 LOCAL protocol, message-level | [`protocol`] |
//! | Kortsarz–Peleg greedy baseline \[46\] | [`seq`] |
//! | Baswana–Sen (2k−1)-spanners \[7, 28\] | [`sparse`] |
//! | spanner definitions (§1.5) as checkers | [`verify`] |
//!
//! # Quick start
//!
//! ```
//! use dsa_core::dist::{min_2_spanner, EngineConfig};
//! use dsa_core::verify::is_k_spanner;
//! use dsa_graphs::gen::complete_bipartite;
//!
//! // Complete bipartite graphs are the worst case for 2-spanner
//! // sparsity — the paper's motivating example.
//! let g = complete_bipartite(6, 6);
//! let run = min_2_spanner(&g, &EngineConfig::seeded(42));
//! assert!(run.converged);
//! assert!(is_k_spanner(&g, &run.spanner, 2));
//! println!(
//!     "spanner: {} of {} edges in {} iterations",
//!     run.spanner.len(),
//!     g.num_edges(),
//!     run.iterations
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod one_plus_eps;
pub mod protocol;
pub mod seq;
pub mod sparse;
pub mod star;
pub mod verify;
