//! The distributed minimum 2-spanner approximations of Section 4
//! (Theorems 1.3, 4.9, 4.12, 4.15), run through the centrally
//! scheduled, variant-generic [`engine`].
//!
//! Layering:
//!
//! * [`engine`] holds the iteration skeleton ([`run_engine`]) and the
//!   [`engine::SpannerVariant`] abstraction — per-vertex star spaces,
//!   densest-star choice via `dsa-flow`, density-threshold rounds, and
//!   the Claim-4.4 shrink-only re-choice;
//! * this module implements the four paper variants on top of it —
//!   [`UndirectedTwoSpanner`], [`DirectedTwoSpanner`],
//!   [`WeightedTwoSpanner`], [`ClientServerTwoSpanner`] — and exposes
//!   the one-call entry points [`min_2_spanner`],
//!   [`min_2_spanner_directed`], [`min_2_spanner_weighted`], and
//!   [`min_2_spanner_client_server`];
//! * [`variant`] packages one owned problem instance of any shape as a
//!   [`VariantInstance`] and dispatches through the single entry point
//!   [`run_variant`] — the API generic callers (`dsa-service`, load
//!   generators) use instead of matching on the four free functions;
//! * [`crate::seq`] reuses the same variants for the sequential greedy
//!   baselines, and [`crate::protocol`] executes the same iterations as
//!   a genuine message-passing LOCAL protocol.

pub mod engine;
pub mod variant;

pub use engine::{
    run_engine, run_engine_timed, EngineConfig, EngineTrace, IterationStats, IterationTiming,
    PhaseTimings, SectionTiming, SpannerRun, SpannerVariant,
};
pub use variant::{run_variant, run_variant_timed, VariantInstance, VariantKind};

use dsa_graphs::{DiGraph, EdgeId, EdgeSet, EdgeWeights, Graph, Ratio, VertexId};

use crate::star::{IdList, Leaf, LocalStars, Pair};
use crate::verify::coverable_clients;

/// Whether `h` contains a 2-path between the endpoints of edge `e`
/// of `g` (coverage without using `e` itself is not required: callers
/// check direct membership separately when it matters). A two-pointer
/// merge over the sorted CSR neighbor slices of both endpoints — each
/// common neighbor yields both hop edge ids with no per-pair lookup.
fn two_path_in(g: &Graph, h: &EdgeSet, u: VertexId, v: VertexId) -> bool {
    let (un, ue) = g.sorted_neighbor_slices(u);
    let (vn, ve) = g.sorted_neighbor_slices(v);
    let (mut p, mut q) = (0, 0);
    while p < un.len() && q < vn.len() {
        match un[p].cmp(&vn[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                if h.contains(ue[p]) && h.contains(ve[q]) {
                    return true;
                }
                p += 1;
                q += 1;
            }
        }
    }
    false
}

/// Calls `on_match(p, q)` for every position pair with
/// `xs[p] == ys[q]`, by a two-pointer merge. Both slices must be
/// sorted ascending with distinct elements (CSR sorted slices are).
fn merge_common(xs: &[VertexId], ys: &[VertexId], mut on_match: impl FnMut(usize, usize)) {
    let (mut p, mut q) = (0, 0);
    while p < xs.len() && q < ys.len() {
        match xs[p].cmp(&ys[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                on_match(p, q);
                p += 1;
                q += 1;
            }
        }
    }
}

/// Whether `h` contains a directed 2-path `u -> x -> v`: a merge of
/// `u`'s sorted out-slice with `v`'s sorted in-slice — common vertices
/// are exactly the candidate midpoints, with both hop edge ids at hand.
fn directed_two_path_in(g: &DiGraph, h: &EdgeSet, u: VertexId, v: VertexId) -> bool {
    let (un, ue) = g.sorted_out_neighbor_slices(u);
    let (vn, ve) = g.sorted_in_neighbor_slices(v);
    let mut found = false;
    merge_common(un, vn, |p, q| {
        found |= h.contains(ue[p]) && h.contains(ve[q]);
    });
    found
}

/// The edges of `g` covered by `h` within stretch 2 — the shared
/// `covered` implementation of the undirected variants (weights don't
/// change what covers what, only the densities).
fn undirected_covered(g: &Graph, h: &EdgeSet) -> EdgeSet {
    let mut out = EdgeSet::new(g.num_edges());
    for (e, u, v) in g.edges() {
        if h.contains(e) || two_path_in(g, h, u, v) {
            out.insert(e);
        }
    }
    out
}

/// The incremental counterpart of [`undirected_covered`]: the items
/// `h` covers *because of* `new_edges` (which are already in `h`) —
/// each new edge directly, plus every 2-path it completes. `O(deg)`
/// per new edge instead of a full `O(Σ deg²)` recompute.
///
/// Shared by the undirected, weighted, and client-server variants: the
/// reported set may include non-target items (client-server), which
/// the engine's target-only subtraction ignores, and for client-server
/// every edge the engine puts in `h` is a server edge, so any 2-path
/// found in `h` is automatically a server 2-path.
fn undirected_covered_delta(g: &Graph, h: &EdgeSet, new_edges: &[EdgeId], out: &mut EdgeSet) {
    for &e in new_edges {
        out.insert(e);
        let (a, b) = g.endpoints(e);
        // `e` as one hop of a 2-path endpoint–other–x, covering the
        // item {endpoint, x}. Both orientations of `e` are tried; the
        // second hop {other, x} must already be in `h` (which includes
        // the other edges of this batch). Each covered item {endpoint,
        // x} requires x adjacent to both endpoints, so a merge over
        // the two sorted neighbor slices finds every item and both its
        // edge ids in one linear pass.
        for (endpoint, other) in [(a, b), (b, a)] {
            let (on, oe) = g.sorted_neighbor_slices(other);
            let (en, ee) = g.sorted_neighbor_slices(endpoint);
            let (mut p, mut q) = (0, 0);
            while p < on.len() && q < en.len() {
                match on[p].cmp(&en[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        if h.contains(oe[p]) {
                            out.insert(ee[q]);
                        }
                        p += 1;
                        q += 1;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Theorem 1.3: undirected, unweighted.
// ---------------------------------------------------------------------

/// The undirected minimum 2-spanner variant (Theorem 1.3): items are
/// the graph's edges, a star leaf contributes one edge of weight 1, and
/// the round threshold is density 1.
pub struct UndirectedTwoSpanner<'a> {
    g: &'a Graph,
}

impl<'a> UndirectedTwoSpanner<'a> {
    /// Wraps `g` as an engine variant. Neighbor lists come straight
    /// from the graph's sorted CSR slices — nothing to precompute.
    pub fn new(g: &'a Graph) -> Self {
        UndirectedTwoSpanner { g }
    }
}

impl SpannerVariant for UndirectedTwoSpanner<'_> {
    fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    fn num_items(&self) -> usize {
        self.g.num_edges()
    }

    fn targets(&self) -> EdgeSet {
        EdgeSet::full(self.g.num_edges())
    }

    fn preselected(&self) -> EdgeSet {
        EdgeSet::new(self.g.num_edges())
    }

    fn covered(&self, h: &EdgeSet) -> EdgeSet {
        undirected_covered(self.g, h)
    }

    fn covered_delta(&self, h: &EdgeSet, new_edges: &[EdgeId], out: &mut EdgeSet) {
        undirected_covered_delta(self.g, h, new_edges, out);
    }

    fn local_stars(&self, v: VertexId, uncovered: &EdgeSet) -> LocalStars {
        let (nbrs, eids) = self.g.sorted_neighbor_slices(v);
        unit_leaf_local_stars(self.g, nbrs, eids, |_| 1, |e| uncovered.contains(e))
    }

    fn force_cover(&self, item: usize) -> Vec<EdgeId> {
        vec![item]
    }

    fn comm_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.g.sorted_neighbor_slices(v).0
    }

    fn threshold(&self) -> Ratio {
        Ratio::one()
    }
}

/// Shared [`LocalStars`] construction for the variants whose leaves are
/// the (possibly filtered) neighbors of `v` with a single undirected
/// edge each: leaf weights come from `weight_of`, and a leaf pair
/// `{a, b}` spans the edge `{a, b}` when `is_item` accepts it.
///
/// `leaf_nbrs` must be sorted ascending with `leaf_eids[i]` the id of
/// the center–`leaf_nbrs[i]` edge (the graph's sorted CSR slices, or a
/// filtered copy of them). Pairs are found by merging each leaf's
/// sorted neighbor slice against the remaining leaves — a two-pointer
/// pass per leaf instead of a binary-search `edge_id` per leaf *pair*,
/// and the merge yields the spanned edge id directly.
fn unit_leaf_local_stars(
    g: &Graph,
    leaf_nbrs: &[VertexId],
    leaf_eids: &[EdgeId],
    weight_of: impl Fn(EdgeId) -> u64,
    is_item: impl Fn(EdgeId) -> bool,
) -> LocalStars {
    let leaves: Vec<Leaf> = leaf_nbrs
        .iter()
        .zip(leaf_eids)
        .map(|(&u, &e)| Leaf {
            vertex: u,
            weight: weight_of(e),
            edges: IdList::one(e),
        })
        .collect();
    let mut pairs = Vec::new();
    for i in 0..leaf_nbrs.len() {
        let (an, ae) = g.sorted_neighbor_slices(leaf_nbrs[i]);
        let (mut p, mut q) = (0, i + 1);
        while p < an.len() && q < leaf_nbrs.len() {
            match an[p].cmp(&leaf_nbrs[q]) {
                std::cmp::Ordering::Less => p += 1,
                std::cmp::Ordering::Greater => q += 1,
                std::cmp::Ordering::Equal => {
                    let e = ae[p];
                    if is_item(e) {
                        pairs.push(Pair {
                            a: i,
                            b: q,
                            items: IdList::one(e),
                        });
                    }
                    p += 1;
                    q += 1;
                }
            }
        }
    }
    LocalStars { leaves, pairs }
}

// ---------------------------------------------------------------------
// Theorem 4.12: weighted.
// ---------------------------------------------------------------------

/// The weighted minimum 2-spanner variant (Theorem 4.12): densities are
/// `|C_S| / w(S)`, weight-0 edges are pre-adopted, and the round
/// threshold is the largest power of two at most `1 / w_max`.
pub struct WeightedTwoSpanner<'a> {
    g: &'a Graph,
    w: &'a EdgeWeights,
    threshold: Ratio,
}

impl<'a> WeightedTwoSpanner<'a> {
    /// Wraps `g` with weights `w` as an engine variant.
    ///
    /// # Panics
    ///
    /// Panics if the weights don't match the graph.
    pub fn new(g: &'a Graph, w: &'a EdgeWeights) -> Self {
        assert_eq!(w.len(), g.num_edges(), "weights must match edges");
        WeightedTwoSpanner {
            g,
            w,
            // The protocol computes the same threshold from its
            // 2-neighborhood w_max aggregate; here it is global.
            threshold: crate::star::weight_threshold(w.max()),
        }
    }
}

impl SpannerVariant for WeightedTwoSpanner<'_> {
    fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    fn num_items(&self) -> usize {
        self.g.num_edges()
    }

    fn targets(&self) -> EdgeSet {
        EdgeSet::full(self.g.num_edges())
    }

    fn preselected(&self) -> EdgeSet {
        let mut h = EdgeSet::new(self.g.num_edges());
        for (e, weight) in self.w.iter() {
            if weight == 0 {
                h.insert(e);
            }
        }
        h
    }

    fn covered(&self, h: &EdgeSet) -> EdgeSet {
        undirected_covered(self.g, h)
    }

    fn covered_delta(&self, h: &EdgeSet, new_edges: &[EdgeId], out: &mut EdgeSet) {
        undirected_covered_delta(self.g, h, new_edges, out);
    }

    fn local_stars(&self, v: VertexId, uncovered: &EdgeSet) -> LocalStars {
        let (nbrs, eids) = self.g.sorted_neighbor_slices(v);
        unit_leaf_local_stars(
            self.g,
            nbrs,
            eids,
            |e| self.w.get(e),
            |e| uncovered.contains(e),
        )
    }

    fn force_cover(&self, item: usize) -> Vec<EdgeId> {
        vec![item]
    }

    fn comm_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.g.sorted_neighbor_slices(v).0
    }

    fn threshold(&self) -> Ratio {
        self.threshold
    }
}

// ---------------------------------------------------------------------
// Theorem 4.9: directed.
// ---------------------------------------------------------------------

/// The directed minimum 2-spanner variant (Theorem 4.9): items are the
/// directed edges, a star leaf contributes the (up to two) directed
/// edges between the center and the leaf, densities are the Section
/// 4.3.1 proxies, and the star choice uses the `ρ̃/8` threshold.
pub struct DirectedTwoSpanner<'a> {
    g: &'a DiGraph,
    /// The underlying undirected communication graph; its sorted CSR
    /// slices are the per-vertex neighbor lists.
    underlying: Graph,
}

impl<'a> DirectedTwoSpanner<'a> {
    /// Wraps `g` as an engine variant. The communication graph is the
    /// underlying undirected graph, as Section 1.5 prescribes.
    pub fn new(g: &'a DiGraph) -> Self {
        let (underlying, _) = g.underlying();
        DirectedTwoSpanner { g, underlying }
    }
}

impl SpannerVariant for DirectedTwoSpanner<'_> {
    fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    fn num_items(&self) -> usize {
        self.g.num_edges()
    }

    fn targets(&self) -> EdgeSet {
        EdgeSet::full(self.g.num_edges())
    }

    fn preselected(&self) -> EdgeSet {
        EdgeSet::new(self.g.num_edges())
    }

    fn covered(&self, h: &EdgeSet) -> EdgeSet {
        let mut out = EdgeSet::new(self.g.num_edges());
        for (e, u, v) in self.g.edges() {
            if h.contains(e) || directed_two_path_in(self.g, h, u, v) {
                out.insert(e);
            }
        }
        out
    }

    fn covered_delta(&self, h: &EdgeSet, new_edges: &[EdgeId], out: &mut EdgeSet) {
        for &e in new_edges {
            out.insert(e);
            // `e` is the directed edge a -> b.
            let (a, b) = self.g.endpoints(e);
            // `e` as first hop: a -> b -> x covers the item a -> x;
            // such x are common heads of a and b, so one merge over the
            // two sorted out-slices finds every item and both hop ids.
            let (bn, be) = self.g.sorted_out_neighbor_slices(b);
            let (an, ae) = self.g.sorted_out_neighbor_slices(a);
            merge_common(bn, an, |p, q| {
                if h.contains(be[p]) {
                    out.insert(ae[q]);
                }
            });
            // `e` as second hop: x -> a -> b covers the item x -> b;
            // such x are common tails of a and b.
            let (an, ae) = self.g.sorted_in_neighbor_slices(a);
            let (bn, be) = self.g.sorted_in_neighbor_slices(b);
            merge_common(an, bn, |p, q| {
                if h.contains(ae[p]) {
                    out.insert(be[q]);
                }
            });
        }
    }

    fn local_stars(&self, v: VertexId, uncovered: &EdgeSet) -> LocalStars {
        let nbrs = self.underlying.sorted_neighbor_slices(v).0;
        let k = nbrs.len();
        // The directed edges between `v` and each neighbor, found by
        // merging the center's sorted out-/in-slices against `nbrs`
        // (which contains every out- and in-neighbor of `v`).
        let mut vto: Vec<Option<EdgeId>> = vec![None; k]; // v -> nbrs[i]
        let mut inv: Vec<Option<EdgeId>> = vec![None; k]; // nbrs[i] -> v
        let (on, oe) = self.g.sorted_out_neighbor_slices(v);
        merge_common(on, nbrs, |p, q| vto[q] = Some(oe[p]));
        let (inn, ie) = self.g.sorted_in_neighbor_slices(v);
        merge_common(inn, nbrs, |p, q| inv[q] = Some(ie[p]));
        let leaves: Vec<Leaf> = (0..k)
            .map(|i| {
                // Center-out edge first, then leaf-out, as edge_id
                // lookups in that order used to produce.
                let edges: IdList = vto[i].into_iter().chain(inv[i]).collect();
                Leaf {
                    vertex: nbrs[i],
                    weight: edges.len() as u64,
                    edges,
                }
            })
            .collect();
        let mut pairs = Vec::new();
        for i in 0..k {
            let a = nbrs[i];
            // For each later leaf b: the pair spans a -> b (needs
            // a -> v -> b plus the edge) and/or b -> a (needs
            // b -> v -> a plus the edge). Walk a's sorted out- and
            // in-slices in step with the ascending tail `nbrs[i+1..]`.
            let (aon, aoe) = self.g.sorted_out_neighbor_slices(a);
            let (ain, aie) = self.g.sorted_in_neighbor_slices(a);
            let (mut p, mut r) = (0, 0);
            for j in (i + 1)..k {
                let b = nbrs[j];
                while p < aon.len() && aon[p] < b {
                    p += 1;
                }
                while r < ain.len() && ain[r] < b {
                    r += 1;
                }
                let mut items = IdList::new();
                // a -> v -> b spans the directed edge (a, b).
                if inv[i].is_some() && vto[j].is_some() && p < aon.len() && aon[p] == b {
                    let e = aoe[p];
                    if uncovered.contains(e) {
                        items.push(e);
                    }
                }
                // b -> v -> a spans the directed edge (b, a).
                if inv[j].is_some() && vto[i].is_some() && r < ain.len() && ain[r] == b {
                    let e = aie[r];
                    if uncovered.contains(e) {
                        items.push(e);
                    }
                }
                if !items.is_empty() {
                    pairs.push(Pair { a: i, b: j, items });
                }
            }
        }
        LocalStars { leaves, pairs }
    }

    fn force_cover(&self, item: usize) -> Vec<EdgeId> {
        vec![item]
    }

    fn comm_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.underlying.sorted_neighbor_slices(v).0
    }

    fn threshold(&self) -> Ratio {
        Ratio::one()
    }

    fn choice_exponent_offset(&self) -> i32 {
        3
    }
}

// ---------------------------------------------------------------------
// Theorem 4.15: client-server.
// ---------------------------------------------------------------------

/// The client-server minimum 2-spanner variant (Theorem 4.15): only
/// *coverable* client edges need covering, stars use server edges only,
/// the round threshold is 1/2, and termination is strict.
pub struct ClientServerTwoSpanner<'a> {
    g: &'a Graph,
    servers: &'a EdgeSet,
    /// The server-edge sub-adjacency in flat CSR form, filtered from
    /// the graph's sorted slices (so each per-vertex slice is sorted):
    /// `server_offsets[v]..server_offsets[v + 1]` slices the arrays.
    server_offsets: Vec<usize>,
    server_nbrs: Vec<VertexId>,
    server_eids: Vec<EdgeId>,
    targets: EdgeSet,
}

impl<'a> ClientServerTwoSpanner<'a> {
    /// Wraps `g` with the given client/server edge labeling as an
    /// engine variant. Client edges no server star can ever cover are
    /// excluded from the targets, as Section 4.3.3 prescribes.
    ///
    /// # Panics
    ///
    /// Panics if the label universes don't match the graph.
    pub fn new(g: &'a Graph, clients: &'a EdgeSet, servers: &'a EdgeSet) -> Self {
        assert_eq!(clients.universe(), g.num_edges(), "client set mismatch");
        assert_eq!(servers.universe(), g.num_edges(), "server set mismatch");
        let mut server_offsets = Vec::with_capacity(g.num_vertices() + 1);
        let mut server_nbrs = Vec::new();
        let mut server_eids = Vec::new();
        server_offsets.push(0);
        for v in 0..g.num_vertices() {
            let (nbrs, eids) = g.sorted_neighbor_slices(v);
            for (&u, &e) in nbrs.iter().zip(eids) {
                if servers.contains(e) {
                    server_nbrs.push(u);
                    server_eids.push(e);
                }
            }
            server_offsets.push(server_nbrs.len());
        }
        ClientServerTwoSpanner {
            g,
            servers,
            server_offsets,
            server_nbrs,
            server_eids,
            targets: coverable_clients(g, clients, servers),
        }
    }

    /// The sorted `(server neighbors, edge ids)` slices of `v`.
    fn server_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.server_offsets[v];
        let hi = self.server_offsets[v + 1];
        (&self.server_nbrs[lo..hi], &self.server_eids[lo..hi])
    }
}

impl SpannerVariant for ClientServerTwoSpanner<'_> {
    fn num_vertices(&self) -> usize {
        self.g.num_vertices()
    }

    fn num_items(&self) -> usize {
        self.g.num_edges()
    }

    fn targets(&self) -> EdgeSet {
        self.targets.clone()
    }

    fn preselected(&self) -> EdgeSet {
        EdgeSet::new(self.g.num_edges())
    }

    fn covered(&self, h: &EdgeSet) -> EdgeSet {
        let mut out = EdgeSet::new(self.g.num_edges());
        for e in self.targets.iter() {
            let (u, v) = self.g.endpoints(e);
            if h.contains(e) || two_path_in(self.g, h, u, v) {
                out.insert(e);
            }
        }
        out
    }

    fn covered_delta(&self, h: &EdgeSet, new_edges: &[EdgeId], out: &mut EdgeSet) {
        // May report non-target items; the engine subtracts the delta
        // from a target-only set, so they are ignored.
        undirected_covered_delta(self.g, h, new_edges, out);
    }

    fn local_stars(&self, v: VertexId, uncovered: &EdgeSet) -> LocalStars {
        // Leaves are the server neighbors; items are uncovered
        // (coverable) client edges between them.
        let (nbrs, eids) = self.server_slices(v);
        unit_leaf_local_stars(self.g, nbrs, eids, |_| 1, |e| uncovered.contains(e))
    }

    fn force_cover(&self, item: usize) -> Vec<EdgeId> {
        if self.servers.contains(item) {
            return vec![item];
        }
        // A coverable non-server client edge has a server 2-path.
        let (u, v) = self.g.endpoints(item);
        for (x, eux) in self.g.neighbors(u) {
            if x == v || !self.servers.contains(eux) {
                continue;
            }
            if let Some(exv) = self.g.edge_id(x, v) {
                if self.servers.contains(exv) {
                    return vec![eux, exv];
                }
            }
        }
        Vec::new()
    }

    fn comm_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.g.sorted_neighbor_slices(v).0
    }

    fn threshold(&self) -> Ratio {
        Ratio::new(1, 2)
    }

    fn strict_termination(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------

/// The distributed minimum 2-spanner approximation of Theorem 1.3:
/// `O(log m/n)` expected ratio in `O(log n · log Δ)` rounds.
///
/// # Example
///
/// ```
/// use dsa_core::dist::{min_2_spanner, EngineConfig};
/// use dsa_core::verify::is_k_spanner;
/// use dsa_graphs::gen::complete;
///
/// let g = complete(9);
/// let run = min_2_spanner(&g, &EngineConfig::seeded(3));
/// assert!(run.converged);
/// assert!(is_k_spanner(&g, &run.spanner, 2));
/// assert!(run.spanner.len() < g.num_edges());
/// ```
pub fn min_2_spanner(g: &Graph, cfg: &EngineConfig) -> SpannerRun {
    run_engine(&UndirectedTwoSpanner::new(g), cfg)
}

/// The directed variant (Theorem 4.9), with the Section 4.3.1 proxy
/// densities and the `ρ̃/8` star-choice threshold.
///
/// # Example
///
/// ```
/// use dsa_core::dist::{min_2_spanner_directed, EngineConfig};
/// use dsa_core::verify::is_k_spanner_directed;
/// use dsa_graphs::DiGraph;
///
/// let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
/// let run = min_2_spanner_directed(&g, &EngineConfig::seeded(1));
/// assert!(run.converged);
/// assert!(is_k_spanner_directed(&g, &run.spanner, 2));
/// ```
pub fn min_2_spanner_directed(g: &DiGraph, cfg: &EngineConfig) -> SpannerRun {
    run_engine(&DirectedTwoSpanner::new(g), cfg)
}

/// The weighted variant (Theorem 4.12): `O(log Δ)` expected cost ratio;
/// weight-0 edges are pre-adopted.
///
/// # Panics
///
/// Panics if the weights don't match the graph.
///
/// # Example
///
/// ```
/// use dsa_core::dist::{min_2_spanner_weighted, EngineConfig};
/// use dsa_core::verify::is_k_spanner;
/// use dsa_graphs::{gen, EdgeWeights};
///
/// let g = gen::complete(7);
/// let w = EdgeWeights::from_fn(g.num_edges(), |e| (e % 4) as u64);
/// let run = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(5));
/// assert!(run.converged);
/// assert!(is_k_spanner(&g, &run.spanner, 2));
/// ```
pub fn min_2_spanner_weighted(g: &Graph, w: &EdgeWeights, cfg: &EngineConfig) -> SpannerRun {
    run_engine(&WeightedTwoSpanner::new(g, w), cfg)
}

/// The client-server variant (Theorem 4.15): covers every coverable
/// client edge using server edges only.
///
/// # Panics
///
/// Panics if the label universes don't match the graph.
///
/// # Example
///
/// ```
/// use dsa_core::dist::{min_2_spanner_client_server, EngineConfig};
/// use dsa_core::verify::is_client_server_2_spanner;
/// use dsa_graphs::{gen, EdgeSet};
///
/// let g = gen::complete(8);
/// let clients = EdgeSet::full(g.num_edges());
/// let servers = EdgeSet::full(g.num_edges());
/// let run = min_2_spanner_client_server(&g, &clients, &servers, &EngineConfig::seeded(2));
/// assert!(run.converged);
/// assert!(is_client_server_2_spanner(&g, &clients, &servers, &run.spanner));
/// ```
pub fn min_2_spanner_client_server(
    g: &Graph,
    clients: &EdgeSet,
    servers: &EdgeSet,
    cfg: &EngineConfig,
) -> SpannerRun {
    run_engine(&ClientServerTwoSpanner::new(g, clients, servers), cfg)
}

// ---------------------------------------------------------------------
// Incremental maintenance (named long-lived graphs).
// ---------------------------------------------------------------------

/// Classification of a batch of newly inserted items against a
/// maintained cover, produced by [`plan_insertions`]: an item either
/// *commutes* with the cover (it is already covered within stretch 2,
/// or is not a target at all, so no spanner work is needed) or it is
/// genuinely uncovered and needs a local repair or a recompute.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaintenancePlan {
    /// Inserted items already covered by the cover (or non-targets):
    /// the insertion commutes — the cover is still a valid 2-spanner.
    pub commuted: Vec<usize>,
    /// Inserted target items the cover does not reach within stretch 2.
    pub uncovered: Vec<usize>,
}

/// Classifies newly inserted items of `variant` against `cover`:
/// coverage is monotone under insertion, so every item of the old
/// graph stays covered and only the `new_items` need checking. Items
/// that are covered (or are not targets, e.g. an uncoverable
/// client-server client edge) land in
/// [`MaintenancePlan::commuted`]; the rest in
/// [`MaintenancePlan::uncovered`].
///
/// `variant` must be built over the *post-insertion* graph, with
/// `cover` re-indexed into its edge universe.
pub fn plan_insertions<V: SpannerVariant>(
    variant: &V,
    cover: &EdgeSet,
    new_items: &[usize],
) -> MaintenancePlan {
    let targets = variant.targets();
    let covered = variant.covered(cover);
    let mut plan = MaintenancePlan::default();
    for &item in new_items {
        if !targets.contains(item) || covered.contains(item) {
            plan.commuted.push(item);
        } else {
            plan.uncovered.push(item);
        }
    }
    plan
}

/// Repairs `cover` locally so that every item in `uncovered` becomes
/// covered, by self-adding each item's [`SpannerVariant::force_cover`]
/// edges — the same step-7 move the engine's termination pass uses, an
/// `O(deg)` repair instead of a full re-solve. Returns the edge ids
/// actually added (the caller's repair debt).
///
/// The incremental-coverage contract is honored for bookkeeping:
/// after the additions, [`SpannerVariant::covered_delta`] is consulted
/// in debug builds to assert every repaired item really is covered.
pub fn repair_cover<V: SpannerVariant>(
    variant: &V,
    cover: &mut EdgeSet,
    uncovered: &[usize],
) -> Vec<EdgeId> {
    let mut covered = variant.covered(cover);
    let mut added = Vec::new();
    let mut batch = Vec::new();
    for &item in uncovered {
        if covered.contains(item) {
            // An earlier repair in this batch already covered it.
            continue;
        }
        batch.clear();
        for e in variant.force_cover(item) {
            if cover.insert(e) {
                batch.push(e);
            }
        }
        // Incremental bookkeeping: only the items the new edges cover
        // change, exactly as in the engine's iteration loop.
        variant.covered_delta(cover, &batch, &mut covered);
        debug_assert!(covered.contains(item), "repair left {item} uncovered");
        added.extend_from_slice(&batch);
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{
        is_client_server_2_spanner, is_k_spanner, is_k_spanner_directed, spanner_cost,
    };
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_collapses_to_near_star() {
        let g = gen::complete(10);
        let run = min_2_spanner(&g, &EngineConfig::seeded(1));
        assert!(run.converged);
        assert!(is_k_spanner(&g, &run.spanner, 2));
        // The densest star is the full star; a handful of accepted
        // stars must suffice.
        assert!(run.spanner.len() <= 3 * (g.num_vertices() - 1));
        assert_eq!(run.iterations, run.stats.len() as u64);
    }

    #[test]
    fn path_terminates_by_self_addition() {
        let g = gen::path(8);
        let run = min_2_spanner(&g, &EngineConfig::seeded(0));
        assert!(run.converged);
        // No 2-paths exist: one termination iteration self-adds all.
        assert_eq!(run.iterations, 1);
        assert_eq!(run.spanner.len(), g.num_edges());
        assert_eq!(run.stats[0].candidates, 0);
    }

    #[test]
    fn bipartite_worst_case_needs_every_edge() {
        let g = gen::complete_bipartite(5, 5);
        let run = min_2_spanner(&g, &EngineConfig::seeded(4));
        assert!(run.converged);
        // No edge of K_{a,b} is 2-spannable by others.
        assert_eq!(run.spanner.len(), g.num_edges());
    }

    #[test]
    fn weighted_pre_adopts_free_edges_and_verifies() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = gen::gnp_connected(24, 0.3, &mut rng);
        let w = gen::random_weights(g.num_edges(), 0, 6, &mut rng);
        let run = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(7));
        assert!(run.converged);
        assert!(is_k_spanner(&g, &run.spanner, 2));
        for (e, weight) in w.iter() {
            if weight == 0 {
                assert!(run.spanner.contains(e), "free edge {e} missing");
            }
        }
        assert!(spanner_cost(&run.spanner, &w) <= w.total());
    }

    #[test]
    fn directed_engine_handles_antiparallel_pairs() {
        let mut g = DiGraph::new(8);
        for u in 0..8 {
            for v in 0..8 {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        let run = min_2_spanner_directed(&g, &EngineConfig::seeded(2));
        assert!(run.converged);
        assert!(is_k_spanner_directed(&g, &run.spanner, 2));
        assert!(run.spanner.len() < g.num_edges());
    }

    #[test]
    fn directed_random_instances_verify() {
        let mut rng = StdRng::seed_from_u64(13);
        for seed in 0..3u64 {
            let g = gen::random_digraph_connected(20, 0.12, &mut rng);
            let run = min_2_spanner_directed(&g, &EngineConfig::seeded(seed));
            assert!(run.converged, "seed {seed}");
            assert!(is_k_spanner_directed(&g, &run.spanner, 2), "seed {seed}");
        }
    }

    #[test]
    fn client_server_stays_within_servers() {
        let mut rng = StdRng::seed_from_u64(17);
        for seed in 0..3u64 {
            let g = gen::gnp_connected(25, 0.25, &mut rng);
            let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
            let run =
                min_2_spanner_client_server(&g, &clients, &servers, &EngineConfig::seeded(seed));
            assert!(run.converged, "seed {seed}");
            assert!(run.spanner.is_subset_of(&servers), "seed {seed}");
            assert!(
                is_client_server_2_spanner(&g, &clients, &servers, &run.spanner),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn client_server_skips_uncoverable_clients() {
        // Triangle plus a pendant client edge no server can cover.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)]);
        let e03 = g.edge_id(0, 3).unwrap();
        let clients = EdgeSet::full(g.num_edges());
        let mut servers = EdgeSet::full(g.num_edges());
        servers.remove(e03);
        let run = min_2_spanner_client_server(&g, &clients, &servers, &EngineConfig::seeded(0));
        assert!(run.converged);
        assert!(!run.spanner.contains(e03));
        assert!(is_client_server_2_spanner(
            &g,
            &clients,
            &servers,
            &run.spanner
        ));
    }

    #[test]
    fn ablated_configs_stay_correct() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = gen::gnp_connected(22, 0.3, &mut rng);
        for cfg in [
            EngineConfig {
                monotone_stars: false,
                ..EngineConfig::seeded(1)
            },
            EngineConfig {
                round_densities: false,
                ..EngineConfig::seeded(2)
            },
            EngineConfig {
                accept_denominator: 1,
                ..EngineConfig::seeded(3)
            },
            EngineConfig {
                accept_denominator: 64,
                ..EngineConfig::seeded(4)
            },
        ] {
            let run = run_engine(&UndirectedTwoSpanner::new(&g), &cfg);
            assert!(run.converged, "{cfg:?}");
            assert!(is_k_spanner(&g, &run.spanner, 2), "{cfg:?}");
        }
    }

    #[test]
    fn stats_track_progress_monotonically() {
        // Strict decrease is guaranteed (not luck): the candidate with
        // the globally smallest permutation value wins the vote of
        // every item its star spans, so it always clears the |C_v|/8
        // acceptance bar and covers at least one item per iteration.
        let mut rng = StdRng::seed_from_u64(29);
        let g = gen::gnp_connected(30, 0.25, &mut rng);
        let run = min_2_spanner(&g, &EngineConfig::seeded(5));
        assert!(run.converged);
        for pair in run.stats.windows(2) {
            assert!(
                pair[1].uncovered < pair[0].uncovered,
                "no progress: {run:?}"
            );
        }
        assert_eq!(run.stats.last().unwrap().uncovered, 0);
    }

    #[test]
    fn timing_trace_never_changes_results() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::gnp_connected(28, 0.25, &mut rng);
        let base = min_2_spanner(&g, &EngineConfig::seeded(6));
        assert!(base.trace.is_none(), "trace must be opt-in");
        for shards in [1usize, 3] {
            let cfg = EngineConfig {
                collect_timings: true,
                num_shards: shards,
                ..EngineConfig::seeded(6)
            };
            let run = run_engine(&UndirectedTwoSpanner::new(&g), &cfg);
            assert_eq!(run.spanner, base.spanner, "shards={shards}");
            assert_eq!(run.stats, base.stats, "shards={shards}");
            assert_eq!(run.star_fallbacks, base.star_fallbacks);
            let trace = run.trace.expect("trace requested");
            assert_eq!(trace.iterations.len(), run.stats.len());
            for (timing, stats) in trace.iterations.iter().zip(&run.stats) {
                assert!(timing.step1.shards.len() <= shards.max(1) || shards == 0);
                assert!(!timing.step1.shards.is_empty());
                if stats.candidates == 0 && timing.step3.shards.is_empty() {
                    // Termination pass: only Step 1 + coverage ran.
                    assert!(timing.step4.shards.is_empty());
                }
            }
        }
    }

    #[test]
    fn weighted_survives_astronomical_weights() {
        // Regression: weights beyond 2^62 used to drive the threshold
        // exponent past pow2_ratio's range and panic, and each of
        // these weight profiles crashed a different layer (threshold
        // loop, rounded star-choice exponent, fallback weight sums).
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        for weights in [
            vec![1, 1, (1u64 << 62) + 1],
            vec![(1u64 << 61) + 2, 2, (1u64 << 61) + 2],
            vec![1u64 << 63, 1u64 << 63, 1],
            vec![u64::MAX, u64::MAX, u64::MAX],
        ] {
            let w = EdgeWeights::from_vec(weights.clone());
            let run = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(0));
            assert!(run.converged, "{weights:?}");
            assert!(is_k_spanner(&g, &run.spanner, 2), "{weights:?}");
            // The exact-density ablation takes its own guarded path.
            let cfg = EngineConfig {
                round_densities: false,
                ..EngineConfig::seeded(1)
            };
            let run = run_engine(&WeightedTwoSpanner::new(&g, &w), &cfg);
            assert!(run.converged, "{weights:?}");
            assert!(is_k_spanner(&g, &run.spanner, 2), "{weights:?}");
            // The message-passing protocol shares the star machinery.
            let run = crate::protocol::run_weighted_two_spanner_protocol(&g, &w, 3, 10_000);
            assert!(run.completed, "{weights:?}");
            assert!(is_k_spanner(&g, &run.spanner, 2), "{weights:?}");
        }
    }

    /// Replays random edge-addition batches against `variant`,
    /// checking after every batch that the incremental
    /// `covered_delta` bookkeeping lands on exactly the from-scratch
    /// `targets − covered(h)` recompute — the invariant the engine's
    /// uncovered-set maintenance rests on.
    fn assert_delta_matches_recompute<V: SpannerVariant>(
        variant: &V,
        universe: usize,
        rng: &mut StdRng,
    ) {
        use rand::Rng;
        let targets = variant.targets();
        let mut h = variant.preselected();
        let mut uncovered = targets.clone();
        uncovered.subtract(&variant.covered(&h));
        let mut delta = EdgeSet::new(variant.num_items());
        while h.len() < universe {
            let mut new_edges = Vec::new();
            for _ in 0..rng.gen_range(1..=4) {
                let e = rng.gen_range(0..universe);
                if h.insert(e) {
                    new_edges.push(e);
                }
            }
            delta.clear();
            variant.covered_delta(&h, &new_edges, &mut delta);
            uncovered.subtract(&delta);
            let mut expect = targets.clone();
            expect.subtract(&variant.covered(&h));
            assert_eq!(uncovered, expect, "delta diverged after {new_edges:?}");
        }
        // The loop exits with every edge in `h`, so nothing can be
        // left uncovered.
        assert!(uncovered.is_empty());
    }

    #[test]
    fn covered_delta_matches_recompute_for_all_variants() {
        let mut rng = StdRng::seed_from_u64(37);
        for trial in 0..3u64 {
            let g = gen::gnp_connected(18 + 2 * trial as usize, 0.25, &mut rng);
            let m = g.num_edges();
            assert_delta_matches_recompute(&UndirectedTwoSpanner::new(&g), m, &mut rng);
            let w = gen::random_weights(m, 0, 5, &mut rng);
            assert_delta_matches_recompute(&WeightedTwoSpanner::new(&g, &w), m, &mut rng);
            let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
            assert_delta_matches_recompute(
                &ClientServerTwoSpanner::new(&g, &clients, &servers),
                m,
                &mut rng,
            );
            let d = gen::random_digraph_connected(16, 0.12, &mut rng);
            assert_delta_matches_recompute(&DirectedTwoSpanner::new(&d), d.num_edges(), &mut rng);
        }
    }

    /// A full engine spanner commutes with every item; an empty cover
    /// leaves exactly the targets uncovered, and a repair pass covers
    /// them all — for any variant.
    fn assert_maintenance_roundtrip<V: SpannerVariant + Sync>(variant: &V) {
        let run = run_engine(variant, &EngineConfig::seeded(3));
        assert!(run.converged);
        let all_items: Vec<usize> = (0..variant.num_items()).collect();
        let plan = plan_insertions(variant, &run.spanner, &all_items);
        assert!(
            plan.uncovered.is_empty(),
            "a converged spanner covers everything: {plan:?}"
        );
        assert_eq!(plan.commuted.len(), variant.num_items());

        let mut cover = variant.preselected();
        let plan = plan_insertions(variant, &cover, &all_items);
        let mut expect = variant.targets();
        expect.subtract(&variant.covered(&cover));
        assert_eq!(plan.uncovered.len(), expect.len());
        let added = repair_cover(variant, &mut cover, &plan.uncovered);
        assert!(!added.is_empty() || expect.is_empty());
        let covered = variant.covered(&cover);
        for item in variant.targets().iter() {
            assert!(covered.contains(item), "item {item} uncovered after repair");
        }
        // Idempotence: nothing is uncovered now, so a second plan
        // commutes fully and a second repair adds nothing.
        let plan = plan_insertions(variant, &cover, &all_items);
        assert!(plan.uncovered.is_empty());
        assert!(repair_cover(variant, &mut cover, &plan.uncovered).is_empty());
    }

    #[test]
    fn maintenance_plan_and_repair_all_variants() {
        let mut rng = StdRng::seed_from_u64(41);
        let g = gen::gnp_connected(20, 0.25, &mut rng);
        assert_maintenance_roundtrip(&UndirectedTwoSpanner::new(&g));
        let w = gen::random_weights(g.num_edges(), 1, 5, &mut rng);
        assert_maintenance_roundtrip(&WeightedTwoSpanner::new(&g, &w));
        let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
        assert_maintenance_roundtrip(&ClientServerTwoSpanner::new(&g, &clients, &servers));
        let d = gen::random_digraph_connected(16, 0.12, &mut rng);
        assert_maintenance_roundtrip(&DirectedTwoSpanner::new(&d));
    }

    #[test]
    fn engine_is_deterministic_per_seed() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::gnp_connected(26, 0.3, &mut rng);
        let a = min_2_spanner(&g, &EngineConfig::seeded(9));
        let b = min_2_spanner(&g, &EngineConfig::seeded(9));
        assert_eq!(a.spanner, b.spanner);
        assert_eq!(a.iterations, b.iterations);
    }
}
