//! Independent verifiers for every spanner variant of the paper.
//!
//! Tests and experiments never trust an algorithm's own bookkeeping:
//! every produced subgraph is re-checked against the Section 1.5
//! definitions by plain BFS.

use dsa_graphs::traversal::{covers_edge, covers_edge_directed};
use dsa_graphs::{DiGraph, EdgeId, EdgeSet, EdgeWeights, Graph};

/// Whether `h` is a k-spanner of `g`: every edge of `g` has a path of
/// length at most `k` between its endpoints inside `h`.
pub fn is_k_spanner(g: &Graph, h: &EdgeSet, k: usize) -> bool {
    uncovered_edges(g, h, k).is_empty()
}

/// The edges of `g` *not* covered by `h` within stretch `k`.
pub fn uncovered_edges(g: &Graph, h: &EdgeSet, k: usize) -> Vec<EdgeId> {
    g.edges()
        .filter(|&(e, _, _)| !covers_edge(g, h, e, k))
        .map(|(e, _, _)| e)
        .collect()
}

/// Whether `h` is a k-spanner of the directed graph `g`.
pub fn is_k_spanner_directed(g: &DiGraph, h: &EdgeSet, k: usize) -> bool {
    uncovered_edges_directed(g, h, k).is_empty()
}

/// The directed edges of `g` not covered by `h` within stretch `k`.
pub fn uncovered_edges_directed(g: &DiGraph, h: &EdgeSet, k: usize) -> Vec<EdgeId> {
    g.edges()
        .filter(|&(e, _, _)| !covers_edge_directed(g, h, e, k))
        .map(|(e, _, _)| e)
        .collect()
}

/// The cost `w(H)` of a spanner under edge weights.
pub fn spanner_cost(h: &EdgeSet, w: &EdgeWeights) -> u64 {
    w.sum(h.iter())
}

/// The client edges that can be covered by server edges at all: `e` is
/// coverable when `e` is itself a server edge or some common neighbor
/// connects both endpoints by server edges. Instances whose client
/// edges are not all coverable have no feasible client-server
/// 2-spanner; the algorithm (and this crate's verifier) then restrict
/// attention to the coverable ones, as the paper prescribes
/// (Section 4.3.3).
pub fn coverable_clients(g: &Graph, clients: &EdgeSet, servers: &EdgeSet) -> EdgeSet {
    let mut out = EdgeSet::new(g.num_edges());
    for e in clients.iter() {
        if servers.contains(e) {
            out.insert(e);
            continue;
        }
        let (u, v) = g.endpoints(e);
        let has_server_path = g.neighbors(u).any(|(x, eux)| {
            servers.contains(eux) && g.edge_id(x, v).is_some_and(|exv| servers.contains(exv))
        });
        if has_server_path {
            out.insert(e);
        }
    }
    out
}

/// Whether `h` is a valid client-server 2-spanner: `h` uses only server
/// edges and covers every *coverable* client edge within stretch 2.
pub fn is_client_server_2_spanner(
    g: &Graph,
    clients: &EdgeSet,
    servers: &EdgeSet,
    h: &EdgeSet,
) -> bool {
    if !h.is_subset_of(servers) {
        return false;
    }
    coverable_clients(g, clients, servers)
        .iter()
        .all(|e| covers_edge(g, h, e, 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_graph_is_always_a_spanner() {
        let g = dsa_graphs::gen::complete(5);
        let h = EdgeSet::full(g.num_edges());
        assert!(is_k_spanner(&g, &h, 1));
        assert!(is_k_spanner(&g, &h, 2));
    }

    #[test]
    fn star_spans_complete_graph_within_2() {
        let g = dsa_graphs::gen::complete(5);
        let mut h = EdgeSet::new(g.num_edges());
        for u in 1..5 {
            h.insert(g.edge_id(0, u).unwrap());
        }
        assert!(is_k_spanner(&g, &h, 2));
        assert!(!is_k_spanner(&g, &h, 1));
        assert_eq!(uncovered_edges(&g, &h, 1).len(), g.num_edges() - 4);
    }

    #[test]
    fn directed_spanner_needs_directions() {
        // Cycle 0 -> 1 -> 2 -> 0 plus shortcut 0 -> 2.
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0), (0, 2)]);
        let mut h = EdgeSet::new(4);
        h.insert(g.edge_id(0, 1).unwrap());
        h.insert(g.edge_id(1, 2).unwrap());
        h.insert(g.edge_id(2, 0).unwrap());
        // 0 -> 2 is covered by 0 -> 1 -> 2 within k = 2.
        assert!(is_k_spanner_directed(&g, &h, 2));
        // Dropping 1 -> 2 leaves 0 -> 2 and 1 -> 2 uncovered at k = 2.
        h.remove(g.edge_id(1, 2).unwrap());
        let unc = uncovered_edges_directed(&g, &h, 2);
        assert_eq!(unc.len(), 2);
    }

    #[test]
    fn cost_sums_weights() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let w = EdgeWeights::from_vec(vec![5, 0, 3]);
        let h = EdgeSet::from_iter(g.num_edges(), [0, 2]);
        assert_eq!(spanner_cost(&h, &w), 8);
    }

    #[test]
    fn client_server_checks() {
        // Path 0-1-2 plus chord 0-2.
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let e01 = g.edge_id(0, 1).unwrap();
        let e12 = g.edge_id(1, 2).unwrap();
        let e02 = g.edge_id(0, 2).unwrap();
        // The chord is a client, the path edges are servers.
        let clients = EdgeSet::from_iter(3, [e02]);
        let servers = EdgeSet::from_iter(3, [e01, e12]);
        assert_eq!(
            coverable_clients(&g, &clients, &servers)
                .iter()
                .collect::<Vec<_>>(),
            vec![e02]
        );
        let h = EdgeSet::from_iter(3, [e01, e12]);
        assert!(is_client_server_2_spanner(&g, &clients, &servers, &h));
        // A spanner using a non-server edge is invalid.
        let bad = EdgeSet::from_iter(3, [e02]);
        assert!(!is_client_server_2_spanner(&g, &clients, &servers, &bad));
        // Missing coverage is invalid.
        let empty = EdgeSet::new(3);
        assert!(!is_client_server_2_spanner(&g, &clients, &servers, &empty));
    }

    #[test]
    fn uncoverable_clients_are_excluded() {
        // Edge 0-1 is a client but nothing can cover it except itself,
        // and it is not a server.
        let g = Graph::from_edges(2, [(0, 1)]);
        let clients = EdgeSet::from_iter(1, [0]);
        let servers = EdgeSet::new(1);
        assert!(coverable_clients(&g, &clients, &servers).is_empty());
        // The empty spanner is then (vacuously) valid.
        assert!(is_client_server_2_spanner(
            &g,
            &clients,
            &servers,
            &EdgeSet::new(1)
        ));
    }
}
