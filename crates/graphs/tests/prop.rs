//! Property tests for the graph substrate.

use proptest::prelude::*;

use dsa_graphs::traversal::{
    all_pairs_distances, bfs_distances, connected_components, covers_edge, is_connected,
};
use dsa_graphs::{gen, EdgeSet, Graph, Ratio};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0u64..500, 1u32..5).prop_map(|(n, seed, d)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp(n, 0.06 * d as f64, &mut rng)
    })
}

fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0u64..500, 1u32..5).prop_map(|(n, seed, d)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp_connected(n, 0.06 * d as f64, &mut rng)
    })
}

proptest! {
    /// Handshake lemma: degree sum equals twice the edge count.
    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph()) {
        let sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }

    /// Edge ids round-trip through endpoints and the index.
    #[test]
    fn edge_ids_roundtrip(g in arb_graph()) {
        for (e, u, v) in g.edges() {
            prop_assert_eq!(g.edge_id(u, v), Some(e));
            prop_assert_eq!(g.edge_id(v, u), Some(e));
            prop_assert_eq!(g.endpoints(e), (u.min(v), u.max(v)));
            prop_assert_eq!(g.other_endpoint(e, u), v);
        }
    }

    /// BFS distances are symmetric in undirected graphs.
    #[test]
    fn bfs_symmetry(g in arb_connected_graph()) {
        let d = all_pairs_distances(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(d[u][v], d[v][u]);
            }
        }
    }

    /// The triangle inequality holds for BFS distances.
    #[test]
    fn bfs_triangle_inequality(g in arb_connected_graph()) {
        let d = all_pairs_distances(&g);
        let n = g.num_vertices();
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    let (duv, dvw, duw) = (d[u][v].unwrap(), d[v][w].unwrap(), d[u][w].unwrap());
                    prop_assert!(duw <= duv + dvw);
                }
            }
        }
    }

    /// Components partition the vertex set, and a graph is connected
    /// iff it has one component.
    #[test]
    fn components_partition(g in arb_graph()) {
        let comps = connected_components(&g);
        let mut seen = vec![false; g.num_vertices()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v], "vertex {v} in two components");
                seen[v] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        prop_assert_eq!(comps.len() == 1, is_connected(&g) && g.num_vertices() > 0);
    }

    /// The full edge set covers everything at stretch 1; the empty set
    /// covers nothing (on non-empty graphs).
    #[test]
    fn coverage_extremes(g in arb_graph()) {
        let full = EdgeSet::full(g.num_edges());
        let empty = EdgeSet::new(g.num_edges());
        for (e, _, _) in g.edges() {
            prop_assert!(covers_edge(&g, &full, e, 1));
            prop_assert!(!covers_edge(&g, &empty, e, 5));
        }
    }

    /// Coverage is monotone in the stretch and in the edge set.
    #[test]
    fn coverage_monotone(g in arb_connected_graph(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let sub = EdgeSet::from_iter(
            g.num_edges(),
            (0..g.num_edges()).filter(|_| rng.gen_bool(0.6)),
        );
        let full = EdgeSet::full(g.num_edges());
        for (e, _, _) in g.edges() {
            if covers_edge(&g, &sub, e, 2) {
                prop_assert!(covers_edge(&g, &sub, e, 3));
                prop_assert!(covers_edge(&g, &full, e, 2));
            }
        }
    }

    /// EdgeSet operations behave like the reference BTreeSet.
    #[test]
    fn edgeset_matches_btreeset(ids in proptest::collection::vec(0usize..200, 0..60)) {
        use std::collections::BTreeSet;
        let set = EdgeSet::from_iter(200, ids.iter().copied());
        let reference: BTreeSet<usize> = ids.iter().copied().collect();
        prop_assert_eq!(set.len(), reference.len());
        let collected: Vec<usize> = set.iter().collect();
        let expected: Vec<usize> = reference.iter().copied().collect();
        prop_assert_eq!(collected, expected);
    }

    /// Rounded density: 2^{j-1} <= ρ < 2^j for the returned exponent.
    #[test]
    fn pow2_rounding_brackets(num in 1u64..10_000, den in 1u64..10_000) {
        let r = Ratio::new(num, den);
        let j = r.ceil_pow2_exponent().unwrap();
        prop_assert_eq!(r.cmp_pow2(j), std::cmp::Ordering::Less);
        prop_assert_ne!(r.cmp_pow2(j - 1), std::cmp::Ordering::Less);
    }

    /// Ratio ordering agrees with cross-multiplication on f64 (where
    /// f64 is exact enough to decide).
    #[test]
    fn ratio_ordering_consistent(a in 0u64..1_000, b in 1u64..1_000, c in 0u64..1_000, d in 1u64..1_000) {
        let (x, y) = (Ratio::new(a, b), Ratio::new(c, d));
        let lhs = (a as u128) * (d as u128);
        let rhs = (c as u128) * (b as u128);
        prop_assert_eq!(x.cmp(&y), lhs.cmp(&rhs));
    }

    /// Generators produce what they promise.
    #[test]
    fn gnp_connected_connects(n in 1usize..50, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnp_connected(n, 0.01, &mut rng);
        prop_assert!(is_connected(&g));
        prop_assert_eq!(g.num_vertices(), n);
    }

    /// BFS from any vertex reaches exactly its component.
    #[test]
    fn bfs_reaches_component(g in arb_graph()) {
        if g.num_vertices() == 0 { return Ok(()); }
        let comps = connected_components(&g);
        for comp in &comps {
            let d = bfs_distances(&g, comp[0]);
            for v in g.vertices() {
                prop_assert_eq!(d[v].is_some(), comp.contains(&v));
            }
        }
    }
}
