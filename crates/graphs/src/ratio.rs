//! Exact non-negative rational arithmetic for star densities.

use std::cmp::Ordering;
use std::fmt;

/// A non-negative rational number with exact comparison.
///
/// Star densities in the paper are ratios of small integers (numbers of
/// edges over star sizes or weights); comparing them with floating point
/// would risk breaking the tie-carefulness the analysis relies on
/// (Observation 1 of the paper manipulates exact mediant inequalities).
/// All comparisons go through 128-bit cross multiplication, so they are
/// exact for any operands produced by graphs with fewer than 2^32 edges.
///
/// The value is *not* kept in lowest terms; equality is value equality.
///
/// # Example
///
/// ```
/// use dsa_graphs::Ratio;
///
/// let half = Ratio::new(1, 2);
/// let two_quarters = Ratio::new(2, 4);
/// assert_eq!(half, two_quarters);
/// assert!(half < Ratio::new(2, 3));
/// assert_eq!(Ratio::zero().ceil_pow2_exponent(), None);
/// assert_eq!(Ratio::new(3, 1).ceil_pow2_exponent(), Some(2)); // 4 = 2^2 > 3
/// assert_eq!(Ratio::new(4, 1).ceil_pow2_exponent(), Some(3)); // 8 = 2^3 > 4
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Creates the ratio `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "ratio denominator must be non-zero");
        Ratio { num, den }
    }

    /// The ratio 0.
    pub fn zero() -> Self {
        Ratio { num: 0, den: 1 }
    }

    /// The ratio 1.
    pub fn one() -> Self {
        Ratio { num: 1, den: 1 }
    }

    /// The numerator as given.
    pub fn numerator(&self) -> u64 {
        self.num
    }

    /// The denominator as given.
    pub fn denominator(&self) -> u64 {
        self.den
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// The value as `f64`, for reporting only.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Compares `self` against `2^exp` (exp may be negative).
    pub fn cmp_pow2(&self, exp: i32) -> Ordering {
        // self ? 2^exp  <=>  num * 2^{-exp} ? den (for exp <= 0)
        //                <=>  num ? den * 2^{exp} (for exp >= 0)
        if exp >= 0 {
            let rhs = (self.den as u128) << exp.min(100);
            (self.num as u128).cmp(&rhs)
        } else {
            let lhs = (self.num as u128) << (-exp).min(100);
            lhs.cmp(&(self.den as u128))
        }
    }

    /// The exponent `j` of the *rounded density* of the paper: the
    /// smallest integer with `2^j > self`. Returns `None` for zero.
    ///
    /// Section 4 of the paper rounds every density "to the closest power
    /// of 2 that is greater than" the density, so an exact power of two
    /// rounds up to the next one.
    pub fn ceil_pow2_exponent(&self) -> Option<i32> {
        if self.is_zero() {
            return None;
        }
        // Start near log2(num/den) and walk to the exact answer.
        let mut j = (self.num as f64 / self.den as f64).log2().ceil() as i32;
        // Ensure 2^j > self.
        while self.cmp_pow2(j) != Ordering::Less {
            j += 1;
        }
        // Ensure minimality: 2^{j-1} <= self.
        while self.cmp_pow2(j - 1) == Ordering::Less {
            j -= 1;
        }
        Some(j)
    }

    /// `self * k` for an integer `k`.
    ///
    /// # Panics
    ///
    /// Panics on numerator overflow.
    pub fn scale(&self, k: u64) -> Ratio {
        Ratio::new(self.num.checked_mul(k).expect("ratio overflow"), self.den)
    }
}

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        (self.num as u128) * (other.den as u128) == (other.num as u128) * (self.den as u128)
    }
}

impl Eq for Ratio {}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        ((self.num as u128) * (other.den as u128)).cmp(&((other.num as u128) * (self.den as u128)))
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl From<u64> for Ratio {
    fn from(v: u64) -> Self {
        Ratio::new(v, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_exact() {
        // 1/3 < 3333333333/10^10 < 34/100
        let a = Ratio::new(1, 3);
        let b = Ratio::new(3_333_333_333, 10_000_000_000);
        let c = Ratio::new(34, 100);
        assert!(a > b);
        assert!(b < c);
        assert!(a < c);
    }

    #[test]
    fn equality_ignores_representation() {
        assert_eq!(Ratio::new(6, 4), Ratio::new(3, 2));
        assert_ne!(Ratio::new(6, 4), Ratio::new(3, 4));
    }

    #[test]
    fn pow2_rounding_strictly_greater() {
        assert_eq!(Ratio::new(1, 1).ceil_pow2_exponent(), Some(1));
        assert_eq!(Ratio::new(3, 2).ceil_pow2_exponent(), Some(1));
        assert_eq!(Ratio::new(5, 2).ceil_pow2_exponent(), Some(2));
        assert_eq!(Ratio::new(1, 2).ceil_pow2_exponent(), Some(0));
        assert_eq!(Ratio::new(1, 3).ceil_pow2_exponent(), Some(-1));
        assert_eq!(Ratio::new(1, 4).ceil_pow2_exponent(), Some(-1));
        assert_eq!(Ratio::new(1, 5).ceil_pow2_exponent(), Some(-2));
    }

    #[test]
    fn cmp_pow2_negative_exponents() {
        assert_eq!(Ratio::new(1, 8).cmp_pow2(-3), Ordering::Equal);
        assert_eq!(Ratio::new(1, 9).cmp_pow2(-3), Ordering::Less);
        assert_eq!(Ratio::new(1, 7).cmp_pow2(-3), Ordering::Greater);
    }

    #[test]
    fn scale_multiplies_numerator() {
        assert_eq!(Ratio::new(2, 3).scale(3), Ratio::new(6, 3));
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        Ratio::new(1, 0);
    }
}
