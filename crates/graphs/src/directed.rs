//! Simple directed graphs with stable edge identifiers.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::{EdgeId, Graph, VertexId};

/// A simple directed graph in flat CSR form.
///
/// Edges `(u, v)` are ordered pairs; `(u, v)` and `(v, u)` may both be
/// present, but parallel copies of the same ordered pair and self-loops
/// are rejected.
///
/// As in the paper, the *communication* graph of a directed problem
/// instance is its undirected underlying graph ([`DiGraph::underlying`]);
/// directions only constrain which paths may 2-span an edge.
///
/// Out- and in-adjacency each live in contiguous offset/neighbor/edge-id
/// arrays (see [`Graph`] for the layout rationale); a sorted copy of the
/// out-neighbors backs binary-search [`DiGraph::edge_id`] lookup. As in
/// the undirected case, [`DiGraph::add_edge`] rebuilds the arrays —
/// O(n + m) per call — while [`DiGraph::from_edges`] builds once in
/// bulk.
///
/// # Example
///
/// ```
/// use dsa_graphs::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 0);
/// assert_eq!(g.out_degree(0), 1);
/// assert_eq!(g.in_degree(0), 1);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(1, 0));
/// ```
#[derive(Clone, Eq)]
pub struct DiGraph {
    /// Number of vertices.
    n: usize,
    /// `edges[e]` is the ordered `(tail, head)` pair.
    edges: Vec<(VertexId, VertexId)>,
    /// `out_offsets[v]..out_offsets[v + 1]` slices the out-arrays.
    out_offsets: Vec<usize>,
    /// Heads of edges leaving each vertex, in insertion order.
    out_nbrs: Vec<VertexId>,
    /// Edge id of each `out_nbrs` entry.
    out_eids: Vec<EdgeId>,
    /// `out_nbrs` with each per-vertex slice sorted by head id.
    sorted_out_nbrs: Vec<VertexId>,
    /// Edge id of each `sorted_out_nbrs` entry.
    sorted_out_eids: Vec<EdgeId>,
    /// `in_offsets[v]..in_offsets[v + 1]` slices the in-arrays.
    in_offsets: Vec<usize>,
    /// Tails of edges entering each vertex, in insertion order.
    in_nbrs: Vec<VertexId>,
    /// Edge id of each `in_nbrs` entry.
    in_eids: Vec<EdgeId>,
    /// `in_nbrs` with each per-vertex slice sorted by tail id.
    sorted_in_nbrs: Vec<VertexId>,
    /// Edge id of each `sorted_in_nbrs` entry.
    sorted_in_eids: Vec<EdgeId>,
}

impl DiGraph {
    /// Creates a directed graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            n,
            edges: Vec::new(),
            out_offsets: vec![0; n + 1],
            out_nbrs: Vec::new(),
            out_eids: Vec::new(),
            sorted_out_nbrs: Vec::new(),
            sorted_out_eids: Vec::new(),
            in_offsets: vec![0; n + 1],
            in_nbrs: Vec::new(),
            in_eids: Vec::new(),
            sorted_in_nbrs: Vec::new(),
            sorted_in_eids: Vec::new(),
        }
    }

    /// Creates a directed graph from an edge iterator, in one bulk CSR
    /// build.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate ordered pairs, or out-of-range
    /// endpoints.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = DiGraph::new(n);
        let mut seen = HashSet::new();
        for (u, v) in edges {
            assert!(u != v, "self-loop ({u}, {v}) not allowed");
            assert!(
                u < n && v < n,
                "edge ({u}, {v}) out of range for {n} vertices"
            );
            assert!(seen.insert((u, v)), "duplicate directed edge ({u}, {v})");
            g.edges.push((u, v));
        }
        g.rebuild();
        g
    }

    /// Rebuilds the CSR arrays from `self.edges`.
    fn rebuild(&mut self) {
        let n = self.n;
        let m = self.edges.len();
        self.out_offsets.clear();
        self.out_offsets.resize(n + 1, 0);
        self.in_offsets.clear();
        self.in_offsets.resize(n + 1, 0);
        for &(u, v) in &self.edges {
            self.out_offsets[u + 1] += 1;
            self.in_offsets[v + 1] += 1;
        }
        for v in 0..n {
            self.out_offsets[v + 1] += self.out_offsets[v];
            self.in_offsets[v + 1] += self.in_offsets[v];
        }
        let mut out_cursor: Vec<usize> = self.out_offsets[..n].to_vec();
        let mut in_cursor: Vec<usize> = self.in_offsets[..n].to_vec();
        self.out_nbrs.clear();
        self.out_nbrs.resize(m, 0);
        self.out_eids.clear();
        self.out_eids.resize(m, 0);
        self.in_nbrs.clear();
        self.in_nbrs.resize(m, 0);
        self.in_eids.clear();
        self.in_eids.resize(m, 0);
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            self.out_nbrs[out_cursor[u]] = v;
            self.out_eids[out_cursor[u]] = e;
            out_cursor[u] += 1;
            self.in_nbrs[in_cursor[v]] = u;
            self.in_eids[in_cursor[v]] = e;
            in_cursor[v] += 1;
        }
        // Heads are unique per tail (no parallel ordered pairs), so
        // sorting (head, eid) pairs sorts by head; likewise tails per
        // head for the in-arrays.
        let mut pairs: Vec<(VertexId, EdgeId)> = self
            .out_nbrs
            .iter()
            .copied()
            .zip(self.out_eids.iter().copied())
            .collect();
        for v in 0..n {
            pairs[self.out_offsets[v]..self.out_offsets[v + 1]].sort_unstable();
        }
        self.sorted_out_nbrs.clear();
        self.sorted_out_eids.clear();
        self.sorted_out_nbrs.extend(pairs.iter().map(|&(x, _)| x));
        self.sorted_out_eids.extend(pairs.iter().map(|&(_, e)| e));
        let mut pairs: Vec<(VertexId, EdgeId)> = self
            .in_nbrs
            .iter()
            .copied()
            .zip(self.in_eids.iter().copied())
            .collect();
        for v in 0..n {
            pairs[self.in_offsets[v]..self.in_offsets[v + 1]].sort_unstable();
        }
        self.sorted_in_nbrs.clear();
        self.sorted_in_eids.clear();
        self.sorted_in_nbrs.extend(pairs.iter().map(|&(x, _)| x));
        self.sorted_in_eids.extend(pairs.iter().map(|&(_, e)| e));
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Adds the directed edge `(u, v)` and returns its id.
    ///
    /// Rebuilds the CSR arrays: O(n + m) per call. Use
    /// [`DiGraph::from_edges`] for bulk construction.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicates, or out-of-range endpoints.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        assert!(u != v, "self-loop ({u}, {v}) not allowed");
        assert!(
            u < self.n && v < self.n,
            "edge ({u}, {v}) out of range for {} vertices",
            self.n
        );
        assert!(
            self.edge_id(u, v).is_none(),
            "duplicate directed edge ({u}, {v})"
        );
        let id = self.edges.len();
        self.edges.push((u, v));
        self.rebuild();
        id
    }

    /// The id of the directed edge `(u, v)`, if present: a binary
    /// search over the sorted out-neighbor slice of `u`.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let lo = self.out_offsets[u];
        let hi = self.out_offsets[u + 1];
        self.sorted_out_nbrs[lo..hi]
            .binary_search(&v)
            .ok()
            .map(|i| self.sorted_out_eids[lo + i])
    }

    /// Whether the directed edge `(u, v)` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// The `(tail, head)` pair of edge `e`.
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Maximum total degree (in + out) over all vertices.
    pub fn max_total_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.in_degree(v) + self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over `(head, edge id)` pairs of edges leaving `v`, in
    /// insertion order.
    pub fn out_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (nbrs, eids) = self.out_neighbor_slices(v);
        nbrs.iter().copied().zip(eids.iter().copied())
    }

    /// Iterator over `(tail, edge id)` pairs of edges entering `v`, in
    /// insertion order.
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (nbrs, eids) = self.in_neighbor_slices(v);
        nbrs.iter().copied().zip(eids.iter().copied())
    }

    /// The contiguous `(heads, edge ids)` slices of edges leaving `v`,
    /// in insertion order.
    pub fn out_neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.out_offsets[v];
        let hi = self.out_offsets[v + 1];
        (&self.out_nbrs[lo..hi], &self.out_eids[lo..hi])
    }

    /// The contiguous `(tails, edge ids)` slices of edges entering `v`,
    /// in insertion order.
    pub fn in_neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.in_offsets[v];
        let hi = self.in_offsets[v + 1];
        (&self.in_nbrs[lo..hi], &self.in_eids[lo..hi])
    }

    /// [`DiGraph::out_neighbor_slices`] with heads in ascending id
    /// order — the layout merge-based intersection loops want.
    pub fn sorted_out_neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.out_offsets[v];
        let hi = self.out_offsets[v + 1];
        (&self.sorted_out_nbrs[lo..hi], &self.sorted_out_eids[lo..hi])
    }

    /// [`DiGraph::in_neighbor_slices`] with tails in ascending id
    /// order.
    pub fn sorted_in_neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.in_offsets[v];
        let hi = self.in_offsets[v + 1];
        (&self.sorted_in_nbrs[lo..hi], &self.sorted_in_eids[lo..hi])
    }

    /// Iterator over `(edge id, tail, head)` triples for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u, v))
    }

    /// The underlying undirected communication graph, together with the
    /// mapping from each directed edge id to its undirected edge id.
    ///
    /// Antiparallel pairs `(u, v)` / `(v, u)` map to the same undirected
    /// edge. Built in bulk: undirected edge ids are assigned in order of
    /// first occurrence, exactly as the old one-`ensure_edge`-per-edge
    /// loop did.
    pub fn underlying(&self) -> (Graph, Vec<EdgeId>) {
        let mut ids: HashMap<(VertexId, VertexId), EdgeId> =
            HashMap::with_capacity(self.num_edges());
        let mut undirected = Vec::with_capacity(self.num_edges());
        let mut map = Vec::with_capacity(self.num_edges());
        for &(u, v) in &self.edges {
            let key = (u.min(v), u.max(v));
            let id = *ids.entry(key).or_insert_with(|| {
                undirected.push(key);
                undirected.len() - 1
            });
            map.push(id);
        }
        (Graph::from_edges(self.num_vertices(), undirected), map)
    }
}

impl Default for DiGraph {
    fn default() -> Self {
        DiGraph::new(0)
    }
}

/// Equality is structural: same vertex count and same ordered edges in
/// the same id order (the CSR arrays are derived from those).
impl PartialEq for DiGraph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiGraph")
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_edges_are_ordered() {
        let mut g = DiGraph::new(2);
        let e = g.add_edge(0, 1);
        let f = g.add_edge(1, 0);
        assert_ne!(e, f);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.endpoints(e), (0, 1));
        assert_eq!(g.endpoints(f), (1, 0));
    }

    #[test]
    fn degrees() {
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.max_total_degree(), 2);
    }

    #[test]
    fn neighbors_keep_insertion_order() {
        let g = DiGraph::from_edges(4, [(1, 3), (1, 0), (2, 1), (1, 2), (0, 1)]);
        let outs: Vec<_> = g.out_neighbors(1).map(|(v, _)| v).collect();
        assert_eq!(outs, vec![3, 0, 2]);
        let ins: Vec<_> = g.in_neighbors(1).map(|(v, _)| v).collect();
        assert_eq!(ins, vec![2, 0]);
        for (e, u, v) in g.edges() {
            assert_eq!(g.edge_id(u, v), Some(e));
        }
        assert_eq!(g.edge_id(3, 1), None);
    }

    #[test]
    fn incremental_matches_bulk() {
        let edges = [(0, 1), (1, 0), (2, 1), (0, 2)];
        let bulk = DiGraph::from_edges(3, edges);
        let mut inc = DiGraph::new(3);
        for (u, v) in edges {
            inc.add_edge(u, v);
        }
        assert_eq!(bulk, inc);
        for v in bulk.vertices() {
            assert_eq!(
                bulk.out_neighbors(v).collect::<Vec<_>>(),
                inc.out_neighbors(v).collect::<Vec<_>>()
            );
            assert_eq!(
                bulk.in_neighbors(v).collect::<Vec<_>>(),
                inc.in_neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn underlying_merges_antiparallel() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let (u, map) = g.underlying();
        assert_eq!(u.num_edges(), 2);
        assert_eq!(map[0], map[1]);
        assert_ne!(map[0], map[2]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_ordered_pair() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
    }
}
