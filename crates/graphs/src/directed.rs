//! Simple directed graphs with stable edge identifiers.

use std::collections::BTreeMap;
use std::fmt;

use crate::{EdgeId, Graph, VertexId};

/// A simple directed graph.
///
/// Edges `(u, v)` are ordered pairs; `(u, v)` and `(v, u)` may both be
/// present, but parallel copies of the same ordered pair and self-loops
/// are rejected.
///
/// As in the paper, the *communication* graph of a directed problem
/// instance is its undirected underlying graph ([`DiGraph::underlying`]);
/// directions only constrain which paths may 2-span an edge.
///
/// # Example
///
/// ```
/// use dsa_graphs::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 0);
/// assert_eq!(g.out_degree(0), 1);
/// assert_eq!(g.in_degree(0), 1);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(1, 0));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct DiGraph {
    out_adj: Vec<Vec<(VertexId, EdgeId)>>,
    in_adj: Vec<Vec<(VertexId, EdgeId)>>,
    edges: Vec<(VertexId, VertexId)>,
    index: BTreeMap<(VertexId, VertexId), EdgeId>,
}

impl DiGraph {
    /// Creates a directed graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            edges: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Creates a directed graph from an edge iterator.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate ordered pairs, or out-of-range
    /// endpoints.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Adds the directed edge `(u, v)` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicates, or out-of-range endpoints.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        assert!(u != v, "self-loop ({u}, {v}) not allowed");
        assert!(
            u < self.num_vertices() && v < self.num_vertices(),
            "edge ({u}, {v}) out of range for {} vertices",
            self.num_vertices()
        );
        assert!(
            !self.index.contains_key(&(u, v)),
            "duplicate directed edge ({u}, {v})"
        );
        let id = self.edges.len();
        self.edges.push((u, v));
        self.index.insert((u, v), id);
        self.out_adj[u].push((v, id));
        self.in_adj[v].push((u, id));
        id
    }

    /// The id of the directed edge `(u, v)`, if present.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.index.get(&(u, v)).copied()
    }

    /// Whether the directed edge `(u, v)` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.index.contains_key(&(u, v))
    }

    /// The `(tail, head)` pair of edge `e`.
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v].len()
    }

    /// Maximum total degree (in + out) over all vertices.
    pub fn max_total_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.in_degree(v) + self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over `(head, edge id)` pairs of edges leaving `v`.
    pub fn out_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.out_adj[v].iter().copied()
    }

    /// Iterator over `(tail, edge id)` pairs of edges entering `v`.
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.in_adj[v].iter().copied()
    }

    /// Iterator over `(edge id, tail, head)` triples for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u, v))
    }

    /// The underlying undirected communication graph, together with the
    /// mapping from each directed edge id to its undirected edge id.
    ///
    /// Antiparallel pairs `(u, v)` / `(v, u)` map to the same undirected
    /// edge.
    pub fn underlying(&self) -> (Graph, Vec<EdgeId>) {
        let mut g = Graph::new(self.num_vertices());
        let mut map = Vec::with_capacity(self.num_edges());
        for &(u, v) in &self.edges {
            let (id, _) = g.ensure_edge(u, v);
            map.push(id);
        }
        (g, map)
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DiGraph")
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_edges_are_ordered() {
        let mut g = DiGraph::new(2);
        let e = g.add_edge(0, 1);
        let f = g.add_edge(1, 0);
        assert_ne!(e, f);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.endpoints(e), (0, 1));
        assert_eq!(g.endpoints(f), (1, 0));
    }

    #[test]
    fn degrees() {
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.max_total_degree(), 2);
    }

    #[test]
    fn underlying_merges_antiparallel() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        let (u, map) = g.underlying();
        assert_eq!(u.num_edges(), 2);
        assert_eq!(map[0], map[1]);
        assert_ne!(map[0], map[2]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_ordered_pair() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
    }
}
