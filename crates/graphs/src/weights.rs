//! Per-edge non-negative integer weights.

use crate::{EdgeId, Graph};

/// Non-negative integer weights attached to the edges of a [`Graph`] or
/// [`crate::DiGraph`] by edge id.
///
/// The weighted k-spanner problem of the paper uses non-negative costs
/// (weight 0 is meaningful — the lower-bound construction of Section 2.3
/// and the reduction graph of Section 3 both rely on zero-weight edges),
/// so weights are `u64`, not floats.
///
/// # Example
///
/// ```
/// use dsa_graphs::{Graph, EdgeWeights};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
/// let w = EdgeWeights::from_fn(g.num_edges(), |e| (e as u64) * 10);
/// assert_eq!(w.get(1), 10);
/// assert_eq!(w.total(), 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeWeights {
    weights: Vec<u64>,
}

impl EdgeWeights {
    /// All-`c` weights for `m` edges.
    pub fn constant(m: usize, c: u64) -> Self {
        EdgeWeights {
            weights: vec![c; m],
        }
    }

    /// Unit weights for every edge of `g` (reduces weighted algorithms to
    /// the unweighted problem).
    pub fn unit(g: &Graph) -> Self {
        Self::constant(g.num_edges(), 1)
    }

    /// Builds weights from a function of the edge id.
    pub fn from_fn<F: FnMut(EdgeId) -> u64>(m: usize, mut f: F) -> Self {
        EdgeWeights {
            weights: (0..m).map(&mut f).collect(),
        }
    }

    /// Builds weights from a vector, one entry per edge id.
    pub fn from_vec(weights: Vec<u64>) -> Self {
        EdgeWeights { weights }
    }

    /// Number of edges covered by this weighting.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the weighting covers zero edges.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn get(&self, e: EdgeId) -> u64 {
        self.weights[e]
    }

    /// Sets the weight of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn set(&mut self, e: EdgeId, w: u64) {
        self.weights[e] = w;
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Sum of weights over an id iterator.
    pub fn sum<I: IntoIterator<Item = EdgeId>>(&self, ids: I) -> u64 {
        ids.into_iter().map(|e| self.weights[e]).sum()
    }

    /// Maximum weight, or 0 if there are no edges.
    pub fn max(&self) -> u64 {
        self.weights.iter().copied().max().unwrap_or(0)
    }

    /// Minimum *positive* weight, if any edge has positive weight.
    pub fn min_positive(&self) -> Option<u64> {
        self.weights.iter().copied().filter(|&w| w > 0).min()
    }

    /// The ratio `W = w_max / w_min` between the extreme positive
    /// weights, used in the round bound of Theorem 4.12. Returns `None`
    /// when no edge has positive weight.
    pub fn weight_spread(&self) -> Option<u64> {
        let max_pos = self.weights.iter().copied().filter(|&w| w > 0).max()?;
        let min_pos = self.min_positive()?;
        Some(max_pos / min_pos)
    }

    /// Iterator over `(edge id, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EdgeId, u64)> + '_ {
        self.weights.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_extremes() {
        let w = EdgeWeights::from_vec(vec![0, 5, 3, 0, 10]);
        assert_eq!(w.total(), 18);
        assert_eq!(w.max(), 10);
        assert_eq!(w.min_positive(), Some(3));
        assert_eq!(w.weight_spread(), Some(3));
        assert_eq!(w.sum([1, 2]), 8);
    }

    #[test]
    fn all_zero_has_no_positive_min() {
        let w = EdgeWeights::constant(4, 0);
        assert_eq!(w.min_positive(), None);
        assert_eq!(w.weight_spread(), None);
    }

    #[test]
    fn unit_matches_graph() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let w = EdgeWeights::unit(&g);
        assert_eq!(w.len(), 2);
        assert_eq!(w.total(), 2);
    }
}
