//! Simple undirected graphs with stable edge identifiers.

use std::collections::HashSet;
use std::fmt;

use crate::{EdgeId, VertexId};

/// A simple undirected graph in flat CSR (compressed sparse row) form.
///
/// Vertices are dense integers `0..n`; edges get dense identifiers
/// `0..m` in insertion order, so algorithms can attach per-edge data
/// (weights, coverage bits, spanner membership) in parallel vectors or
/// [`crate::EdgeSet`]s.
///
/// Adjacency lives in three contiguous arrays — `offsets` slicing
/// `nbrs`/`eids` per vertex — so degree is O(1) and a neighbor scan is
/// one cache-linear walk. A second, per-vertex-sorted copy of the
/// neighbor arrays backs O(log deg) [`Graph::edge_id`] lookup (binary
/// search replaces the old `BTreeMap` edge index) and merge-style set
/// intersections via [`Graph::sorted_neighbor_slices`]. The
/// insertion-order arrays are the ones [`Graph::neighbors`] iterates,
/// so the representation change is invisible to every order-sensitive
/// consumer.
///
/// Self-loops and parallel edges are rejected — the paper works with
/// simple graphs throughout.
///
/// Bulk construction via [`Graph::from_edges`] is O(n + m log Δ).
/// [`Graph::add_edge`] on an existing graph rebuilds the CSR arrays,
/// which is O(n + m) per call: fine for the small incremental builders
/// in tests and gadget constructions, wrong for hot loops — build hot
/// graphs in bulk.
///
/// # Example
///
/// ```
/// use dsa_graphs::Graph;
///
/// let mut g = Graph::new(3);
/// let e01 = g.add_edge(0, 1);
/// let e12 = g.add_edge(1, 2);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.edge_id(1, 0), Some(e01));
/// assert_eq!(g.endpoints(e12), (1, 2));
/// ```
#[derive(Clone, Eq)]
pub struct Graph {
    /// Number of vertices.
    n: usize,
    /// `edges[e]` is the pair of endpoints, with the smaller id first.
    edges: Vec<(VertexId, VertexId)>,
    /// `offsets[v]..offsets[v + 1]` slices `nbrs`/`eids` (and their
    /// sorted copies) for vertex `v`; `offsets.len() == n + 1`.
    offsets: Vec<usize>,
    /// Neighbor vertices, per vertex in edge-insertion order.
    nbrs: Vec<VertexId>,
    /// Edge id of each `nbrs` entry.
    eids: Vec<EdgeId>,
    /// `nbrs` with each per-vertex slice sorted by neighbor id.
    sorted_nbrs: Vec<VertexId>,
    /// Edge id of each `sorted_nbrs` entry.
    sorted_eids: Vec<EdgeId>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            offsets: vec![0; n + 1],
            nbrs: Vec::new(),
            eids: Vec::new(),
            sorted_nbrs: Vec::new(),
            sorted_eids: Vec::new(),
        }
    }

    /// Creates a graph with `n` vertices from an edge iterator, in one
    /// bulk CSR build — the right constructor for anything
    /// performance-sensitive.
    ///
    /// # Panics
    ///
    /// Panics if any edge is a self-loop, a duplicate, or references a
    /// vertex `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = Graph::new(n);
        let mut seen = HashSet::new();
        for (u, v) in edges {
            assert!(u != v, "self-loop {u}-{v} not allowed in a simple graph");
            assert!(u < n && v < n, "edge {u}-{v} out of range for {n} vertices");
            assert!(
                seen.insert((u.min(v), u.max(v))),
                "duplicate edge {u}-{v} not allowed in a simple graph"
            );
            g.edges.push((u.min(v), u.max(v)));
        }
        g.rebuild();
        g
    }

    /// Rebuilds the CSR arrays from `self.edges`. Adjacency order is
    /// the old push order by construction: scanning edges in id order
    /// appends each endpoint to the other's list exactly as the
    /// incremental builder did.
    fn rebuild(&mut self) {
        let n = self.n;
        let m = self.edges.len();
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for &(u, v) in &self.edges {
            self.offsets[u + 1] += 1;
            self.offsets[v + 1] += 1;
        }
        for v in 0..n {
            self.offsets[v + 1] += self.offsets[v];
        }
        let mut cursor: Vec<usize> = self.offsets[..n].to_vec();
        self.nbrs.clear();
        self.nbrs.resize(2 * m, 0);
        self.eids.clear();
        self.eids.resize(2 * m, 0);
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            self.nbrs[cursor[u]] = v;
            self.eids[cursor[u]] = e;
            cursor[u] += 1;
            self.nbrs[cursor[v]] = u;
            self.eids[cursor[v]] = e;
            cursor[v] += 1;
        }
        // Sorted copies: neighbor ids are unique per vertex (simple
        // graph), so sorting (nbr, eid) pairs sorts by neighbor.
        let mut pairs: Vec<(VertexId, EdgeId)> = self
            .nbrs
            .iter()
            .copied()
            .zip(self.eids.iter().copied())
            .collect();
        for v in 0..n {
            pairs[self.offsets[v]..self.offsets[v + 1]].sort_unstable();
        }
        self.sorted_nbrs.clear();
        self.sorted_eids.clear();
        self.sorted_nbrs.extend(pairs.iter().map(|&(x, _)| x));
        self.sorted_eids.extend(pairs.iter().map(|&(_, e)| e));
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Adds an edge `{u, v}` and returns its id.
    ///
    /// Rebuilds the CSR arrays: O(n + m) per call. Use
    /// [`Graph::from_edges`] for bulk construction.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate edges, or out-of-range endpoints.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        assert!(u != v, "self-loop {u}-{v} not allowed in a simple graph");
        assert!(
            u < self.n && v < self.n,
            "edge {u}-{v} out of range for {} vertices",
            self.n
        );
        assert!(
            self.edge_id(u, v).is_none(),
            "duplicate edge {u}-{v} not allowed in a simple graph"
        );
        let id = self.edges.len();
        self.edges.push((u.min(v), u.max(v)));
        self.rebuild();
        id
    }

    /// Adds an edge if not already present; returns `(id, inserted)`.
    pub fn ensure_edge(&mut self, u: VertexId, v: VertexId) -> (EdgeId, bool) {
        match self.edge_id(u, v) {
            Some(id) => (id, false),
            None => (self.add_edge(u, v), true),
        }
    }

    /// The id of the edge `{u, v}`, if present: a binary search over
    /// the sorted neighbor slice of the lower-degree endpoint.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let lo = self.offsets[a];
        let hi = self.offsets[a + 1];
        self.sorted_nbrs[lo..hi]
            .binary_search(&b)
            .ok()
            .map(|i| self.sorted_eids[lo + i])
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// The endpoints of edge `e`, smaller vertex first.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e]
    }

    /// Given edge `e` and one endpoint, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.edges[e];
        if v == a {
            b
        } else if v == b {
            a
        } else {
            panic!("vertex {v} is not an endpoint of edge {e} = {{{a}, {b}}}")
        }
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Iterator over `(neighbor, edge id)` pairs of `v`, in edge
    /// insertion order.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (nbrs, eids) = self.neighbor_slices(v);
        nbrs.iter().copied().zip(eids.iter().copied())
    }

    /// Iterator over the neighbor vertices of `v`, in edge insertion
    /// order.
    pub fn neighbor_vertices(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.neighbor_slices(v).0.iter().copied()
    }

    /// The contiguous `(neighbors, edge ids)` slices of `v`, in edge
    /// insertion order — the zero-cost form of [`Graph::neighbors`]
    /// for cache-linear hot loops.
    pub fn neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.offsets[v];
        let hi = self.offsets[v + 1];
        (&self.nbrs[lo..hi], &self.eids[lo..hi])
    }

    /// The contiguous `(neighbors, edge ids)` slices of `v`, sorted by
    /// neighbor id — the form merge-style intersections and binary
    /// searches want.
    pub fn sorted_neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.offsets[v];
        let hi = self.offsets[v + 1];
        (&self.sorted_nbrs[lo..hi], &self.sorted_eids[lo..hi])
    }

    /// Iterator over `(edge id, u, v)` triples for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u, v))
    }

    /// True if `x` is adjacent to both endpoints of edge `e` — i.e. `x`
    /// can 2-span `e` with a star centered at `x`.
    pub fn is_common_neighbor(&self, x: VertexId, e: EdgeId) -> bool {
        let (u, v) = self.endpoints(e);
        self.has_edge(x, u) && self.has_edge(x, v)
    }
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

/// Equality is structural: same vertex count and same edges in the
/// same id order. The CSR arrays are a pure function of those, so
/// comparing them would be redundant work.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_id(3, 2), g.edge_id(2, 3));
        let e = g.edge_id(1, 2).unwrap();
        assert_eq!(g.endpoints(e), (1, 2));
        assert_eq!(g.other_endpoint(e, 1), 2);
        assert_eq!(g.other_endpoint(e, 2), 1);
    }

    #[test]
    fn neighbors_list_both_directions() {
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]);
        let n0: Vec<_> = g.neighbor_vertices(0).collect();
        assert_eq!(n0, vec![1, 2]);
        let n1: Vec<_> = g.neighbor_vertices(1).collect();
        assert_eq!(n1, vec![0]);
    }

    #[test]
    fn neighbors_are_in_insertion_order() {
        // Edges incident to 2 arrive as 2-5, 2-1, 2-4, 2-3: the
        // insertion-order view must preserve that, the sorted view
        // must not.
        let g = Graph::from_edges(6, [(2, 5), (2, 1), (0, 1), (2, 4), (3, 2)]);
        let ins: Vec<_> = g.neighbor_vertices(2).collect();
        assert_eq!(ins, vec![5, 1, 4, 3]);
        let (sorted, eids) = g.sorted_neighbor_slices(2);
        assert_eq!(sorted, &[1, 3, 4, 5]);
        for (&x, &e) in sorted.iter().zip(eids) {
            assert_eq!(g.edge_id(2, x), Some(e));
        }
    }

    #[test]
    fn slices_match_iterators() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (1, 3), (4, 1), (0, 4)]);
        for v in g.vertices() {
            let (nbrs, eids) = g.neighbor_slices(v);
            let pairs: Vec<_> = g.neighbors(v).collect();
            assert_eq!(nbrs.len(), g.degree(v));
            for (i, &(x, e)) in pairs.iter().enumerate() {
                assert_eq!((nbrs[i], eids[i]), (x, e));
            }
        }
    }

    #[test]
    fn ensure_edge_is_idempotent() {
        let mut g = Graph::new(3);
        let (e, fresh) = g.ensure_edge(0, 1);
        assert!(fresh);
        let (e2, fresh2) = g.ensure_edge(1, 0);
        assert!(!fresh2);
        assert_eq!(e, e2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn incremental_matches_bulk() {
        let edges = [(0, 1), (1, 2), (0, 2), (3, 1), (4, 0), (2, 4)];
        let bulk = Graph::from_edges(5, edges);
        let mut inc = Graph::new(5);
        for (u, v) in edges {
            inc.add_edge(u, v);
        }
        assert_eq!(bulk, inc);
        for v in bulk.vertices() {
            assert_eq!(
                bulk.neighbors(v).collect::<Vec<_>>(),
                inc.neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn common_neighbor_detection() {
        // Triangle 0-1-2 plus pendant 3 on 0.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)]);
        let e12 = g.edge_id(1, 2).unwrap();
        assert!(g.is_common_neighbor(0, e12));
        assert!(!g.is_common_neighbor(3, e12));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_in_bulk() {
        Graph::from_edges(3, [(0, 1), (1, 2), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
