//! Simple undirected graphs with stable edge identifiers.

use std::collections::BTreeMap;
use std::fmt;

use crate::{EdgeId, VertexId};

/// A simple undirected graph.
///
/// Vertices are dense integers `0..n`; edges get dense identifiers
/// `0..m` in insertion order, so algorithms can attach per-edge data
/// (weights, coverage bits, spanner membership) in parallel vectors or
/// [`crate::EdgeSet`]s.
///
/// Self-loops and parallel edges are rejected — the paper works with
/// simple graphs throughout.
///
/// # Example
///
/// ```
/// use dsa_graphs::Graph;
///
/// let mut g = Graph::new(3);
/// let e01 = g.add_edge(0, 1);
/// let e12 = g.add_edge(1, 2);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.edge_id(1, 0), Some(e01));
/// assert_eq!(g.endpoints(e12), (1, 2));
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Graph {
    /// `adj[v]` lists `(neighbor, edge id)` pairs in insertion order.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
    /// `edges[e]` is the pair of endpoints, with the smaller id first.
    edges: Vec<(VertexId, VertexId)>,
    /// Lookup from normalized endpoint pair to edge id.
    index: BTreeMap<(VertexId, VertexId), EdgeId>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// Creates a graph with `n` vertices from an edge iterator.
    ///
    /// # Panics
    ///
    /// Panics if any edge is a self-loop, a duplicate, or references a
    /// vertex `>= n`.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices()
    }

    /// Adds an edge `{u, v}` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, duplicate edges, or out-of-range endpoints.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        assert!(u != v, "self-loop {u}-{v} not allowed in a simple graph");
        assert!(
            u < self.num_vertices() && v < self.num_vertices(),
            "edge {u}-{v} out of range for {} vertices",
            self.num_vertices()
        );
        let key = (u.min(v), u.max(v));
        assert!(
            !self.index.contains_key(&key),
            "duplicate edge {u}-{v} not allowed in a simple graph"
        );
        let id = self.edges.len();
        self.edges.push(key);
        self.index.insert(key, id);
        self.adj[u].push((v, id));
        self.adj[v].push((u, id));
        id
    }

    /// Adds an edge if not already present; returns `(id, inserted)`.
    pub fn ensure_edge(&mut self, u: VertexId, v: VertexId) -> (EdgeId, bool) {
        match self.edge_id(u, v) {
            Some(id) => (id, false),
            None => (self.add_edge(u, v), true),
        }
    }

    /// The id of the edge `{u, v}`, if present.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        self.index.get(&(u.min(v), u.max(v))).copied()
    }

    /// Whether the edge `{u, v}` is present.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// The endpoints of edge `e`, smaller vertex first.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e]
    }

    /// Given edge `e` and one endpoint, returns the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, v: VertexId) -> VertexId {
        let (a, b) = self.edges[e];
        if v == a {
            b
        } else if v == b {
            a
        } else {
            panic!("vertex {v} is not an endpoint of edge {e} = {{{a}, {b}}}")
        }
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree Δ of the graph (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterator over `(neighbor, edge id)` pairs of `v`.
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.adj[v].iter().copied()
    }

    /// Iterator over the neighbor vertices of `v`.
    pub fn neighbor_vertices(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj[v].iter().map(|&(u, _)| u)
    }

    /// Iterator over `(edge id, u, v)` triples for all edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges.iter().enumerate().map(|(e, &(u, v))| (e, u, v))
    }

    /// True if `x` is adjacent to both endpoints of edge `e` — i.e. `x`
    /// can 2-span `e` with a star centered at `x`.
    pub fn is_common_neighbor(&self, x: VertexId, e: EdgeId) -> bool {
        let (u, v) = self.endpoints(e);
        self.has_edge(x, u) && self.has_edge(x, v)
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .field("edges", &self.edges)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_id(3, 2), g.edge_id(2, 3));
        let e = g.edge_id(1, 2).unwrap();
        assert_eq!(g.endpoints(e), (1, 2));
        assert_eq!(g.other_endpoint(e, 1), 2);
        assert_eq!(g.other_endpoint(e, 2), 1);
    }

    #[test]
    fn neighbors_list_both_directions() {
        let g = Graph::from_edges(3, [(0, 1), (0, 2)]);
        let n0: Vec<_> = g.neighbor_vertices(0).collect();
        assert_eq!(n0, vec![1, 2]);
        let n1: Vec<_> = g.neighbor_vertices(1).collect();
        assert_eq!(n1, vec![0]);
    }

    #[test]
    fn ensure_edge_is_idempotent() {
        let mut g = Graph::new(3);
        let (e, fresh) = g.ensure_edge(0, 1);
        assert!(fresh);
        let (e2, fresh2) = g.ensure_edge(1, 0);
        assert!(!fresh2);
        assert_eq!(e, e2);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn common_neighbor_detection() {
        // Triangle 0-1-2 plus pendant 3 on 0.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)]);
        let e12 = g.edge_id(1, 2).unwrap();
        assert!(g.is_common_neighbor(0, e12));
        assert!(!g.is_common_neighbor(3, e12));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }
}
