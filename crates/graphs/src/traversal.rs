//! Breadth-first traversal, distances, connectivity, and the
//! bounded-stretch reachability queries the spanner verifiers rely on.

use std::collections::VecDeque;

use crate::{DiGraph, EdgeId, EdgeSet, Graph, VertexId};

/// Distance labels produced by a BFS; `None` means unreachable.
pub type Distances = Vec<Option<usize>>;

/// BFS distances from `source` in `g`.
pub fn bfs_distances(g: &Graph, source: VertexId) -> Distances {
    bfs_distances_in(g, source, None, usize::MAX)
}

/// BFS distances from `source` using only edges in `allowed`
/// (or all edges when `allowed` is `None`), exploring up to `max_depth`.
pub fn bfs_distances_in(
    g: &Graph,
    source: VertexId,
    allowed: Option<&EdgeSet>,
    max_depth: usize,
) -> Distances {
    let mut dist: Distances = vec![None; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v].expect("queued vertices have distances");
        if d == max_depth {
            continue;
        }
        for (u, e) in g.neighbors(v) {
            if allowed.is_some_and(|set| !set.contains(e)) {
                continue;
            }
            if dist[u].is_none() {
                dist[u] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Directed BFS distances from `source` following edge directions,
/// using only edges in `allowed` (or all edges when `None`), exploring
/// up to `max_depth`.
pub fn bfs_distances_directed(
    g: &DiGraph,
    source: VertexId,
    allowed: Option<&EdgeSet>,
    max_depth: usize,
) -> Distances {
    let mut dist: Distances = vec![None; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source] = Some(0);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v].expect("queued vertices have distances");
        if d == max_depth {
            continue;
        }
        for (u, e) in g.out_neighbors(v) {
            if allowed.is_some_and(|set| !set.contains(e)) {
                continue;
            }
            if dist[u].is_none() {
                dist[u] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Whether `g` is connected (the empty graph and 1-vertex graph are).
pub fn is_connected(g: &Graph) -> bool {
    if g.num_vertices() <= 1 {
        return true;
    }
    let dist = bfs_distances(g, 0);
    dist.iter().all(Option::is_some)
}

/// Whether there is a path of length at most `k` between the endpoints
/// of edge `e` that uses only edges of `h` — the paper's notion of `e`
/// being *covered* by the subset `h` (Section 1.5).
///
/// Note that `e ∈ h` trivially covers `e` (a path of length 1).
pub fn covers_edge(g: &Graph, h: &EdgeSet, e: EdgeId, k: usize) -> bool {
    let (u, v) = g.endpoints(e);
    let dist = bfs_distances_in(g, u, Some(h), k);
    matches!(dist[v], Some(d) if d <= k)
}

/// Directed analogue of [`covers_edge`]: whether `h` contains a directed
/// path of length at most `k` from the tail of `e` to its head.
pub fn covers_edge_directed(g: &DiGraph, h: &EdgeSet, e: EdgeId, k: usize) -> bool {
    let (u, v) = g.endpoints(e);
    let dist = bfs_distances_directed(g, u, Some(h), k);
    matches!(dist[v], Some(d) if d <= k)
}

/// The ball `B_d(v)`: all vertices within distance `d` of `v`,
/// in increasing distance order.
pub fn ball(g: &Graph, v: VertexId, d: usize) -> Vec<VertexId> {
    let dist = bfs_distances_in(g, v, None, d);
    let mut out: Vec<(usize, VertexId)> = dist
        .iter()
        .enumerate()
        .filter_map(|(u, &dd)| dd.map(|dd| (dd, u)))
        .collect();
    out.sort_unstable();
    out.into_iter().map(|(_, u)| u).collect()
}

/// Eccentricity-based diameter of the subgraph induced by `vertices`
/// *measured in `g`* (i.e. a weak diameter). Returns `None` if some pair
/// of the given vertices is disconnected in `g`.
pub fn weak_diameter(g: &Graph, vertices: &[VertexId]) -> Option<usize> {
    let mut diam = 0;
    for &v in vertices {
        let dist = bfs_distances(g, v);
        for &u in vertices {
            diam = diam.max(dist[u]?);
        }
    }
    Some(diam)
}

/// All-pairs shortest-path distances by repeated BFS. Intended for the
/// small graphs used in tests and exact baselines.
pub fn all_pairs_distances(g: &Graph) -> Vec<Distances> {
    g.vertices().map(|v| bfs_distances(g, v)).collect()
}

/// Connected components of `g`; each component is a sorted vertex list,
/// and components appear in order of their smallest vertex.
pub fn connected_components(g: &Graph) -> Vec<Vec<VertexId>> {
    let mut seen = vec![false; g.num_vertices()];
    let mut comps = Vec::new();
    for s in g.vertices() {
        if seen[s] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            comp.push(v);
            for (u, _) in g.neighbors(v) {
                if !seen[u] {
                    seen[u] = true;
                    queue.push_back(u);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_depth_limit() {
        let g = path_graph(5);
        let d = bfs_distances_in(&g, 0, None, 2);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), None, None]);
    }

    #[test]
    fn bfs_respects_allowed_set() {
        let g = path_graph(4);
        let mut allowed = EdgeSet::new(g.num_edges());
        allowed.insert(g.edge_id(0, 1).unwrap());
        // Edge 1-2 missing: 2 and 3 unreachable.
        let d = bfs_distances_in(&g, 0, Some(&allowed), usize::MAX);
        assert_eq!(d, vec![Some(0), Some(1), None, None]);
    }

    #[test]
    fn covers_edge_via_two_path() {
        // Triangle 0-1-2.
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let mut h = EdgeSet::new(3);
        h.insert(g.edge_id(0, 1).unwrap());
        h.insert(g.edge_id(1, 2).unwrap());
        let e02 = g.edge_id(0, 2).unwrap();
        assert!(covers_edge(&g, &h, e02, 2));
        assert!(!covers_edge(&g, &h, e02, 1));
        // An edge in h covers itself.
        assert!(covers_edge(&g, &h, g.edge_id(0, 1).unwrap(), 1));
    }

    #[test]
    fn directed_coverage_follows_directions() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let mut h = EdgeSet::new(3);
        h.insert(g.edge_id(0, 1).unwrap());
        h.insert(g.edge_id(1, 2).unwrap());
        let e02 = g.edge_id(0, 2).unwrap();
        assert!(covers_edge_directed(&g, &h, e02, 2));
        // Reverse edge is not covered: no directed path 2 -> 0.
        let mut rev = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let e20 = rev.add_edge(2, 0);
        let mut h2 = EdgeSet::new(3);
        h2.insert(rev.edge_id(0, 1).unwrap());
        h2.insert(rev.edge_id(1, 2).unwrap());
        assert!(!covers_edge_directed(&rev, &h2, e20, 5));
    }

    #[test]
    fn connectivity_and_components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        assert!(!is_connected(&g));
        let comps = connected_components(&g);
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
        assert!(is_connected(&path_graph(4)));
    }

    #[test]
    fn balls_and_diameter() {
        let g = path_graph(6);
        assert_eq!(ball(&g, 2, 1), vec![2, 1, 3]);
        assert_eq!(weak_diameter(&g, &[0, 5]), Some(5));
        assert_eq!(weak_diameter(&g, &[1, 3]), Some(2));
        let disc = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(weak_diameter(&disc, &[0, 2]), None);
    }
}
