//! Plain-text edge-list serialization, so workloads and results can be
//! exchanged with other tools.
//!
//! Format: one `# n <count>` header line, then one `u v [w]` line per
//! edge (whitespace separated, `#`-comments and blank lines ignored).
//! Directed graphs use the same format; direction is tail then head.
//!
//! Parsing *normalizes* through [`crate::canon`]: self-loop lines are
//! dropped and repeated edges keep only their first occurrence (first
//! weight wins), so a parsed graph always satisfies the simple-graph
//! invariants and its [`crate::canon::graph_hash`] agrees with the
//! hash of any other spelling of the same edge set.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::num::ParseIntError;

use crate::{canon, DiGraph, EdgeWeights, Graph, VertexId};

/// Errors from [`parse_edge_list`] / [`parse_directed_edge_list`].
#[derive(Debug, PartialEq, Eq)]
pub enum ParseGraphError {
    /// The `# n <count>` header is missing or malformed.
    MissingHeader,
    /// A data line did not have 2 or 3 fields.
    BadLine(usize),
    /// A field was not an integer.
    BadNumber(usize),
    /// An endpoint was `>=` the header's vertex count.
    VertexOutOfRange(usize),
    /// Edge lines mixed weighted and unweighted entries.
    InconsistentWeights,
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::MissingHeader => write!(f, "missing `# n <count>` header"),
            ParseGraphError::BadLine(l) => write!(f, "malformed edge on line {l}"),
            ParseGraphError::BadNumber(l) => write!(f, "invalid number on line {l}"),
            ParseGraphError::VertexOutOfRange(l) => {
                write!(f, "vertex id out of range on line {l}")
            }
            ParseGraphError::InconsistentWeights => {
                write!(f, "some edges have weights and some do not")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {}

impl From<(usize, ParseIntError)> for ParseGraphError {
    fn from((line, _): (usize, ParseIntError)) -> Self {
        ParseGraphError::BadNumber(line)
    }
}

/// Serializes a graph (optionally weighted) as an edge list.
pub fn to_edge_list(g: &Graph, w: Option<&EdgeWeights>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# n {}", g.num_vertices());
    for (e, u, v) in g.edges() {
        match w {
            Some(w) => {
                let _ = writeln!(out, "{u} {v} {}", w.get(e));
            }
            None => {
                let _ = writeln!(out, "{u} {v}");
            }
        }
    }
    out
}

/// Serializes a directed graph as an edge list (tail head per line).
pub fn to_directed_edge_list(g: &DiGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# n {}", g.num_vertices());
    for (_, u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parsed data rows: (line number, numeric fields).
type DataRows = Vec<(usize, Vec<u64>)>;

fn parse_lines(text: &str) -> Result<(usize, DataRows), ParseGraphError> {
    let mut n: Option<usize> = None;
    let mut rows = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if n.is_none() && fields.len() == 2 && fields[0] == "n" {
                n = Some(fields[1].parse().map_err(|e| (line_no, e))?);
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 2 && fields.len() != 3 {
            return Err(ParseGraphError::BadLine(line_no));
        }
        let nums: Vec<u64> = fields
            .iter()
            .map(|f| f.parse::<u64>().map_err(|e| (line_no, e).into()))
            .collect::<Result<_, ParseGraphError>>()?;
        rows.push((line_no, nums));
    }
    let n = n.ok_or(ParseGraphError::MissingHeader)?;
    Ok((n, rows))
}

fn endpoints_checked(
    n: usize,
    line: usize,
    nums: &[u64],
) -> Result<(VertexId, VertexId), ParseGraphError> {
    // Range-check in u64 before narrowing: casting first would wrap
    // huge ids on 32-bit hosts and silently accept a wrong edge.
    if nums[0] >= n as u64 || nums[1] >= n as u64 {
        return Err(ParseGraphError::VertexOutOfRange(line));
    }
    Ok((nums[0] as usize, nums[1] as usize))
}

/// Parses an undirected edge list; returns the graph and, when every
/// line carries a third field, the weights.
///
/// Self-loop lines are skipped and repeated edges (in either endpoint
/// order) keep only their first occurrence, so the result is always a
/// valid simple graph whose canonical hash matches any other spelling
/// of the same edge set.
pub fn parse_edge_list(text: &str) -> Result<(Graph, Option<EdgeWeights>), ParseGraphError> {
    let (n, rows) = parse_lines(text)?;
    build_graph(n, rows.iter().map(|(line, nums)| (*line, nums.as_slice())))
}

/// Parses a directed edge list, with the same normalization as
/// [`parse_edge_list`] (directed: `(u, v)` and `(v, u)` are distinct).
pub fn parse_directed_edge_list(text: &str) -> Result<DiGraph, ParseGraphError> {
    let (n, rows) = parse_lines(text)?;
    build_digraph(n, rows.iter().map(|(line, nums)| (*line, nums.as_slice())))
}

/// Builds a normalized undirected graph from numeric rows (`[u, v]` or
/// `[u, v, w]` each) — the non-text entry point to exactly the
/// normalization [`parse_edge_list`] applies, so the HTTP/JSON facade
/// and the text protocol can never drift. Row `i` is reported as line
/// `i + 1` in errors.
pub fn edge_rows_to_graph(
    n: usize,
    rows: &[Vec<u64>],
) -> Result<(Graph, Option<EdgeWeights>), ParseGraphError> {
    build_graph(
        n,
        rows.iter().enumerate().map(|(i, r)| (i + 1, r.as_slice())),
    )
}

/// Directed counterpart of [`edge_rows_to_graph`] (rows are
/// `[tail, head]`).
pub fn edge_rows_to_digraph(n: usize, rows: &[Vec<u64>]) -> Result<DiGraph, ParseGraphError> {
    build_digraph(
        n,
        rows.iter().enumerate().map(|(i, r)| (i + 1, r.as_slice())),
    )
}

fn build_graph<'a>(
    n: usize,
    rows: impl Iterator<Item = (usize, &'a [u64])>,
) -> Result<(Graph, Option<EdgeWeights>), ParseGraphError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut seen: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
    let mut weights: Vec<u64> = Vec::new();
    let mut any_weight = false;
    let mut any_plain = false;
    for (line, nums) in rows {
        if nums.len() != 2 && nums.len() != 3 {
            return Err(ParseGraphError::BadLine(line));
        }
        let (u, v) = endpoints_checked(n, line, nums)?;
        let Some(key) = canon::undirected_key(u, v) else {
            continue; // self-loop
        };
        if !seen.insert(key) {
            continue; // duplicate edge: first occurrence wins
        }
        // Weight consistency is judged over the *surviving* lines:
        // a dropped self-loop or duplicate cannot poison the parse.
        if nums.len() == 3 {
            any_weight = true;
        } else {
            any_plain = true;
        }
        edges.push((u, v));
        if nums.len() == 3 {
            weights.push(nums[2]);
        }
    }
    if any_weight && any_plain {
        return Err(ParseGraphError::InconsistentWeights);
    }
    let w = any_weight.then(|| EdgeWeights::from_vec(weights));
    Ok((Graph::from_edges(n, edges), w))
}

fn build_digraph<'a>(
    n: usize,
    rows: impl Iterator<Item = (usize, &'a [u64])>,
) -> Result<DiGraph, ParseGraphError> {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut seen: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
    for (line, nums) in rows {
        if nums.len() != 2 && nums.len() != 3 {
            return Err(ParseGraphError::BadLine(line));
        }
        let (u, v) = endpoints_checked(n, line, nums)?;
        let Some(key) = canon::directed_key(u, v) else {
            continue;
        };
        if !seen.insert(key) {
            continue;
        }
        edges.push((u, v));
    }
    Ok(DiGraph::from_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_unweighted() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnp_connected(20, 0.2, &mut rng);
        let text = to_edge_list(&g, None);
        let (parsed, w) = parse_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
        assert!(w.is_none());
    }

    #[test]
    fn roundtrip_weighted() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnp_connected(15, 0.25, &mut rng);
        let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
        let text = to_edge_list(&g, Some(&w));
        let (parsed, parsed_w) = parse_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
        assert_eq!(parsed_w, Some(w));
    }

    #[test]
    fn roundtrip_directed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_digraph_connected(12, 0.15, &mut rng);
        let text = to_directed_edge_list(&g);
        let parsed = parse_directed_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# n 3\n\n# a comment\n0 1\n1 2\n";
        let (g, _) = parse_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn row_builders_agree_with_text_parsers() {
        // The row builders are the same normalization as the text
        // parsers: same graph, same edge ids, same errors.
        let rows = |list: &[&[u64]]| -> Vec<Vec<u64>> { list.iter().map(|r| r.to_vec()).collect() };
        let noisy = rows(&[&[0, 1], &[1, 1], &[1, 2], &[1, 0], &[2, 3], &[3, 2]]);
        let (from_rows, w) = edge_rows_to_graph(4, &noisy).unwrap();
        let (from_text, _) = parse_edge_list("# n 4\n0 1\n1 1\n1 2\n1 0\n2 3\n3 2\n").unwrap();
        assert_eq!(from_rows, from_text);
        assert!(w.is_none());
        let (weighted, w) = edge_rows_to_graph(3, &rows(&[&[0, 1, 5], &[1, 2, 7]])).unwrap();
        assert_eq!(weighted.num_edges(), 2);
        assert_eq!(w, Some(EdgeWeights::from_vec(vec![5, 7])));
        let d = edge_rows_to_digraph(3, &rows(&[&[0, 1], &[1, 0], &[0, 1]])).unwrap();
        assert_eq!(d.num_edges(), 2, "directed keeps both orientations");
        // Errors carry 1-based row positions, like text line numbers.
        assert_eq!(
            edge_rows_to_graph(3, &rows(&[&[0, 1], &[0]])),
            Err(ParseGraphError::BadLine(2))
        );
        assert_eq!(
            edge_rows_to_graph(3, &rows(&[&[0, 5]])),
            Err(ParseGraphError::VertexOutOfRange(1))
        );
        assert_eq!(
            edge_rows_to_graph(3, &rows(&[&[0, 1, 9], &[1, 2]])),
            Err(ParseGraphError::InconsistentWeights)
        );
    }

    #[test]
    fn self_loops_and_duplicates_are_normalized_away() {
        // The same graph three ways: clean, noisy, and reordered.
        let clean = "# n 4\n0 1\n1 2\n2 3\n";
        let noisy = "# n 4\n0 1\n1 1\n1 2\n1 0\n2 3\n3 2\n";
        let reordered = "# n 4\n2 3\n1 2\n1 0\n";
        let (g_clean, _) = parse_edge_list(clean).unwrap();
        let (g_noisy, _) = parse_edge_list(noisy).unwrap();
        let (g_reordered, _) = parse_edge_list(reordered).unwrap();
        // First occurrences in order: the noisy parse equals the clean
        // one edge-id for edge-id.
        assert_eq!(g_noisy, g_clean);
        // Parsing and hashing agree: every spelling hashes alike.
        let h = canon::graph_hash(&g_clean);
        assert_eq!(canon::graph_hash(&g_noisy), h);
        assert_eq!(canon::graph_hash(&g_reordered), h);
    }

    #[test]
    fn weighted_duplicates_keep_first_weight() {
        let text = "# n 3\n0 1 5\n1 0 9\n1 2 7\n";
        let (g, w) = parse_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 2);
        let w = w.unwrap();
        assert_eq!(w.get(g.edge_id(0, 1).unwrap()), 5);
        assert_eq!(w.get(g.edge_id(1, 2).unwrap()), 7);
    }

    #[test]
    fn dropped_lines_do_not_poison_weight_consistency() {
        // The unweighted self-loop and the unweighted duplicate are
        // both dropped by normalization, so the surviving edge set is
        // uniformly weighted and must parse.
        let text = "# n 3\n0 1 5\n1 1\n0 1\n1 2 7\n";
        let (g, w) = parse_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(w.unwrap().get(g.edge_id(0, 1).unwrap()), 5);
        // Inconsistency among *surviving* lines still errors.
        assert_eq!(
            parse_edge_list("# n 3\n0 1 5\n1 2\n"),
            Err(ParseGraphError::InconsistentWeights)
        );
    }

    #[test]
    fn directed_normalization_keeps_antiparallel_pairs() {
        let text = "# n 3\n0 1\n1 0\n0 0\n0 1\n";
        let g = parse_directed_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn roundtrip_is_canonical_hash_stable() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::gnp_connected(18, 0.3, &mut rng);
        let w = gen::random_weights(g.num_edges(), 1, 9, &mut rng);
        // serialize -> parse -> serialize is a fixed point, and every
        // stage agrees on the canonical hash.
        let text = to_edge_list(&g, Some(&w));
        let (parsed, parsed_w) = parse_edge_list(&text).unwrap();
        assert_eq!(to_edge_list(&parsed, parsed_w.as_ref()), text);
        assert_eq!(
            canon::weighted_graph_hash(&parsed, parsed_w.as_ref().unwrap()),
            canon::weighted_graph_hash(&g, &w)
        );
        let dtext = to_directed_edge_list(&gen::random_digraph_connected(10, 0.2, &mut rng));
        let dg = parse_directed_edge_list(&dtext).unwrap();
        assert_eq!(to_directed_edge_list(&dg), dtext);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            parse_edge_list("0 1\n"),
            Err(ParseGraphError::MissingHeader)
        );
        assert_eq!(
            parse_edge_list("# n 3\n0\n"),
            Err(ParseGraphError::BadLine(2))
        );
        assert_eq!(
            parse_edge_list("# n 3\n0 x\n"),
            Err(ParseGraphError::BadNumber(2))
        );
        assert_eq!(
            parse_edge_list("# n 3\n0 1 5\n1 2\n"),
            Err(ParseGraphError::InconsistentWeights)
        );
        assert_eq!(
            parse_edge_list("# n 3\n0 3\n"),
            Err(ParseGraphError::VertexOutOfRange(2))
        );
        assert_eq!(
            parse_directed_edge_list("# n 2\n5 0\n"),
            Err(ParseGraphError::VertexOutOfRange(2))
        );
    }
}
