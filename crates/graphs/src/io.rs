//! Plain-text edge-list serialization, so workloads and results can be
//! exchanged with other tools.
//!
//! Format: one `# n <count>` header line, then one `u v [w]` line per
//! edge (whitespace separated, `#`-comments and blank lines ignored).
//! Directed graphs use the same format; direction is tail then head.

use std::fmt::Write as _;
use std::num::ParseIntError;

use crate::{DiGraph, EdgeWeights, Graph};

/// Errors from [`parse_edge_list`] / [`parse_directed_edge_list`].
#[derive(Debug, PartialEq, Eq)]
pub enum ParseGraphError {
    /// The `# n <count>` header is missing or malformed.
    MissingHeader,
    /// A data line did not have 2 or 3 fields.
    BadLine(usize),
    /// A field was not an integer.
    BadNumber(usize),
    /// Edge lines mixed weighted and unweighted entries.
    InconsistentWeights,
}

impl std::fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseGraphError::MissingHeader => write!(f, "missing `# n <count>` header"),
            ParseGraphError::BadLine(l) => write!(f, "malformed edge on line {l}"),
            ParseGraphError::BadNumber(l) => write!(f, "invalid number on line {l}"),
            ParseGraphError::InconsistentWeights => {
                write!(f, "some edges have weights and some do not")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {}

impl From<(usize, ParseIntError)> for ParseGraphError {
    fn from((line, _): (usize, ParseIntError)) -> Self {
        ParseGraphError::BadNumber(line)
    }
}

/// Serializes a graph (optionally weighted) as an edge list.
pub fn to_edge_list(g: &Graph, w: Option<&EdgeWeights>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# n {}", g.num_vertices());
    for (e, u, v) in g.edges() {
        match w {
            Some(w) => {
                let _ = writeln!(out, "{u} {v} {}", w.get(e));
            }
            None => {
                let _ = writeln!(out, "{u} {v}");
            }
        }
    }
    out
}

/// Serializes a directed graph as an edge list (tail head per line).
pub fn to_directed_edge_list(g: &DiGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# n {}", g.num_vertices());
    for (_, u, v) in g.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

/// Parsed data rows: (line number, numeric fields).
type DataRows = Vec<(usize, Vec<u64>)>;

fn parse_lines(text: &str) -> Result<(usize, DataRows), ParseGraphError> {
    let mut n: Option<usize> = None;
    let mut rows = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if n.is_none() && fields.len() == 2 && fields[0] == "n" {
                n = Some(fields[1].parse().map_err(|e| (line_no, e))?);
            }
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 2 && fields.len() != 3 {
            return Err(ParseGraphError::BadLine(line_no));
        }
        let nums: Vec<u64> = fields
            .iter()
            .map(|f| f.parse::<u64>().map_err(|e| (line_no, e).into()))
            .collect::<Result<_, ParseGraphError>>()?;
        rows.push((line_no, nums));
    }
    let n = n.ok_or(ParseGraphError::MissingHeader)?;
    Ok((n, rows))
}

/// Parses an undirected edge list; returns the graph and, when every
/// line carries a third field, the weights.
pub fn parse_edge_list(text: &str) -> Result<(Graph, Option<EdgeWeights>), ParseGraphError> {
    let (n, rows) = parse_lines(text)?;
    let mut g = Graph::new(n);
    let mut weights: Vec<u64> = Vec::new();
    let mut any_weight = false;
    let mut any_plain = false;
    for (_, nums) in &rows {
        g.add_edge(nums[0] as usize, nums[1] as usize);
        if nums.len() == 3 {
            any_weight = true;
            weights.push(nums[2]);
        } else {
            any_plain = true;
        }
    }
    if any_weight && any_plain {
        return Err(ParseGraphError::InconsistentWeights);
    }
    let w = any_weight.then(|| EdgeWeights::from_vec(weights));
    Ok((g, w))
}

/// Parses a directed edge list.
pub fn parse_directed_edge_list(text: &str) -> Result<DiGraph, ParseGraphError> {
    let (n, rows) = parse_lines(text)?;
    let mut g = DiGraph::new(n);
    for (_, nums) in &rows {
        g.add_edge(nums[0] as usize, nums[1] as usize);
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_unweighted() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnp_connected(20, 0.2, &mut rng);
        let text = to_edge_list(&g, None);
        let (parsed, w) = parse_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
        assert!(w.is_none());
    }

    #[test]
    fn roundtrip_weighted() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gen::gnp_connected(15, 0.25, &mut rng);
        let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
        let text = to_edge_list(&g, Some(&w));
        let (parsed, parsed_w) = parse_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
        assert_eq!(parsed_w, Some(w));
    }

    #[test]
    fn roundtrip_directed() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gen::random_digraph_connected(12, 0.15, &mut rng);
        let text = to_directed_edge_list(&g);
        let parsed = parse_directed_edge_list(&text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# n 3\n\n# a comment\n0 1\n1 2\n";
        let (g, _) = parse_edge_list(text).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            parse_edge_list("0 1\n"),
            Err(ParseGraphError::MissingHeader)
        );
        assert_eq!(
            parse_edge_list("# n 3\n0\n"),
            Err(ParseGraphError::BadLine(2))
        );
        assert_eq!(
            parse_edge_list("# n 3\n0 x\n"),
            Err(ParseGraphError::BadNumber(2))
        );
        assert_eq!(
            parse_edge_list("# n 3\n0 1 5\n1 2\n"),
            Err(ParseGraphError::InconsistentWeights)
        );
    }
}
