//! Graph substrate for the reproduction of *Distributed Spanner
//! Approximation* (Censor-Hillel & Dory, PODC 2018).
//!
//! This crate provides the data structures every other crate in the
//! workspace builds on:
//!
//! * [`Graph`] — a simple undirected graph with stable edge identifiers,
//! * [`DiGraph`] — a simple directed graph with stable edge identifiers,
//! * [`EdgeSet`] — a compact bitset over edge identifiers, used to track
//!   spanners, covered-edge sets, and the `H_v` sets of Section 4 of the
//!   paper,
//! * [`Ratio`] — exact non-negative rational arithmetic for star densities,
//! * [`gen`] — workload generators (random, structured, and weighted
//!   graphs) used by the test suite and the experiment harness,
//! * [`canon`] — canonical edge-list normalization and stable 64-bit
//!   graph hashing, the request-dedup substrate of `dsa-service`.
//!
//! The crate is dependency-light by design: the only runtime dependency is
//! `rand` (for the generators), so the algorithmic crates above it stay
//! auditable end to end.
//!
//! # Example
//!
//! ```
//! use dsa_graphs::{Graph, EdgeSet};
//!
//! // A 4-cycle plus one chord.
//! let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 5);
//!
//! // The chord {0, 2} is 2-spanned by the star {0-1, 1-2}.
//! let mut spanner = EdgeSet::new(g.num_edges());
//! spanner.insert(g.edge_id(0, 1).unwrap());
//! spanner.insert(g.edge_id(1, 2).unwrap());
//! assert!(dsa_graphs::traversal::covers_edge(&g, &spanner, g.edge_id(0, 2).unwrap(), 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
mod directed;
mod edgeset;
pub mod gen;
pub mod io;
mod ratio;
pub mod traversal;
mod undirected;
mod weights;

pub use directed::DiGraph;
pub use edgeset::EdgeSet;
pub use ratio::Ratio;
pub use undirected::Graph;
pub use weights::EdgeWeights;

/// Identifier of a vertex. Vertices of a graph with `n` vertices are
/// `0..n`.
pub type VertexId = usize;

/// Identifier of an edge. Edges of a graph with `m` edges are `0..m`, in
/// insertion order.
pub type EdgeId = usize;
