//! Canonical edge-list normalization and stable 64-bit graph hashing.
//!
//! Two submissions of the *same* graph often arrive with edges in
//! different orders (or with junk such as repeated lines and
//! self-loops, when they come off the wire). This module defines the
//! one normal form everything agrees on:
//!
//! * an undirected edge is the ordered pair `(min(u, v), max(u, v))`;
//!   a directed edge is `(tail, head)`; self-loops are not edges at all
//!   ([`undirected_key`] / [`directed_key`]);
//! * the canonical edge order is the lexicographic order of those key
//!   pairs, with duplicates collapsed;
//! * the canonical hash ([`graph_hash`], [`digraph_hash`],
//!   [`weighted_graph_hash`]) is FNV-1a over the vertex count and the
//!   canonically ordered edges, so it is independent of insertion
//!   order.
//!
//! [`canonicalize`] / [`canonicalize_digraph`] rebuild a graph with
//! edge ids *in* canonical order and return the id translation in both
//! directions, which is what lets a serving layer deduplicate
//! isomorphic-as-submitted requests and still answer each caller in
//! its own edge-id space. [`crate::io`] parsing uses the same keys, so
//! a parsed graph and its hash agree on self-loop/duplicate handling.

use crate::{DiGraph, EdgeId, EdgeWeights, Graph, VertexId};

/// The 64-bit FNV-1a hasher used for canonical graph hashes.
///
/// Chosen over `std::hash` because the output must be *stable* — cache
/// keys and wire-visible hashes may not change across Rust releases or
/// hasher randomization.
#[derive(Clone, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A hasher at the standard FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs the bytes of `x` in little-endian order.
    pub fn write_u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `usize` (as `u64`, so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// The normal form of an undirected edge `{u, v}`: endpoints in
/// increasing order, or `None` for a self-loop (which a simple graph
/// does not contain).
pub fn undirected_key(u: VertexId, v: VertexId) -> Option<(VertexId, VertexId)> {
    (u != v).then(|| (u.min(v), u.max(v)))
}

/// The normal form of a directed edge `(u, v)`: the pair itself, or
/// `None` for a self-loop.
pub fn directed_key(u: VertexId, v: VertexId) -> Option<(VertexId, VertexId)> {
    (u != v).then_some((u, v))
}

/// A graph rebuilt with edge ids in canonical (sorted endpoint-pair)
/// order, plus the id translation to and from the original graph.
#[derive(Clone, Debug)]
pub struct CanonicalGraph {
    /// The same graph with edges inserted in canonical order.
    pub graph: Graph,
    /// `to_canonical[original_id] = canonical_id`.
    pub to_canonical: Vec<EdgeId>,
    /// `from_canonical[canonical_id] = original_id`.
    pub from_canonical: Vec<EdgeId>,
}

/// Rebuilds `g` with edge ids in canonical order.
///
/// Simple graphs have no duplicate edges or self-loops, so this is a
/// pure reordering: `graph` is [`PartialEq`]-equal to `g` exactly when
/// the edges of `g` were already sorted.
pub fn canonicalize(g: &Graph) -> CanonicalGraph {
    // `Graph` stores endpoints min-first already, so the stored pairs
    // are the undirected keys.
    let mut order: Vec<EdgeId> = (0..g.num_edges()).collect();
    order.sort_unstable_by_key(|&e| g.endpoints(e));
    let mut to_canonical = vec![0; g.num_edges()];
    for (canonical, &original) in order.iter().enumerate() {
        to_canonical[original] = canonical;
    }
    let graph = Graph::from_edges(g.num_vertices(), order.iter().map(|&e| g.endpoints(e)));
    CanonicalGraph {
        graph,
        to_canonical,
        from_canonical: order,
    }
}

/// A directed graph rebuilt with edge ids in canonical order, plus the
/// id translation to and from the original graph.
#[derive(Clone, Debug)]
pub struct CanonicalDiGraph {
    /// The same digraph with edges inserted in canonical order.
    pub graph: DiGraph,
    /// `to_canonical[original_id] = canonical_id`.
    pub to_canonical: Vec<EdgeId>,
    /// `from_canonical[canonical_id] = original_id`.
    pub from_canonical: Vec<EdgeId>,
}

/// Rebuilds `g` with edge ids in canonical order. See [`canonicalize`].
pub fn canonicalize_digraph(g: &DiGraph) -> CanonicalDiGraph {
    let mut order: Vec<EdgeId> = (0..g.num_edges()).collect();
    order.sort_unstable_by_key(|&e| g.endpoints(e));
    let mut to_canonical = vec![0; g.num_edges()];
    for (canonical, &original) in order.iter().enumerate() {
        to_canonical[original] = canonical;
    }
    let graph = DiGraph::from_edges(g.num_vertices(), order.iter().map(|&e| g.endpoints(e)));
    CanonicalDiGraph {
        graph,
        to_canonical,
        from_canonical: order,
    }
}

/// Domain tags keep hashes of different kinds of object disjoint even
/// when the underlying edge data coincides.
const TAG_UNDIRECTED: u64 = 0x7573;
const TAG_DIRECTED: u64 = 0x6469;
const TAG_WEIGHTED: u64 = 0x7765;

fn hash_sorted_pairs(h: &mut Fnv1a, mut pairs: Vec<(VertexId, VertexId)>) {
    pairs.sort_unstable();
    h.write_usize(pairs.len());
    for (u, v) in pairs {
        h.write_usize(u);
        h.write_usize(v);
    }
}

/// The canonical (insertion-order-independent) hash of an undirected
/// graph.
pub fn graph_hash(g: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(TAG_UNDIRECTED);
    h.write_usize(g.num_vertices());
    hash_sorted_pairs(&mut h, g.edges().map(|(_, u, v)| (u, v)).collect());
    h.finish()
}

/// The canonical hash of a directed graph. Disjoint from undirected
/// hashes by domain tag.
pub fn digraph_hash(g: &DiGraph) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(TAG_DIRECTED);
    h.write_usize(g.num_vertices());
    hash_sorted_pairs(&mut h, g.edges().map(|(_, u, v)| (u, v)).collect());
    h.finish()
}

/// The canonical hash of a weighted undirected graph: each edge is
/// hashed together with its weight, in canonical edge order.
///
/// # Panics
///
/// Panics if the weights don't match the graph.
pub fn weighted_graph_hash(g: &Graph, w: &EdgeWeights) -> u64 {
    assert_eq!(w.len(), g.num_edges(), "weights must match edges");
    let mut triples: Vec<(VertexId, VertexId, u64)> =
        g.edges().map(|(e, u, v)| (u, v, w.get(e))).collect();
    triples.sort_unstable();
    let mut h = Fnv1a::new();
    h.write_u64(TAG_WEIGHTED);
    h.write_usize(g.num_vertices());
    h.write_usize(triples.len());
    for (u, v, weight) in triples {
        h.write_usize(u);
        h.write_usize(v);
        h.write_u64(weight);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_normalize_and_reject_self_loops() {
        assert_eq!(undirected_key(3, 1), Some((1, 3)));
        assert_eq!(undirected_key(1, 3), Some((1, 3)));
        assert_eq!(undirected_key(2, 2), None);
        assert_eq!(directed_key(3, 1), Some((3, 1)));
        assert_eq!(directed_key(2, 2), None);
    }

    #[test]
    fn hash_is_insertion_order_independent() {
        let a = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]);
        let b = Graph::from_edges(4, [(2, 0), (3, 2), (1, 0), (2, 1)]);
        assert_ne!(a, b); // different edge ids...
        assert_eq!(graph_hash(&a), graph_hash(&b)); // ...same graph
        let c = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_ne!(graph_hash(&a), graph_hash(&c));
        // Vertex count matters even with identical edges.
        let d = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (0, 2)]);
        assert_ne!(graph_hash(&a), graph_hash(&d));
    }

    #[test]
    fn directed_and_weighted_hashes_are_domain_separated() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let d = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let w = EdgeWeights::constant(2, 1);
        let hashes = [
            graph_hash(&g),
            digraph_hash(&d),
            weighted_graph_hash(&g, &w),
        ];
        assert_ne!(hashes[0], hashes[1]);
        assert_ne!(hashes[0], hashes[2]);
        assert_ne!(hashes[1], hashes[2]);
    }

    #[test]
    fn digraph_hash_distinguishes_direction() {
        let a = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let b = DiGraph::from_edges(3, [(1, 0), (1, 2)]);
        assert_ne!(digraph_hash(&a), digraph_hash(&b));
        let c = DiGraph::from_edges(3, [(1, 2), (0, 1)]);
        assert_eq!(digraph_hash(&a), digraph_hash(&c));
    }

    #[test]
    fn weighted_hash_sees_weights_through_reordering() {
        let a = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let b = Graph::from_edges(3, [(1, 2), (0, 1)]);
        // Weights follow edge ids, so the same id-indexed vector means
        // *different* edge weights across the two insert orders...
        let w = EdgeWeights::from_vec(vec![5, 9]);
        assert_ne!(weighted_graph_hash(&a, &w), weighted_graph_hash(&b, &w));
        // ...while the properly permuted weights hash identically.
        let w_b = EdgeWeights::from_vec(vec![9, 5]);
        assert_eq!(weighted_graph_hash(&a, &w), weighted_graph_hash(&b, &w_b));
    }

    #[test]
    fn canonicalize_sorts_edges_and_inverts() {
        let g = Graph::from_edges(5, [(3, 4), (0, 2), (1, 0), (2, 3)]);
        let canon = canonicalize(&g);
        let pairs: Vec<_> = canon.graph.edges().map(|(_, u, v)| (u, v)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (2, 3), (3, 4)]);
        assert_eq!(canon.graph.num_vertices(), g.num_vertices());
        for e in 0..g.num_edges() {
            assert_eq!(canon.from_canonical[canon.to_canonical[e]], e);
            assert_eq!(g.endpoints(e), canon.graph.endpoints(canon.to_canonical[e]));
        }
        // Canonicalizing a canonical graph is the identity.
        let again = canonicalize(&canon.graph);
        assert_eq!(again.graph, canon.graph);
        assert_eq!(again.to_canonical, (0..g.num_edges()).collect::<Vec<_>>());
    }

    #[test]
    fn canonicalize_digraph_sorts_and_inverts() {
        let g = DiGraph::from_edges(4, [(2, 1), (0, 3), (1, 0)]);
        let canon = canonicalize_digraph(&g);
        let pairs: Vec<_> = canon.graph.edges().map(|(_, u, v)| (u, v)).collect();
        assert_eq!(pairs, vec![(0, 3), (1, 0), (2, 1)]);
        for e in 0..g.num_edges() {
            assert_eq!(canon.from_canonical[canon.to_canonical[e]], e);
        }
        assert_eq!(digraph_hash(&g), digraph_hash(&canon.graph));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned reference values of FNV-1a 64 (cache keys and
        // wire-visible hashes must never change across releases).
        let mut h = Fnv1a::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
        // write_u64 is the little-endian byte expansion.
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv1a::new();
        b.write_bytes(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }
}
