//! Workload generators for the experiments and the test suite.
//!
//! All randomized generators take an explicit `Rng`, so every experiment
//! in the repository is reproducible from a seed.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{DiGraph, EdgeSet, EdgeWeights, Graph, VertexId};

/// Erdős–Rényi graph `G(n, p)`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// Connected Erdős–Rényi graph: a random Hamiltonian path (to guarantee
/// connectivity, as the paper assumes connected inputs) plus independent
/// `G(n, p)` edges.
///
/// Built in bulk; the probability draw is skipped for pairs the path
/// already connected, exactly as the incremental version's short-circuit
/// did, so the RNG stream (and thus every seeded instance) is unchanged.
pub fn gnp_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n >= 1, "need at least one vertex");
    let mut order: Vec<VertexId> = (0..n).collect();
    order.shuffle(rng);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut on_path = HashSet::new();
    for w in order.windows(2) {
        edges.push((w[0], w[1]));
        on_path.insert((w[0].min(w[1]), w[0].max(w[1])));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !on_path.contains(&(u, v)) && rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, edges)
}

/// The complete bipartite graph `K_{a,b}` (sides `0..a` and `a..a+b`).
///
/// Complete bipartite graphs are the canonical instances on which the
/// sparsest 2-spanner has Θ(n²) edges, which is the motivation the paper
/// gives for studying minimum 2-spanners (Section 1).
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::new();
    for u in 0..a {
        for v in a..(a + b) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(a + b, edges)
}

/// A star with `n - 1` leaves centered at vertex 0.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    Graph::from_edges(n, (1..n).map(|v| (0, v)))
}

/// A path on `n` vertices.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1);
    Graph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
}

/// A cycle on `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// An `r × c` grid graph.
pub fn grid(r: usize, c: usize) -> Graph {
    let mut edges = Vec::new();
    let id = |i: usize, j: usize| i * c + j;
    for i in 0..r {
        for j in 0..c {
            if j + 1 < c {
                edges.push((id(i, j), id(i, j + 1)));
            }
            if i + 1 < r {
                edges.push((id(i, j), id(i + 1, j)));
            }
        }
    }
    Graph::from_edges(r * c, edges)
}

/// Preferential-attachment graph: starts from a clique on `seed`
/// vertices and attaches each new vertex to `k` distinct existing
/// vertices chosen proportionally to degree. Produces the skewed degree
/// distributions under which star densities vary widely.
pub fn preferential_attachment<R: Rng>(n: usize, seed: usize, k: usize, rng: &mut R) -> Graph {
    assert!(seed >= 1 && k >= 1 && k <= seed && n >= seed);
    let mut edges = Vec::new();
    // Degree-proportional sampling via a repeated-endpoint urn.
    let mut urn: Vec<VertexId> = Vec::new();
    for (_, u, v) in complete(seed).edges() {
        edges.push((u, v));
        urn.push(u);
        urn.push(v);
    }
    if seed == 1 {
        urn.push(0);
    }
    for v in seed..n {
        let mut targets: Vec<VertexId> = Vec::new();
        while targets.len() < k {
            let t = urn[rng.gen_range(0..urn.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            edges.push((v, t));
            urn.push(v);
            urn.push(t);
        }
    }
    Graph::from_edges(n, edges)
}

/// Random bipartite graph with sides `a`, `b` and edge probability `p`.
pub fn random_bipartite<R: Rng>(a: usize, b: usize, p: f64, rng: &mut R) -> Graph {
    let mut edges = Vec::new();
    for u in 0..a {
        for v in a..(a + b) {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(a + b, edges)
}

/// Random simple digraph: each ordered pair `(u, v)`, `u != v`, is an
/// edge independently with probability `p`.
pub fn random_digraph<R: Rng>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    DiGraph::from_edges(n, edges)
}

/// Random digraph whose underlying undirected graph is connected: a
/// randomly-oriented Hamiltonian path plus independent random edges.
/// Built in bulk with the same draw-skipping as [`gnp_connected`]: the
/// probability draw happens only for ordered pairs the oriented path
/// did not already place, keeping the RNG stream identical to the old
/// incremental builder.
pub fn random_digraph_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    assert!(n >= 1);
    let mut order: Vec<VertexId> = (0..n).collect();
    order.shuffle(rng);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut on_path = HashSet::new();
    for w in order.windows(2) {
        let e = if rng.gen_bool(0.5) {
            (w[0], w[1])
        } else {
            (w[1], w[0])
        };
        edges.push(e);
        on_path.insert(e);
    }
    for u in 0..n {
        for v in 0..n {
            if u != v && !on_path.contains(&(u, v)) && rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    DiGraph::from_edges(n, edges)
}

/// Uniform random integer weights in `lo..=hi` for `m` edges.
pub fn random_weights<R: Rng>(m: usize, lo: u64, hi: u64, rng: &mut R) -> EdgeWeights {
    assert!(lo <= hi);
    EdgeWeights::from_fn(m, |_| rng.gen_range(lo..=hi))
}

/// A random client/server labeling of the edges of `g` for the
/// client-server 2-spanner problem (Section 4.3.3): each edge is a
/// client with probability `p_client` and a server with probability
/// `p_server`, independently; edges drawn as neither are made servers so
/// the labeling is total.
///
/// Returns `(clients, servers)` as edge sets.
pub fn client_server_split<R: Rng>(
    g: &Graph,
    p_client: f64,
    p_server: f64,
    rng: &mut R,
) -> (EdgeSet, EdgeSet) {
    let m = g.num_edges();
    let mut clients = EdgeSet::new(m);
    let mut servers = EdgeSet::new(m);
    for e in 0..m {
        let c = rng.gen_bool(p_client);
        let s = rng.gen_bool(p_server);
        if c {
            clients.insert(e);
        }
        if s || !c {
            servers.insert(e);
        }
    }
    (clients, servers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 2, 5, 20, 50] {
            let g = gnp_connected(n, 0.05, &mut rng);
            assert!(is_connected(&g), "n = {n}");
            assert!(g.num_edges() >= n.saturating_sub(1));
        }
    }

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 12);
        // No edges within a side.
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(3, 4));
    }

    #[test]
    fn structured_generators() {
        assert_eq!(star(5).max_degree(), 4);
        assert_eq!(path(4).num_edges(), 3);
        assert_eq!(cycle(5).num_edges(), 5);
        let g = grid(3, 4);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn preferential_attachment_grows() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = preferential_attachment(50, 4, 2, &mut rng);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 6 + 46 * 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn digraph_connected_underlying() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = random_digraph_connected(30, 0.02, &mut rng);
        let (u, _) = g.underlying();
        assert!(is_connected(&u));
    }

    #[test]
    fn client_server_total() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = complete(8);
        let (clients, servers) = client_server_split(&g, 0.5, 0.5, &mut rng);
        for e in 0..g.num_edges() {
            assert!(clients.contains(e) || servers.contains(e));
        }
    }

    #[test]
    fn weights_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = random_weights(100, 2, 9, &mut rng);
        assert!(w.iter().all(|(_, x)| (2..=9).contains(&x)));
    }
}
