//! A compact bitset over edge identifiers.

use std::fmt;

use crate::EdgeId;

/// A set of edge ids backed by a bit vector.
///
/// Used throughout the workspace for spanners, covered-edge sets, and the
/// per-vertex `H_v` sets of Section 4 of the paper. All operations are
/// O(1) except iteration and the bulk set operations, which are linear in
/// the universe size.
///
/// # Example
///
/// ```
/// use dsa_graphs::EdgeSet;
///
/// let mut s = EdgeSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct EdgeSet {
    blocks: Vec<u64>,
    universe: usize,
    len: usize,
}

impl EdgeSet {
    /// Creates an empty set over the universe `0..universe`.
    pub fn new(universe: usize) -> Self {
        EdgeSet {
            blocks: vec![0; universe.div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Creates a set containing every id in `0..universe`, writing
    /// whole all-ones words plus a masked tail instead of setting bits
    /// one at a time.
    pub fn full(universe: usize) -> Self {
        let mut blocks = vec![u64::MAX; universe.div_ceil(64)];
        if !universe.is_multiple_of(64) {
            if let Some(tail) = blocks.last_mut() {
                *tail = (1u64 << (universe % 64)) - 1;
            }
        }
        EdgeSet {
            blocks,
            universe,
            len: universe,
        }
    }

    /// Inserts every id in `lo..hi` with word-parallel fills: full
    /// interior words are set with a single all-ones store, the two
    /// boundary words with one masked OR each.
    ///
    /// # Panics
    ///
    /// Panics if `hi` exceeds the universe or `lo > hi`.
    pub fn insert_range(&mut self, lo: EdgeId, hi: EdgeId) {
        assert!(lo <= hi, "inverted range {lo}..{hi}");
        assert!(
            hi <= self.universe,
            "range end {hi} outside universe {}",
            self.universe
        );
        if lo == hi {
            return;
        }
        let (first, last) = (lo / 64, (hi - 1) / 64);
        let lo_mask = u64::MAX << (lo % 64);
        let hi_mask = u64::MAX >> (63 - (hi - 1) % 64);
        if first == last {
            self.blocks[first] |= lo_mask & hi_mask;
        } else {
            self.blocks[first] |= lo_mask;
            for b in &mut self.blocks[first + 1..last] {
                *b = u64::MAX;
            }
            self.blocks[last] |= hi_mask;
        }
        self.len = self.blocks.iter().map(|b| b.count_ones() as usize).sum();
    }

    /// Creates a set from an iterator of ids.
    pub fn from_iter<I: IntoIterator<Item = EdgeId>>(universe: usize, ids: I) -> Self {
        let mut s = EdgeSet::new(universe);
        for e in ids {
            s.insert(e);
        }
        s
    }

    /// The universe size this set was created with.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `e` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside the universe.
    pub fn contains(&self, e: EdgeId) -> bool {
        assert!(
            e < self.universe,
            "id {e} outside universe {}",
            self.universe
        );
        self.blocks[e / 64] >> (e % 64) & 1 == 1
    }

    /// Inserts `e`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside the universe.
    pub fn insert(&mut self, e: EdgeId) -> bool {
        assert!(
            e < self.universe,
            "id {e} outside universe {}",
            self.universe
        );
        let mask = 1u64 << (e % 64);
        let block = &mut self.blocks[e / 64];
        if *block & mask == 0 {
            *block |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `e`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `e` is outside the universe.
    pub fn remove(&mut self, e: EdgeId) -> bool {
        assert!(
            e < self.universe,
            "id {e} outside universe {}",
            self.universe
        );
        let mask = 1u64 << (e % 64);
        let block = &mut self.blocks[e / 64];
        if *block & mask != 0 {
            *block &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every id, keeping the universe and the allocation — the
    /// cheap way to reuse a set as a per-iteration scratch buffer.
    pub fn clear(&mut self) {
        self.blocks.fill(0);
        self.len = 0;
    }

    /// Inserts every id from `other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn union_with(&mut self, other: &EdgeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut len = 0;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Keeps only the ids also present in `other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn intersect_with(&mut self, other: &EdgeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut len = 0;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Removes every id present in `other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn subtract(&mut self, other: &EdgeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut len = 0;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Number of ids present in both this set and `other`, one
    /// popcount per word without materializing the intersection.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn count_intersection(&self, other: &EdgeSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Whether this set and `other` share no ids.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn is_disjoint(&self, other: &EdgeSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every id of this set is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if universes differ.
    pub fn is_subset_of(&self, other: &EdgeSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterator over the ids in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut b = block;
            std::iter::from_fn(move || {
                if b == 0 {
                    None
                } else {
                    let bit = b.trailing_zeros() as usize;
                    b &= b - 1;
                    Some(i * 64 + bit)
                }
            })
        })
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<EdgeId> for EdgeSet {
    /// Builds a set whose universe is one past the largest id seen.
    fn from_iter<I: IntoIterator<Item = EdgeId>>(iter: I) -> Self {
        let ids: Vec<EdgeId> = iter.into_iter().collect();
        let universe = ids.iter().max().map_or(0, |&m| m + 1);
        EdgeSet::from_iter(universe, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = EdgeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iter_is_sorted() {
        let s = EdgeSet::from_iter(200, [5, 190, 64, 63, 65]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![5, 63, 64, 65, 190]);
    }

    #[test]
    fn set_operations() {
        let mut a = EdgeSet::from_iter(100, [1, 2, 3]);
        let b = EdgeSet::from_iter(100, [3, 4]);
        assert!(!a.is_disjoint(&b));
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2]);
        assert!(a.is_disjoint(&b));
        a.union_with(&b);
        assert_eq!(a.len(), 4);
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        a.intersect_with(&EdgeSet::from_iter(100, [2, 3, 99]));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn clear_keeps_universe_and_empties() {
        let mut s = EdgeSet::from_iter(200, [0, 63, 64, 199]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.universe(), 200);
        assert!(!s.contains(63));
        assert!(s.insert(63));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_set() {
        let s = EdgeSet::full(67);
        assert_eq!(s.len(), 67);
        assert!(s.contains(66));
        // Word-fill agrees with bit-by-bit construction at every
        // boundary shape: empty, sub-word, exact words, word + tail.
        for universe in [0, 1, 63, 64, 65, 128, 130] {
            let fast = EdgeSet::full(universe);
            let slow = EdgeSet::from_iter(universe, 0..universe);
            assert_eq!(fast, slow, "universe {universe}");
            assert_eq!(fast.len(), universe);
        }
    }

    #[test]
    fn insert_range_matches_loop() {
        for &(universe, lo, hi) in &[
            (10, 2, 7),
            (64, 0, 64),
            (130, 0, 130),
            (200, 63, 65),
            (200, 64, 128),
            (200, 70, 70),
            (300, 1, 299),
        ] {
            let mut fast = EdgeSet::from_iter(universe, [0, universe - 1]);
            let mut slow = fast.clone();
            fast.insert_range(lo, hi);
            for e in lo..hi {
                slow.insert(e);
            }
            assert_eq!(fast, slow, "universe {universe} range {lo}..{hi}");
            assert_eq!(fast.len(), slow.len());
        }
    }

    #[test]
    fn count_intersection_matches_materialized() {
        let a = EdgeSet::from_iter(200, [1, 5, 63, 64, 65, 190]);
        let b = EdgeSet::from_iter(200, [5, 64, 66, 190, 199]);
        assert_eq!(a.count_intersection(&b), 3);
        assert_eq!(b.count_intersection(&a), 3);
        let mut both = a.clone();
        both.intersect_with(&b);
        assert_eq!(both.len(), a.count_intersection(&b));
        assert_eq!(a.count_intersection(&EdgeSet::new(200)), 0);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_panics() {
        let s = EdgeSet::new(5);
        s.contains(5);
    }
}
