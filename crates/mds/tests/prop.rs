//! Property tests for the MDS crate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsa_graphs::{gen, Graph};
use dsa_mds::{exact_mds, greedy_mds, is_dominating_set, run_mds_protocol};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..30, 0u64..400, 0u32..5).prop_map(|(n, seed, d)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::gnp(n, 0.07 * d as f64, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The protocol dominates every graph — including disconnected
    /// ones and graphs with isolated vertices — within the CONGEST
    /// message budget.
    #[test]
    fn protocol_dominates_any_graph(g in arb_graph(), seed in 0u64..30) {
        let run = run_mds_protocol(&g, seed, 500_000);
        prop_assert!(run.completed);
        prop_assert!(is_dominating_set(&g, &run.dominating_set));
        prop_assert_eq!(run.metrics.cap_violations, Some(0));
    }

    /// Greedy always dominates and exact is a true lower bound.
    #[test]
    fn greedy_and_exact_consistent(g in arb_graph()) {
        let greedy = greedy_mds(&g);
        prop_assert!(is_dominating_set(&g, &greedy));
        if g.num_vertices() <= 16 {
            let exact = exact_mds(&g);
            prop_assert!(is_dominating_set(&g, &exact));
            prop_assert!(exact.len() <= greedy.len());
            // Every dominating set is at least n / (Δ+1).
            let lower = g.num_vertices().div_ceil(g.max_degree() + 1);
            prop_assert!(exact.len() >= lower);
        }
    }

    /// Removing any vertex from the exact solution breaks domination
    /// (minimality of the optimum as a whole: it cannot shrink by 1 to
    /// a subset of itself).
    #[test]
    fn exact_is_irreducible(g in arb_graph()) {
        if g.num_vertices() == 0 || g.num_vertices() > 14 {
            return Ok(());
        }
        let exact = exact_mds(&g);
        for skip in 0..exact.len() {
            let reduced: Vec<_> = exact
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, &v)| v)
                .collect();
            prop_assert!(
                !is_dominating_set(&g, &reduced),
                "dropping {} left a dominating set, so exact was not minimum",
                exact[skip]
            );
        }
    }
}
