//! Independent dominating-set verification.

use dsa_graphs::{Graph, VertexId};

/// Whether `ds` dominates `g`: every vertex is in `ds` or adjacent to a
/// member of `ds`.
///
/// # Example
///
/// ```
/// use dsa_graphs::gen::path;
/// use dsa_mds::is_dominating_set;
///
/// let g = path(5); // 0-1-2-3-4
/// assert!(is_dominating_set(&g, &[1, 3]));
/// assert!(!is_dominating_set(&g, &[0, 1]));
/// ```
pub fn is_dominating_set(g: &Graph, ds: &[VertexId]) -> bool {
    let mut covered = vec![false; g.num_vertices()];
    for &v in ds {
        covered[v] = true;
        for u in g.neighbor_vertices(v) {
            covered[u] = true;
        }
    }
    covered.into_iter().all(|c| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_graphs::gen;

    #[test]
    fn empty_set_only_dominates_empty_graph() {
        assert!(is_dominating_set(&Graph::new(0), &[]));
        assert!(!is_dominating_set(&gen::path(3), &[]));
    }

    #[test]
    fn full_set_always_dominates() {
        let g = gen::cycle(5);
        let all: Vec<_> = (0..5).collect();
        assert!(is_dominating_set(&g, &all));
    }

    use dsa_graphs::Graph;
}
