//! An LRG-style (Jia–Rajaraman–Suel \[43\]) dominating-set baseline
//! whose `O(log Δ)` ratio holds only **in expectation** — the contrast
//! Theorem 5.1 draws: the paper's voting scheme achieves the same ratio
//! *always*.
//!
//! Per round (as in \[43\], simplified to the unit-cost case):
//!
//! 1. every vertex computes its span `d(v)` (uncovered vertices in
//!    `N[v]`) and its rounded span `d̃(v)`;
//! 2. vertices whose rounded span is maximal in their 2-neighborhood
//!    are candidates;
//! 3. every uncovered vertex `u` computes its *support* `s(u)` — the
//!    number of candidates covering it — and reports the median
//!    support to each candidate;
//! 4. each candidate joins the dominating set independently with
//!    probability `1 / median{s(u) : u ∈ C_v}`.
//!
//! The randomized rounding in step 4 is what makes the guarantee
//! expectation-only: an unlucky round can add many overlapping
//! candidates at once (or none), whereas the paper's vote-counting
//! acceptance bounds the overlap deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsa_graphs::{Graph, Ratio, VertexId};

/// Result of a [`jia_style_mds`] run.
#[derive(Clone, Debug)]
pub struct JiaRun {
    /// The dominating set.
    pub dominating_set: Vec<VertexId>,
    /// Rounds (each implementable in O(1) CONGEST rounds).
    pub rounds: u64,
}

/// Runs the LRG-style baseline; see the module docs.
///
/// Implemented as a round-by-round simulation (every step uses only
/// 2-neighborhood information, like the Section-5 protocol).
pub fn jia_style_mds(g: &Graph, seed: u64, max_rounds: u64) -> JiaRun {
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut covered = vec![false; n];
    let mut in_ds = vec![false; n];
    let mut rounds = 0;

    let two_nbrhood: Vec<Vec<VertexId>> = (0..n)
        .map(|v| {
            let mut set: Vec<VertexId> = vec![v];
            for u in g.neighbor_vertices(v) {
                set.push(u);
                set.extend(g.neighbor_vertices(u));
            }
            set.sort_unstable();
            set.dedup();
            set
        })
        .collect();

    while covered.iter().any(|&c| !c) && rounds < max_rounds {
        rounds += 1;
        // Spans and rounded spans.
        let span: Vec<u64> = (0..n)
            .map(|v| {
                u64::from(!covered[v])
                    + g.neighbor_vertices(v).filter(|&u| !covered[u]).count() as u64
            })
            .collect();
        let key = |d: u64| Ratio::new(d, 1).ceil_pow2_exponent();
        let candidates: Vec<VertexId> = (0..n)
            .filter(|&v| {
                span[v] >= 1 && two_nbrhood[v].iter().all(|&u| key(span[u]) <= key(span[v]))
            })
            .collect();
        if candidates.is_empty() {
            break;
        }
        // Supports.
        let mut support = vec![0u64; n];
        for &v in &candidates {
            if !covered[v] {
                support[v] += 1;
            }
            for u in g.neighbor_vertices(v) {
                if !covered[u] {
                    support[u] += 1;
                }
            }
        }
        // Probabilistic joining with p = 1 / median support.
        for &v in &candidates {
            let mut sups: Vec<u64> = std::iter::once(v)
                .chain(g.neighbor_vertices(v))
                .filter(|&u| !covered[u])
                .map(|u| support[u])
                .collect();
            if sups.is_empty() {
                continue;
            }
            sups.sort_unstable();
            let median = sups[sups.len() / 2].max(1);
            if rng.gen_bool(1.0 / median as f64) {
                in_ds[v] = true;
            }
        }
        // Coverage update.
        for v in 0..n {
            if in_ds[v] {
                covered[v] = true;
                for u in g.neighbor_vertices(v) {
                    covered[u] = true;
                }
            }
        }
    }
    // Stragglers (possible only if max_rounds was hit): self-cover.
    for v in 0..n {
        if !covered[v] {
            in_ds[v] = true;
            covered[v] = true;
            for u in g.neighbor_vertices(v) {
                covered[u] = true;
            }
        }
    }
    JiaRun {
        dominating_set: (0..n).filter(|&v| in_ds[v]).collect(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_dominating_set;
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn always_dominates() {
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..5u64 {
            let g = gen::gnp_connected(50, 0.08, &mut rng);
            let run = jia_style_mds(&g, seed, 10_000);
            assert!(is_dominating_set(&g, &run.dominating_set), "seed {seed}");
        }
    }

    #[test]
    fn star_is_efficient_on_average() {
        // Expectation-only: individual runs can be unlucky, so check
        // an average over seeds.
        let g = gen::star(30);
        let total: usize = (0..10u64)
            .map(|s| jia_style_mds(&g, s, 10_000).dominating_set.len())
            .sum();
        assert!(total <= 5 * 10, "average {} too large", total as f64 / 10.0);
    }

    #[test]
    fn variance_exceeds_the_guaranteed_algorithm() {
        // The point of Theorem 5.1: the paper's protocol has a
        // deterministic quality guarantee, while LRG rounding
        // fluctuates. We check LRG's spread over seeds is nonzero on a
        // graph where the protocol is stable.
        let mut rng = StdRng::seed_from_u64(9);
        let g = gen::gnp_connected(80, 0.06, &mut rng);
        let sizes: Vec<usize> = (0..8u64)
            .map(|s| jia_style_mds(&g, s, 10_000).dominating_set.len())
            .collect();
        assert!(sizes.iter().max() > sizes.iter().min());
    }
}
