//! Sequential MDS baselines: greedy and exact.

use dsa_graphs::{Graph, VertexId};

/// The classic greedy dominating set: repeatedly add the vertex that
/// dominates the most still-uncovered vertices. Ratio `ln Δ + 2`.
///
/// # Example
///
/// ```
/// use dsa_graphs::gen::star;
/// use dsa_mds::{greedy_mds, is_dominating_set};
///
/// let g = star(10);
/// let ds = greedy_mds(&g);
/// assert_eq!(ds, vec![0]); // the hub
/// assert!(is_dominating_set(&g, &ds));
/// ```
pub fn greedy_mds(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut covered = vec![false; n];
    let mut ds = Vec::new();
    let mut remaining = n;
    while remaining > 0 {
        let mut best: Option<(usize, VertexId)> = None;
        for v in 0..n {
            let gain =
                usize::from(!covered[v]) + g.neighbor_vertices(v).filter(|&u| !covered[u]).count();
            if gain > 0 && best.is_none_or(|(bg, bv)| gain > bg || (gain == bg && v < bv)) {
                best = Some((gain, v));
            }
        }
        let (gain, v) = best.expect("uncovered vertices imply positive gain");
        ds.push(v);
        if !covered[v] {
            covered[v] = true;
            remaining -= 1;
        }
        for u in g.neighbor_vertices(v) {
            if !covered[u] {
                covered[u] = true;
                remaining -= 1;
            }
        }
        let _ = gain;
    }
    ds.sort_unstable();
    ds
}

/// Exact minimum dominating set by branch and bound; ground truth for
/// small graphs (exponential worst case).
pub fn exact_mds(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut best: Vec<VertexId> = (0..n).collect();
    let mut current: Vec<VertexId> = Vec::new();
    let mut covered = vec![0u32; n]; // coverage counters
    branch(g, &mut current, &mut covered, &mut best);
    best.sort_unstable();
    best
}

fn branch(g: &Graph, current: &mut Vec<VertexId>, covered: &mut [u32], best: &mut Vec<VertexId>) {
    if current.len() + 1 >= best.len() {
        // Even one more vertex cannot beat the incumbent unless we are
        // already done.
        if covered.iter().all(|&c| c > 0) && current.len() < best.len() {
            *best = current.clone();
        }
        if current.len() + 1 >= best.len() {
            return;
        }
    }
    // Uncovered vertex with the fewest dominators.
    let mut pick: Option<(usize, VertexId)> = None;
    for (v, &cov) in covered.iter().enumerate() {
        if cov > 0 {
            continue;
        }
        let options = 1 + g.degree(v);
        if pick.is_none_or(|(o, _)| options < o) {
            pick = Some((options, v));
        }
    }
    let Some((_, v)) = pick else {
        if current.len() < best.len() {
            *best = current.clone();
        }
        return;
    };
    let mut dominators: Vec<VertexId> = vec![v];
    dominators.extend(g.neighbor_vertices(v));
    for d in dominators {
        current.push(d);
        covered[d] += 1;
        for u in g.neighbor_vertices(d) {
            covered[u] += 1;
        }
        branch(g, current, covered, best);
        current.pop();
        covered[d] -= 1;
        for u in g.neighbor_vertices(d) {
            covered[u] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_dominating_set;
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_dominates() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::gnp_connected(50, 0.1, &mut rng);
        let ds = greedy_mds(&g);
        assert!(is_dominating_set(&g, &ds));
    }

    #[test]
    fn exact_on_known_graphs() {
        // Star: 1. Path of 6: 2 (vertices 1 and 4). Cycle of 6: 2.
        assert_eq!(exact_mds(&gen::star(8)).len(), 1);
        assert_eq!(exact_mds(&gen::path(6)).len(), 2);
        assert_eq!(exact_mds(&gen::cycle(6)).len(), 2);
        assert_eq!(exact_mds(&gen::cycle(7)).len(), 3);
    }

    #[test]
    fn exact_lower_bounds_greedy() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let g = gen::gnp_connected(14, 0.25, &mut rng);
            let opt = exact_mds(&g);
            let greedy = greedy_mds(&g);
            assert!(is_dominating_set(&g, &opt));
            assert!(opt.len() <= greedy.len());
        }
    }

    #[test]
    fn empty_graph_needs_everyone() {
        let g = dsa_graphs::Graph::new(4);
        assert_eq!(greedy_mds(&g), vec![0, 1, 2, 3]);
        assert_eq!(exact_mds(&g), vec![0, 1, 2, 3]);
    }
}
