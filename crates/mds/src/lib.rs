//! Distributed minimum dominating set (Section 5 of *Distributed
//! Spanner Approximation*, Censor-Hillel & Dory, PODC 2018).
//!
//! Theorem 5.1: a CONGEST algorithm for MDS with a **guaranteed**
//! `O(log Δ)` approximation ratio in `O(log n log Δ)` rounds w.h.p. —
//! prior CONGEST algorithms achieved that ratio only in expectation.
//!
//! The algorithm is the vertex analogue of the paper's 2-spanner
//! scheme: the "star" of `v` is its closed neighborhood, its density is
//! the number of still-uncovered vertices in it, candidacy goes to
//! 2-neighborhood maxima of the rounded density, uncovered vertices
//! vote for the first candidate in random-permutation order, and a
//! candidate joins the dominating set when it collects at least
//! `|C_v|/8` votes. Because densities are plain integers here, every
//! message fits in O(1) words — the protocol is genuinely CONGEST,
//! which [`run_mds_protocol`] verifies by metering message sizes.
//!
//! This crate provides:
//! * [`MdsProtocol`] / [`run_mds_protocol`] — the message-passing
//!   CONGEST protocol (6 rounds per iteration),
//! * [`greedy_mds`] — the classic sequential greedy (ln Δ + 1 ratio),
//! * [`exact_mds`] — branch-and-bound ground truth for small graphs,
//! * [`is_dominating_set`] — an independent verifier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod jia;
mod protocol;
mod seq;
mod verify;

pub use jia::{jia_style_mds, JiaRun};
pub use protocol::{run_mds_protocol, MdsProtocol, MdsRun, PHASES};
pub use seq::{exact_mds, greedy_mds};
pub use verify::is_dominating_set;
