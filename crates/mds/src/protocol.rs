//! The CONGEST MDS protocol of Section 5.

use rand::Rng;

use dsa_graphs::{Graph, Ratio, VertexId};
use dsa_runtime::{Metrics, Network, Outbox, Protocol, RoundCtx, Simulator};

/// Rounds per algorithm iteration.
pub const PHASES: u64 = 6;

/// Words allowed per CONGEST message; every message of this protocol
/// is at most 2 words.
pub const CONGEST_CAP_WORDS: usize = 2;

/// The Section-5 minimum dominating set protocol.
///
/// Phase layout (one iteration = 6 rounds, all messages O(1) words):
///
/// | phase | message |
/// |---|---|
/// | 0 | my covered/uncovered status (after absorbing phase-5 joins) |
/// | 1 | my density `ρ(v)` = uncovered vertices in `N[v]` |
/// | 2 | max density over my closed neighborhood |
/// | 3 | candidacy flag + `r_v` |
/// | 4 | votes (uncovered vertices pick the first covering candidate) |
/// | 5 | whether I joined the dominating set |
#[derive(Clone, Debug)]
pub struct MdsProtocol {
    /// Acceptance rule `votes ≥ |C_v| / accept_denominator` (paper: 8).
    pub accept_denominator: u64,
}

impl Default for MdsProtocol {
    fn default() -> Self {
        MdsProtocol {
            accept_denominator: 8,
        }
    }
}

/// Per-vertex state.
#[derive(Debug)]
pub struct MdsNode {
    neighbors: Vec<VertexId>,
    /// Whether this vertex has joined the dominating set.
    pub in_ds: bool,
    /// Whether this vertex is dominated.
    pub covered: bool,
    /// Which neighbors are still uncovered (refreshed each phase 0/1).
    uncovered_nbrs: Vec<VertexId>,
    rho: u64,
    max1: u64,
    /// Candidate scratch: (snapshot |C_v|, r_v).
    candidate: Option<(u64, u64)>,
    /// Whether this vertex voted for itself this iteration.
    self_vote: bool,
}

/// Rounded density key: smallest power of two strictly above `rho`
/// (`None` for zero), mirroring the spanner algorithm's rounding.
fn key(rho: u64) -> Option<i32> {
    Ratio::new(rho, 1).ceil_pow2_exponent()
}

impl Protocol for MdsProtocol {
    type Node = MdsNode;

    fn init(&self, ctx: &mut RoundCtx<'_>) -> MdsNode {
        MdsNode {
            neighbors: ctx.neighbors.to_vec(),
            in_ds: false,
            covered: false,
            uncovered_nbrs: Vec::new(),
            rho: 0,
            max1: 0,
            candidate: None,
            self_vote: false,
        }
    }

    fn round(&self, node: &mut MdsNode, ctx: &mut RoundCtx<'_>, out: &mut Outbox) {
        match (ctx.round - 1) % PHASES {
            0 => {
                // Absorb phase-5 join announcements, update coverage,
                // broadcast status.
                if ctx.round > 1 {
                    let nbr_joined = ctx.inbox.iter().any(|env| env.words[0] == 1);
                    if node.in_ds || nbr_joined {
                        node.covered = true;
                    }
                }
                out.broadcast(&node.neighbors, vec![u64::from(node.covered)]);
            }
            1 => {
                // Compute ρ(v) = uncovered vertices in N[v].
                node.uncovered_nbrs = ctx
                    .inbox
                    .iter()
                    .filter(|env| env.words[0] == 0)
                    .map(|env| env.from)
                    .collect();
                node.rho = node.uncovered_nbrs.len() as u64 + u64::from(!node.covered);
                out.broadcast(&node.neighbors, vec![node.rho]);
            }
            2 => {
                node.max1 = node.rho;
                for env in ctx.inbox {
                    node.max1 = node.max1.max(env.words[0]);
                }
                out.broadcast(&node.neighbors, vec![node.max1]);
            }
            3 => {
                let mut max2 = node.max1;
                for env in ctx.inbox {
                    max2 = max2.max(env.words[0]);
                }
                node.candidate = None;
                if node.rho >= 1 && key(node.rho) == key(max2) {
                    let rv_max = (ctx.n.max(2) as u64).saturating_pow(4);
                    let rv = ctx.rng.gen_range(1..=rv_max);
                    node.candidate = Some((node.rho, rv));
                    out.broadcast(&node.neighbors, vec![1, rv]);
                } else {
                    out.broadcast(&node.neighbors, vec![0, 0]);
                }
            }
            4 => {
                // Uncovered vertices vote for the first covering
                // candidate by (r_v, id); self-votes stay local.
                node.self_vote = false;
                if !node.covered {
                    let mut best: Option<(u64, VertexId)> =
                        node.candidate.as_ref().map(|&(_, rv)| (rv, ctx.me));
                    for env in ctx.inbox {
                        if env.words[0] == 1 {
                            let cand = (env.words[1], env.from);
                            if best.is_none_or(|b| cand < b) {
                                best = Some(cand);
                            }
                        }
                    }
                    match best {
                        Some((_, x)) if x == ctx.me => node.self_vote = true,
                        Some((_, x)) => out.send(x, vec![1]),
                        None => {}
                    }
                }
            }
            5 => {
                let votes = ctx.inbox.len() as u64 + u64::from(node.self_vote);
                let mut joined = 0;
                if let Some((snapshot, _)) = node.candidate.take() {
                    if votes * self.accept_denominator >= snapshot && snapshot > 0 {
                        node.in_ds = true;
                        joined = 1;
                    }
                }
                out.broadcast(&node.neighbors, vec![joined]);
            }
            _ => unreachable!(),
        }
    }

    fn is_done(&self, node: &MdsNode) -> bool {
        node.covered
    }
}

/// Result of an MDS protocol run.
#[derive(Debug)]
pub struct MdsRun {
    /// The dominating set.
    pub dominating_set: Vec<VertexId>,
    /// Simulator traffic metrics.
    pub metrics: Metrics,
    /// Whether all vertices were dominated before the round cap.
    pub completed: bool,
}

/// Runs the Section-5 MDS protocol on `g`, metering the CONGEST cap.
///
/// # Example
///
/// ```
/// use dsa_graphs::gen::complete;
/// use dsa_mds::{is_dominating_set, run_mds_protocol};
///
/// let g = complete(10);
/// let run = run_mds_protocol(&g, 3, 10_000);
/// assert!(run.completed);
/// assert!(is_dominating_set(&g, &run.dominating_set));
/// // Strictly CONGEST: no message exceeded 2 words.
/// assert_eq!(run.metrics.cap_violations, Some(0));
/// ```
pub fn run_mds_protocol(g: &Graph, seed: u64, max_rounds: u64) -> MdsRun {
    let net = Network::from_graph(g);
    let report = Simulator::new(&net, MdsProtocol::default())
        .seed(seed)
        .bandwidth_cap_words(CONGEST_CAP_WORDS)
        .run(max_rounds);
    let dominating_set = report
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.in_ds)
        .map(|(v, _)| v)
        .collect();
    MdsRun {
        dominating_set,
        metrics: report.metrics,
        completed: report.completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_mds, is_dominating_set};
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn star_graph_picks_the_hub() {
        let g = gen::star(20);
        let run = run_mds_protocol(&g, 1, 5_000);
        assert!(run.completed);
        assert!(is_dominating_set(&g, &run.dominating_set));
        // The hub dominates everything; the guaranteed O(log Δ) ratio
        // cannot justify many extra vertices (opt = 1).
        assert!(
            run.dominating_set.len() <= 6,
            "got {:?}",
            run.dominating_set
        );
    }

    #[test]
    fn always_congest_and_valid_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(2);
        for seed in 0..4u64 {
            let g = gen::gnp_connected(40, 0.1, &mut rng);
            let run = run_mds_protocol(&g, seed, 20_000);
            assert!(run.completed, "seed {seed}");
            assert!(is_dominating_set(&g, &run.dominating_set), "seed {seed}");
            assert_eq!(run.metrics.cap_violations, Some(0), "seed {seed}");
            assert!(run.metrics.max_message_words <= CONGEST_CAP_WORDS);
        }
    }

    #[test]
    fn quality_comparable_to_greedy() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = gen::gnp_connected(60, 0.08, &mut rng);
        let run = run_mds_protocol(&g, 11, 20_000);
        let greedy = greedy_mds(&g);
        assert!(run.completed);
        // Both are O(log Δ)-quality; allow a generous constant.
        assert!(
            run.dominating_set.len() <= 4 * greedy.len().max(1),
            "protocol {} vs greedy {}",
            run.dominating_set.len(),
            greedy.len()
        );
    }

    #[test]
    fn isolated_vertices_dominate_themselves() {
        let g = dsa_graphs::Graph::new(3); // no edges at all
        let run = run_mds_protocol(&g, 0, 1_000);
        assert!(run.completed);
        assert_eq!(run.dominating_set, vec![0, 1, 2]);
    }
}
