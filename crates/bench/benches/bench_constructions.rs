//! Criterion benchmarks for the lower-bound constructions: building
//! G(ℓ,β) and checking its dichotomy, and building G_S.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsa_graphs::gen;
use dsa_lowerbounds::construction_g::{GConstruction, GParams};
use dsa_lowerbounds::construction_gs::GsConstruction;
use dsa_lowerbounds::disjointness::random_intersecting;

fn bench_build_g(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructions/build_g");
    group.sample_size(10);
    for (ell, beta) in [(4usize, 8usize), (6, 12), (8, 16)] {
        let params = GParams { ell, beta };
        let mut rng = StdRng::seed_from_u64(1);
        let inst = random_intersecting(params.input_len(), 1, &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{ell}x{beta}")),
            &inst,
            |b, inst| b.iter(|| GConstruction::build(params, inst.clone())),
        );
    }
    group.finish();
}

fn bench_forced_edges(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructions/forced_d_edges");
    group.sample_size(10);
    let params = GParams { ell: 6, beta: 12 };
    let mut rng = StdRng::seed_from_u64(2);
    let inst = random_intersecting(params.input_len(), 3, &mut rng);
    let g = GConstruction::build(params, inst);
    group.bench_function("6x12", |b| b.iter(|| g.forced_d_edges()));
    group.finish();
}

fn bench_build_gs(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructions/build_gs");
    let mut rng = StdRng::seed_from_u64(3);
    let g = gen::gnp_connected(100, 0.1, &mut rng);
    group.bench_function("n100", |b| b.iter(|| GsConstruction::build(&g)));
    group.finish();
}

criterion_group!(benches, bench_build_g, bench_forced_edges, bench_build_gs);
criterion_main!(benches);
