//! Criterion benchmarks for the CONGEST MDS protocol (E5 runtime side)
//! against the sequential greedy baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsa_graphs::gen;
use dsa_mds::{greedy_mds, run_mds_protocol};

fn bench_mds_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("mds/protocol");
    group.sample_size(10);
    for &(n, p) in &[(128usize, 0.06), (256, 0.04), (512, 0.02)] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = gen::gnp_connected(n, p, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| run_mds_protocol(g, 1, 1_000_000))
        });
    }
    group.finish();
}

fn bench_mds_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("mds/greedy");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(5);
    let g = gen::gnp_connected(512, 0.02, &mut rng);
    group.bench_function("greedy_512", |b| b.iter(|| greedy_mds(&g)));
    let grid = gen::grid(24, 24);
    group.bench_function("greedy_grid24", |b| b.iter(|| greedy_mds(&grid)));
    group.finish();
}

criterion_group!(benches, bench_mds_protocol, bench_mds_baseline);
criterion_main!(benches);
