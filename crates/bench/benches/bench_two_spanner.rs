//! Criterion benchmarks for the 2-spanner algorithms (E1 runtime side):
//! the distributed engine across sizes and variants, the sequential
//! greedy baseline, and the message-passing protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsa_core::dist::{min_2_spanner, min_2_spanner_directed, min_2_spanner_weighted, EngineConfig};
use dsa_core::protocol::run_two_spanner_protocol;
use dsa_core::seq::greedy_2_spanner;
use dsa_graphs::gen;

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_spanner/engine");
    group.sample_size(10);
    for &(n, p) in &[(64usize, 0.25), (128, 0.15), (256, 0.10)] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = gen::gnp_connected(n, p, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| min_2_spanner(g, &EngineConfig::seeded(1)))
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_spanner/variants");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let g = gen::gnp_connected(96, 0.15, &mut rng);
    let w = gen::random_weights(g.num_edges(), 1, 8, &mut rng);
    let dg = gen::random_digraph_connected(96, 0.08, &mut rng);

    group.bench_function("undirected", |b| {
        b.iter(|| min_2_spanner(&g, &EngineConfig::seeded(1)))
    });
    group.bench_function("weighted", |b| {
        b.iter(|| min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(1)))
    });
    group.bench_function("directed", |b| {
        b.iter(|| min_2_spanner_directed(&dg, &EngineConfig::seeded(1)))
    });
    group.bench_function("greedy_baseline", |b| b.iter(|| greedy_2_spanner(&g)));
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("two_spanner/protocol");
    group.sample_size(10);
    for &(n, p) in &[(32usize, 0.25), (64, 0.15)] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = gen::gnp_connected(n, p, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| run_two_spanner_protocol(g, 1, 1_000_000))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_scaling,
    bench_variants,
    bench_protocol
);
criterion_main!(benches);
