//! Criterion benchmarks for the flow substrate: Dinic max-flow and the
//! Goldberg densest-subgraph oracle that every engine iteration calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsa_flow::{densest_subgraph, MaxFlow};

fn random_local_graph(n: usize, p: f64, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    edges
}

fn bench_densest(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/densest_subgraph");
    for n in [16usize, 32, 64, 128] {
        let edges = random_local_graph(n, 0.3, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, edges| {
            b.iter(|| densest_subgraph(n, edges))
        });
    }
    group.finish();
}

fn bench_dinic(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow/dinic");
    for n in [32usize, 128] {
        let edges = random_local_graph(n, 0.3, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &edges, |b, edges| {
            b.iter(|| {
                let mut net = MaxFlow::new(n + 2);
                for &(u, v) in edges {
                    net.add_edge(u, v, 3);
                    net.add_edge(v, u, 3);
                }
                for v in 1..n {
                    net.add_edge(n, v, 2);
                    net.add_edge(v, n + 1, 2);
                }
                net.max_flow(n, n + 1)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_densest, bench_dinic);
criterion_main!(benches);
