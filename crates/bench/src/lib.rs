//! Experiment harness for the PODC'18 spanner reproduction.
//!
//! One binary per experiment group (see DESIGN.md §5 for the index):
//!
//! | binary | experiments |
//! |---|---|
//! | `exp_constructions` | F1 F2 F3 |
//! | `exp_two_spanner` | E1 E2 E3 E4 |
//! | `exp_mds` | E5 |
//! | `exp_hardness` | E6 E7 E8 E9 |
//! | `exp_one_plus_eps` | E10 |
//! | `exp_separation` | E11 E12 |
//! | `exp_ablations` | A1 A2 A3 |
//! | `exp_service` | S1 (dsa-service load test, JSON output) |
//!
//! Each binary prints self-contained markdown tables; EXPERIMENTS.md
//! archives one representative run of each. `cargo bench` runs the
//! Criterion performance benchmarks in `benches/`.

#![forbid(unsafe_code)]

/// A minimal fixed-width markdown table printer, so every experiment
/// binary reports in the same shape.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Prints the table as markdown.
    pub fn print(&self) {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let fmt_row = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            format!("| {} |", body.join(" | "))
        };
        println!("{}", fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for r in &self.rows {
            println!("{}", fmt_row(r));
        }
        println!();
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("### {id} — {title}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new(["a", "bb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        assert_eq!(t.rows.len(), 2);
        t.print(); // must not panic
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }
}
