//! E5 — Theorem 5.1: the CONGEST MDS protocol. Measures the guaranteed
//! approximation quality against greedy and (for small graphs) the
//! exact optimum, the round scaling, and the CONGEST message budget.

#![forbid(unsafe_code)]

use dsa_bench::{banner, f2, Table};
use dsa_graphs::gen;
use dsa_mds::{exact_mds, greedy_mds, is_dominating_set, jia_style_mds, run_mds_protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);

    banner(
        "E5a",
        "ratio vs exact optimum (small graphs) — the guarantee is O(log Δ), always",
    );
    let mut t = Table::new([
        "graph",
        "n",
        "Δ",
        "MDS",
        "greedy",
        "exact",
        "ratio vs opt",
        "cap viol",
    ]);
    for (name, g) in [
        ("star(16)".to_string(), gen::star(16)),
        ("cycle(15)".to_string(), gen::cycle(15)),
        ("grid 4×4".to_string(), gen::grid(4, 4)),
        (
            "G(16,0.3)".to_string(),
            gen::gnp_connected(16, 0.3, &mut rng),
        ),
        (
            "G(18,0.2)".to_string(),
            gen::gnp_connected(18, 0.2, &mut rng),
        ),
    ] {
        let run = run_mds_protocol(&g, 3, 100_000);
        assert!(run.completed && is_dominating_set(&g, &run.dominating_set));
        let greedy = greedy_mds(&g);
        let exact = exact_mds(&g);
        t.row([
            name,
            g.num_vertices().to_string(),
            g.max_degree().to_string(),
            run.dominating_set.len().to_string(),
            greedy.len().to_string(),
            exact.len().to_string(),
            f2(run.dominating_set.len() as f64 / exact.len() as f64),
            format!("{:?}", run.metrics.cap_violations.unwrap()),
        ]);
    }
    t.print();

    banner(
        "E5b",
        "round scaling — O(log n log Δ) iterations × 6 rounds; messages never exceed 2 words",
    );
    let mut t = Table::new([
        "n",
        "Δ",
        "|DS|",
        "greedy",
        "rounds",
        "6·log n·log Δ",
        "max msg (w)",
    ]);
    for &(n, p) in &[
        (64usize, 0.10),
        (128, 0.06),
        (256, 0.04),
        (512, 0.02),
        (1024, 0.01),
    ] {
        let g = gen::gnp_connected(n, p, &mut rng);
        let run = run_mds_protocol(&g, n as u64, 500_000);
        assert!(run.completed && is_dominating_set(&g, &run.dominating_set));
        assert_eq!(run.metrics.cap_violations, Some(0));
        let greedy = greedy_mds(&g);
        let reference = 6.0 * (n as f64).log2() * (g.max_degree().max(2) as f64).log2();
        t.row([
            n.to_string(),
            g.max_degree().to_string(),
            run.dominating_set.len().to_string(),
            greedy.len().to_string(),
            run.metrics.rounds.to_string(),
            f2(reference),
            run.metrics.max_message_words.to_string(),
        ]);
    }
    t.print();

    banner(
        "E5c",
        "guaranteed (Thm 5.1) vs expectation-only (Jia et al. style): per-seed spread of output sizes over 8 seeds",
    );
    let mut t = Table::new([
        "n",
        "protocol min..max",
        "protocol mean",
        "LRG min..max",
        "LRG mean",
    ]);
    for &(n, p) in &[(96usize, 0.06), (192, 0.04)] {
        let g = gen::gnp_connected(n, p, &mut rng);
        let ours: Vec<usize> = (0..8u64)
            .map(|s| run_mds_protocol(&g, s, 200_000).dominating_set.len())
            .collect();
        let lrg: Vec<usize> = (0..8u64)
            .map(|s| jia_style_mds(&g, s, 10_000).dominating_set.len())
            .collect();
        let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
        t.row([
            n.to_string(),
            format!(
                "{}..{}",
                ours.iter().min().unwrap(),
                ours.iter().max().unwrap()
            ),
            f2(mean(&ours)),
            format!(
                "{}..{}",
                lrg.iter().min().unwrap(),
                lrg.iter().max().unwrap()
            ),
            f2(mean(&lrg)),
        ]);
    }
    t.print();
}
