//! E1–E4 — the distributed 2-spanner approximations (Theorems 1.3,
//! 4.9, 4.12, 4.15): ratio and round scaling across workloads.

#![forbid(unsafe_code)]

use dsa_bench::{banner, f2, Table};
use dsa_core::dist::{
    min_2_spanner, min_2_spanner_client_server, min_2_spanner_directed, min_2_spanner_weighted,
    EngineConfig,
};
use dsa_core::seq::{exact_min_2_spanner, greedy_2_spanner, greedy_2_spanner_weighted};
use dsa_core::verify::{
    coverable_clients, is_client_server_2_spanner, is_k_spanner, is_k_spanner_directed,
    spanner_cost,
};
use dsa_graphs::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2018);

    banner(
        "E1",
        "Theorem 1.3 — undirected minimum 2-spanner: ratio stays O(log m/n), iterations ≈ O(log n · log Δ)",
    );
    let mut t = Table::new([
        "n",
        "m",
        "Δ",
        "dist |H|",
        "greedy |H|",
        "|H|/(n-1)",
        "ln(m/n)+1",
        "iters",
        "log n·log Δ",
        "fallbacks",
    ]);
    for &(n, p) in &[
        (64usize, 0.25),
        (128, 0.18),
        (256, 0.125),
        (512, 0.09),
        (1024, 0.0625),
    ] {
        let g = gen::gnp_connected(n, p, &mut rng);
        let run = min_2_spanner(&g, &EngineConfig::seeded(n as u64));
        assert!(run.converged && is_k_spanner(&g, &run.spanner, 2));
        let greedy = greedy_2_spanner(&g);
        let logn = (n as f64).log2();
        let logd = (g.max_degree().max(2) as f64).log2();
        t.row([
            n.to_string(),
            g.num_edges().to_string(),
            g.max_degree().to_string(),
            run.spanner.len().to_string(),
            greedy.len().to_string(),
            f2(run.spanner.len() as f64 / (n - 1) as f64),
            f2((g.num_edges() as f64 / n as f64).ln() + 1.0),
            run.iterations.to_string(),
            f2(logn * logd),
            run.star_fallbacks.to_string(),
        ]);
    }
    t.print();

    banner(
        "E1b",
        "dense graphs (where 2-spanners shine): K_n and near-complete G(n,p)",
    );
    let mut t = Table::new([
        "graph",
        "n",
        "m",
        "dist |H|",
        "greedy |H|",
        "exact |H*|",
        "ratio vs opt",
    ]);
    for n in [8usize, 9, 10] {
        let g = gen::complete(n);
        let run = min_2_spanner(&g, &EngineConfig::seeded(7));
        let greedy = greedy_2_spanner(&g);
        let opt = exact_min_2_spanner(&g);
        t.row([
            format!("K{n}"),
            n.to_string(),
            g.num_edges().to_string(),
            run.spanner.len().to_string(),
            greedy.len().to_string(),
            opt.len().to_string(),
            f2(run.spanner.len() as f64 / opt.len() as f64),
        ]);
    }
    for n in [9usize, 10] {
        let g = gen::gnp_connected(n, 0.55, &mut rng);
        let run = min_2_spanner(&g, &EngineConfig::seeded(9));
        let greedy = greedy_2_spanner(&g);
        let opt = exact_min_2_spanner(&g);
        t.row([
            format!("G({n},0.55)"),
            n.to_string(),
            g.num_edges().to_string(),
            run.spanner.len().to_string(),
            greedy.len().to_string(),
            opt.len().to_string(),
            f2(run.spanner.len() as f64 / opt.len() as f64),
        ]);
    }
    t.print();

    banner(
        "E2",
        "Theorem 4.9 — directed 2-spanner: same shape as undirected",
    );
    let mut t = Table::new(["n", "m", "dist |H|", "|H|/(n-1)", "iters"]);
    for &(n, p) in &[(64usize, 0.15), (128, 0.08), (256, 0.05)] {
        let g = gen::random_digraph_connected(n, p, &mut rng);
        let run = min_2_spanner_directed(&g, &EngineConfig::seeded(n as u64));
        assert!(run.converged && is_k_spanner_directed(&g, &run.spanner, 2));
        t.row([
            n.to_string(),
            g.num_edges().to_string(),
            run.spanner.len().to_string(),
            f2(run.spanner.len() as f64 / (n - 1) as f64),
            run.iterations.to_string(),
        ]);
    }
    t.print();

    banner(
        "E3",
        "Theorem 4.12 — weighted 2-spanner: cost ratio O(log Δ); rounds grow with log(ΔW)",
    );
    let mut t = Table::new([
        "n",
        "W",
        "dist cost",
        "greedy cost",
        "total w(G)",
        "cost/greedy",
        "iters",
    ]);
    for &(n, wmax) in &[(64usize, 1u64), (64, 8), (64, 64), (128, 8), (256, 8)] {
        let g = gen::gnp_connected(n, 0.15, &mut rng);
        let w = gen::random_weights(g.num_edges(), 1, wmax, &mut rng);
        let run = min_2_spanner_weighted(&g, &w, &EngineConfig::seeded(n as u64 + wmax));
        assert!(run.converged && is_k_spanner(&g, &run.spanner, 2));
        let greedy = greedy_2_spanner_weighted(&g, &w);
        let (dc, gc) = (
            spanner_cost(&run.spanner, &w),
            spanner_cost(&greedy, &w).max(1),
        );
        t.row([
            n.to_string(),
            wmax.to_string(),
            dc.to_string(),
            gc.to_string(),
            w.total().to_string(),
            f2(dc as f64 / gc as f64),
            run.iterations.to_string(),
        ]);
    }
    t.print();

    banner(
        "E4",
        "Theorem 4.15 — client-server 2-spanner: ratio O(min{log |C|/|V(C)|, log Δ_S})",
    );
    let mut t = Table::new(["n", "|C|", "|S|", "coverable", "dist |H|", "iters"]);
    for &(n, pc, ps) in &[(64usize, 0.7, 0.5), (128, 0.5, 0.6), (256, 0.4, 0.7)] {
        let g = gen::gnp_connected(n, 0.12, &mut rng);
        let (clients, servers) = gen::client_server_split(&g, pc, ps, &mut rng);
        let run =
            min_2_spanner_client_server(&g, &clients, &servers, &EngineConfig::seeded(n as u64));
        assert!(run.converged);
        assert!(is_client_server_2_spanner(
            &g,
            &clients,
            &servers,
            &run.spanner
        ));
        t.row([
            n.to_string(),
            clients.len().to_string(),
            servers.len().to_string(),
            coverable_clients(&g, &clients, &servers).len().to_string(),
            run.spanner.len().to_string(),
            run.iterations.to_string(),
        ]);
    }
    t.print();
}
