//! F1 F2 F3 — structural validation of the paper's three figures.

#![forbid(unsafe_code)]

use dsa_bench::{banner, Table};
use dsa_graphs::gen;
use dsa_lowerbounds::construction_g::{GConstruction, GParams};
use dsa_lowerbounds::construction_gs::GsConstruction;
use dsa_lowerbounds::construction_gw::{GwDirected, GwUndirected};
use dsa_lowerbounds::disjointness::random_disjoint;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);

    banner(
        "F1",
        "Figure 1: G(ℓ, β) — n = 2ℓβ+5ℓ, |D| = (ℓβ)², cut(Y1) = 3ℓ",
    );
    let mut t = Table::new([
        "ℓ",
        "β",
        "n",
        "n formula",
        "|D|",
        "(ℓβ)²",
        "cut",
        "3ℓ",
        "non-D ≤ 7ℓβ",
    ]);
    for (ell, beta) in [(2, 2), (3, 6), (4, 8), (6, 6), (8, 16)] {
        let params = GParams { ell, beta };
        let c = GConstruction::build(params, random_disjoint(params.input_len(), &mut rng));
        t.row([
            ell.to_string(),
            beta.to_string(),
            c.graph.num_vertices().to_string(),
            params.num_vertices().to_string(),
            c.d_edges.len().to_string(),
            ((ell * beta) * (ell * beta)).to_string(),
            c.cut_size().to_string(),
            (3 * ell).to_string(),
            format!("{} ≤ {}", c.non_d_spanner().len(), 7 * ell * beta.max(ell)),
        ]);
    }
    t.print();

    banner("F2", "Figure 2: G_w(ℓ) — n = 6ℓ, weights {0,1}, cut = 3ℓ");
    let mut t = Table::new([
        "ℓ",
        "n",
        "6ℓ",
        "|D|",
        "ℓ²",
        "cut",
        "zero-cost spanner (disjoint)",
    ]);
    for ell in [2usize, 4, 8, 16, 32] {
        let d = GwDirected::build(ell, random_disjoint(ell * ell, &mut rng));
        t.row([
            ell.to_string(),
            d.graph.num_vertices().to_string(),
            (6 * ell).to_string(),
            d.d_edges.len().to_string(),
            (ell * ell).to_string(),
            d.cut_size().to_string(),
            d.zero_cost_spanner_exists(4).to_string(),
        ]);
    }
    t.print();

    banner(
        "F2u",
        "Figure 2 undirected variant: path gadget adds (k−4)ℓ vertices",
    );
    let mut t = Table::new(["ℓ", "k", "n", "6ℓ+(k−4)ℓ"]);
    for k in 4..=8usize {
        let g = GwUndirected::build(4, k, random_disjoint(16, &mut rng));
        t.row([
            "4".to_string(),
            k.to_string(),
            g.graph.num_vertices().to_string(),
            (6 * 4 + (k - 4) * 4).to_string(),
        ]);
    }
    t.print();

    banner(
        "F3",
        "Figure 3: G_S — 3n vertices, 3n+3m edges, weights {0,1,2}",
    );
    let mut t = Table::new(["n(G)", "m(G)", "n(G_S)", "m(G_S)", "#w=0", "#w=1", "#w=2"]);
    for (n, p) in [(6, 0.5), (10, 0.3), (20, 0.2), (40, 0.1)] {
        let g = gen::gnp_connected(n, p, &mut rng);
        let gs = GsConstruction::build(&g);
        let count = |w: u64| gs.weights.iter().filter(|&(_, x)| x == w).count();
        t.row([
            n.to_string(),
            g.num_edges().to_string(),
            gs.graph.num_vertices().to_string(),
            gs.graph.num_edges().to_string(),
            count(0).to_string(),
            count(1).to_string(),
            count(2).to_string(),
        ]);
    }
    t.print();
}
