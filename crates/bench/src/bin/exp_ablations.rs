//! A1 A2 A3 — ablations of the Section-4 design choices.
//!
//! A1: the 1/8 voting threshold — sweep the acceptance denominator.
//! A2: the Section-4.1 monotone star choice vs fresh densest stars.
//! A3: rounding densities to powers of two vs exact densities.

#![forbid(unsafe_code)]

use dsa_bench::{banner, f2, Table};
use dsa_core::dist::{run_engine, EngineConfig, UndirectedTwoSpanner};
use dsa_core::verify::is_k_spanner;
use dsa_graphs::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(12);
    let trials = 5u64;

    banner(
        "A1",
        "voting threshold votes ≥ |C_v|/t: t=1 is the strictest rule (accept only unanimously voted stars: least overlap, most iterations); large t accepts almost every candidate",
    );
    let mut t = Table::new(["t", "avg |H|", "avg iterations"]);
    let graphs: Vec<_> = (0..trials)
        .map(|_| gen::gnp_connected(128, 0.30, &mut rng))
        .collect();
    for accept in [1u64, 2, 4, 8, 16, 64] {
        let mut size = 0.0;
        let mut iters = 0.0;
        for (s, g) in graphs.iter().enumerate() {
            let cfg = EngineConfig {
                accept_denominator: accept,
                ..EngineConfig::seeded(s as u64)
            };
            let run = run_engine(&UndirectedTwoSpanner::new(g), &cfg);
            assert!(run.converged && is_k_spanner(g, &run.spanner, 2));
            size += run.spanner.len() as f64;
            iters += run.iterations as f64;
        }
        t.row([
            accept.to_string(),
            f2(size / trials as f64),
            f2(iters / trials as f64),
        ]);
    }
    t.print();

    banner(
        "A2",
        "Section 4.1 monotone star choice vs arbitrary densest star each iteration (the paper proves the arbitrary choice can stall the round bound)",
    );
    let mut t = Table::new(["star choice", "avg |H|", "avg iterations", "fallbacks"]);
    for (label, monotone) in [("monotone (§4.1)", true), ("arbitrary densest", false)] {
        let mut size = 0.0;
        let mut iters = 0.0;
        let mut fallbacks = 0u64;
        for (s, g) in graphs.iter().enumerate() {
            let cfg = EngineConfig {
                monotone_stars: monotone,
                ..EngineConfig::seeded(s as u64)
            };
            let run = run_engine(&UndirectedTwoSpanner::new(g), &cfg);
            assert!(run.converged && is_k_spanner(g, &run.spanner, 2));
            size += run.spanner.len() as f64;
            iters += run.iterations as f64;
            fallbacks += run.star_fallbacks;
        }
        t.row([
            label.to_string(),
            f2(size / trials as f64),
            f2(iters / trials as f64),
            fallbacks.to_string(),
        ]);
    }
    t.print();
    println!("(on random workloads both choices coincide — the §4.1 mechanism exists for");
    println!(" worst-case adversarial star sequences; fallbacks = 0 confirms Claim 4.4)\n");

    banner(
        "A3",
        "density rounding (powers of two) vs exact densities: rounding creates larger candidate cohorts per level",
    );
    let mut t = Table::new([
        "densities",
        "avg |H|",
        "avg iterations",
        "avg candidates/iter",
    ]);
    for (label, rounding) in [("rounded (paper)", true), ("exact", false)] {
        let mut size = 0.0;
        let mut iters = 0.0;
        let mut cands = 0.0;
        let mut iter_count = 0.0;
        for (s, g) in graphs.iter().enumerate() {
            let cfg = EngineConfig {
                round_densities: rounding,
                ..EngineConfig::seeded(s as u64)
            };
            let run = run_engine(&UndirectedTwoSpanner::new(g), &cfg);
            assert!(run.converged && is_k_spanner(g, &run.spanner, 2));
            size += run.spanner.len() as f64;
            iters += run.iterations as f64;
            cands += run.stats.iter().map(|st| st.candidates).sum::<usize>() as f64;
            iter_count += run.stats.len().max(1) as f64;
        }
        t.row([
            label.to_string(),
            f2(size / trials as f64),
            f2(iters / trials as f64),
            f2(cands / iter_count),
        ]);
    }
    t.print();
}
