//! S2 — engine scaling: shard scaling of one `run_engine` call plus
//! the single-core before/after gate for the flat-CSR graph core.
//!
//! Two experiments share this binary because they share the identity
//! contract:
//!
//! 1. **Shard scaling** — wall-clock speedup of one job at 1/2/4/8
//!    in-iteration shards, for all four variants, with a byte-identity
//!    check across every shard count (PR 3's guard that sharding
//!    overhead does not rot).
//! 2. **Single-core gate** — fixed, denser "gate instances" timed at
//!    1 shard and compared against the committed pre-refactor baseline
//!    (`BENCH_baseline.json`, recorded with `--record-baseline` before
//!    the CSR refactor landed). The artifact reports
//!    `single_core_speedup` per variant plus a per-phase (Step 1/3/4 +
//!    coverage) breakdown from [`run_variant_timed`]; `--ci` *enforces*
//!    speedup ≥ [`GATE_MIN_SPEEDUP`] on at least
//!    [`GATE_MIN_VARIANTS`] of the four variants.
//!
//! A third check rides along: **instrumentation overhead**. Every row
//! now carries a per-phase breakdown plus per-shard Step 1 seconds
//! (from `EngineConfig::collect_timings`), so the binary also proves
//! that collecting those timings costs < 3% single-core on the gate
//! instances — the `overhead` rows in the artifact; `--ci` enforces
//! the bound.
//!
//! In all experiments the determinism contract is asserted before any
//! timing is reported: identical spanner bytes and identical
//! per-iteration accounting at every shard count (and across the
//! timing toggle). A speedup that changed the answer would be a bug,
//! not a result.
//!
//! Output is one JSON object on stdout (machine-readable; CI uploads
//! it as an artifact) and a human-readable summary on stderr.
//!
//! ```text
//! cargo run --release -p dsa-bench --bin exp_engine_scaling -- \
//!     [n] [--ci] [--tolerance F] [--reps K] \
//!     [--baseline PATH] [--record-baseline]
//! ```
//!
//! `--ci` shrinks the shard-scaling instances (CI machines are small
//! and shared) and *enforces* both gates: the 4-shard no-regression
//! bound (the run fails if the 4-shard time exceeds `tolerance ×` the
//! 1-shard time *plus an absolute slack*, [`ABS_SLACK_SECS`]) and the
//! single-core speedup floor. The absolute slack exists because the
//! smallest CI instances finish in single-digit milliseconds, where
//! scheduler noise alone can exceed any ratio; a genuine overhead
//! regression dwarfs 30 ms, noise does not. The gate instances are
//! deliberately denser (0.3–1.5 s each on the reference 1-core
//! container at baseline) so the speedup ratio is signal, not noise.

#![forbid(unsafe_code)]

use std::time::Instant;

use dsa_core::dist::{
    run_variant, run_variant_timed, EngineConfig, PhaseTimings, SpannerRun, VariantInstance,
};
use dsa_graphs::gen;
use dsa_runtime::json::Json;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Absolute slack for the `--ci` shard-regression gate: sub-10ms
/// baselines cannot be held to a pure ratio on shared CI machines.
const ABS_SLACK_SECS: f64 = 0.030;

/// Shard counts whose output must match before the single-core gate
/// times anything.
const GATE_IDENTITY_SHARDS: [usize; 3] = [1, 4, 8];

/// Minimum `single_core_speedup` the `--ci` gate accepts per variant.
const GATE_MIN_SPEEDUP: f64 = 1.5;

/// How many of the four variants must clear [`GATE_MIN_SPEEDUP`].
const GATE_MIN_VARIANTS: usize = 3;

/// Best-of-`GATE_REPS` timing for the gate instances.
const GATE_REPS: usize = 2;

/// Maximum single-core slowdown the instrumentation toggle
/// (`EngineConfig::collect_timings`) may cost on a gate instance.
const OVERHEAD_MAX_RATIO: f64 = 1.03;

/// Absolute slack for the overhead check, for the same reason as
/// [`ABS_SLACK_SECS`]: a ratio alone is meaningless inside clock noise.
const OVERHEAD_SLACK_SECS: f64 = 0.015;

struct Args {
    n: usize,
    ci: bool,
    tolerance: f64,
    reps: usize,
    baseline: String,
    record_baseline: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 0,
        ci: false,
        tolerance: 1.5,
        reps: 0,
        baseline: "BENCH_baseline.json".to_owned(),
        record_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ci" => args.ci = true,
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a value");
                args.tolerance = v.parse().expect("--tolerance takes a float");
            }
            "--reps" => {
                let v = it.next().expect("--reps needs a value");
                args.reps = v.parse().expect("--reps takes a count");
            }
            "--baseline" => {
                args.baseline = it.next().expect("--baseline needs a path");
            }
            "--record-baseline" => args.record_baseline = true,
            other => {
                args.n = other.parse().unwrap_or_else(|_| {
                    eprintln!(
                        "usage: exp_engine_scaling [n] [--ci] [--tolerance F] [--reps K] \
                         [--baseline PATH] [--record-baseline]"
                    );
                    std::process::exit(2);
                })
            }
        }
    }
    if args.n == 0 {
        args.n = if args.ci { 96 } else { 512 };
    }
    if args.reps == 0 {
        // Small CI instances are noisy; best-of-3 steadies the check.
        args.reps = if args.ci { 3 } else { 1 };
    }
    args
}

/// The shard-scaling instances: every variant sized so one run is
/// heavy enough to time but the whole sweep stays minutes, not hours.
fn instances(n: usize) -> Vec<(&'static str, VariantInstance)> {
    let mut rng = StdRng::seed_from_u64(2018);
    let avg_deg = |nv: usize, d: f64| (d / nv as f64).min(0.9);
    let g = gen::gnp_connected(n, avg_deg(n, 12.0), &mut rng);
    let weights = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let nd = (n / 4).max(8);
    let d = gen::random_digraph_connected(nd, avg_deg(nd, 8.0), &mut rng);
    let ncs = (n / 2).max(8);
    let cs = gen::gnp_connected(ncs, avg_deg(ncs, 10.0), &mut rng);
    let (clients, servers) = gen::client_server_split(&cs, 0.6, 0.6, &mut rng);
    vec![
        (
            "undirected",
            VariantInstance::Undirected { graph: g.clone() },
        ),
        ("directed", VariantInstance::Directed { graph: d }),
        ("weighted", VariantInstance::Weighted { graph: g, weights }),
        (
            "client-server",
            VariantInstance::ClientServer {
                graph: cs,
                clients,
                servers,
            },
        ),
    ]
}

/// The single-core gate instances: fixed sizes, independent of the
/// `n` CLI knob so every run (and the committed baseline) times the
/// *same* work. Densities are chosen so each baseline run lands in
/// 0.3–1.5 s on the reference 1-core container — large enough that a
/// 1.5x ratio is meaningful, small enough that CI stays fast.
fn gate_instances() -> Vec<(&'static str, VariantInstance)> {
    let mut rng = StdRng::seed_from_u64(2018);
    let g = gen::gnp_connected(600, 36.0 / 600.0, &mut rng);
    let weights = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let d = gen::random_digraph_connected(400, 22.0 / 400.0, &mut rng);
    let cs = gen::gnp_connected(800, 44.0 / 800.0, &mut rng);
    let (clients, servers) = gen::client_server_split(&cs, 0.6, 0.6, &mut rng);
    vec![
        (
            "undirected",
            VariantInstance::Undirected { graph: g.clone() },
        ),
        ("directed", VariantInstance::Directed { graph: d }),
        ("weighted", VariantInstance::Weighted { graph: g, weights }),
        (
            "client-server",
            VariantInstance::ClientServer {
                graph: cs,
                clients,
                servers,
            },
        ),
    ]
}

/// Best-of-`reps` wall-clock seconds for one configuration, plus the
/// phase breakdown of the best repetition and the (identical) run from
/// the last repetition. Timing collection is ON so the artifact can
/// report per-shard section times; the overhead check below bounds
/// what that collection is allowed to cost.
fn time_run(
    instance: &VariantInstance,
    shards: usize,
    reps: usize,
) -> (f64, PhaseTimings, SpannerRun) {
    let cfg = EngineConfig {
        num_shards: shards,
        collect_timings: true,
        ..EngineConfig::seeded(7)
    };
    let mut best = f64::INFINITY;
    let mut best_phases = PhaseTimings::default();
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (run, phases) = run_variant_timed(instance, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            best_phases = phases;
        }
        last = Some(run);
    }
    (best, best_phases, last.expect("reps >= 1"))
}

/// Per-shard Step 1 seconds summed over all iterations of a traced
/// run, in shard order. Iterations may use fewer shards than the
/// configured count (tiny vertex ranges); missing slots contribute 0.
fn step1_shard_secs(run: &SpannerRun) -> Vec<f64> {
    let Some(trace) = &run.trace else {
        return Vec::new();
    };
    let width = trace
        .iterations
        .iter()
        .map(|it| it.step1.shards.len())
        .max()
        .unwrap_or(0);
    let mut sums = vec![0f64; width];
    for it in &trace.iterations {
        for (i, d) in it.step1.shards.iter().enumerate() {
            sums[i] += d.as_secs_f64();
        }
    }
    sums
}

fn secs_array(values: &[f64]) -> String {
    let body: Vec<String> = values.iter().map(|v| format!("{v:.4}")).collect();
    format!("[{}]", body.join(","))
}

/// One gate measurement: best-of-[`GATE_REPS`] 1-shard seconds with
/// the phase breakdown of the best repetition.
fn time_gate(instance: &VariantInstance) -> (f64, PhaseTimings, SpannerRun) {
    let cfg = EngineConfig::seeded(7);
    let mut best = f64::INFINITY;
    let mut best_phases = PhaseTimings::default();
    let mut last = None;
    for _ in 0..GATE_REPS {
        let t0 = Instant::now();
        let (run, phases) = run_variant_timed(instance, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            best_phases = phases;
        }
        last = Some(run);
    }
    (best, best_phases, last.expect("GATE_REPS >= 1"))
}

/// A baseline row parsed from `BENCH_baseline.json`.
struct BaselineRow {
    variant: String,
    vertices: u64,
    edges: u64,
    seconds: f64,
}

fn load_baseline(path: &str) -> Option<Vec<BaselineRow>> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = Json::parse(&text)
        .unwrap_or_else(|e| panic!("exp_engine_scaling: {path} is not valid JSON: {e}"));
    let rows = json
        .get("rows")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("exp_engine_scaling: {path} has no `rows` array"));
    Some(
        rows.iter()
            .map(|r| BaselineRow {
                variant: r
                    .get("variant")
                    .and_then(Json::as_str)
                    .expect("baseline row missing `variant`")
                    .to_owned(),
                vertices: r
                    .get("vertices")
                    .and_then(Json::as_u64)
                    .expect("baseline row missing `vertices`"),
                edges: r
                    .get("edges")
                    .and_then(Json::as_u64)
                    .expect("baseline row missing `edges`"),
                seconds: r
                    .get("seconds")
                    .and_then(Json::as_f64)
                    .expect("baseline row missing `seconds`"),
            })
            .collect(),
    )
}

fn phases_json(p: &PhaseTimings) -> String {
    format!(
        concat!(
            "{{\"step1\":{:.4},\"step3\":{:.4},",
            "\"step4\":{:.4},\"coverage\":{:.4}}}"
        ),
        p.step1.as_secs_f64(),
        p.step3.as_secs_f64(),
        p.step4.as_secs_f64(),
        p.coverage.as_secs_f64(),
    )
}

/// Runs the single-core gate. Returns the JSON rows plus any `--ci`
/// failures.
fn run_gate(args: &Args) -> (String, Vec<String>) {
    let baseline = load_baseline(&args.baseline);
    if baseline.is_none() && !args.record_baseline {
        eprintln!(
            "exp_engine_scaling: no baseline at {} — reporting absolute times only",
            args.baseline
        );
    }
    let mut rows = String::new();
    let mut baseline_rows = String::new();
    let mut passing = 0usize;
    let mut failures = Vec::new();

    for (name, instance) in gate_instances() {
        // Identity across shard counts first: the gate times nothing
        // it has not proven byte-identical.
        let (secs, phases, run) = time_gate(&instance);
        assert!(run.converged, "{name}: gate run did not converge");
        for shards in GATE_IDENTITY_SHARDS {
            if shards == 1 {
                continue;
            }
            let cfg = EngineConfig {
                num_shards: shards,
                ..EngineConfig::seeded(7)
            };
            let other = run_variant(&instance, &cfg);
            assert_eq!(
                other.spanner, run.spanner,
                "{name}: gate spanner differs at {shards} shards"
            );
            assert_eq!(
                other.stats, run.stats,
                "{name}: gate iteration stats differ at {shards} shards"
            );
            assert_eq!(other.star_fallbacks, run.star_fallbacks);
        }

        let base = baseline.as_ref().and_then(|b| {
            b.iter().find(|r| r.variant == name).map(|r| {
                assert_eq!(
                    (r.vertices, r.edges),
                    (instance.num_vertices() as u64, instance.num_edges() as u64),
                    "{name}: baseline instance shape differs — re-record {}",
                    args.baseline
                );
                r.seconds
            })
        });
        let speedup = base.map(|b| b / secs);
        if let Some(s) = speedup {
            if s >= GATE_MIN_SPEEDUP {
                passing += 1;
            }
        }

        if !rows.is_empty() {
            rows.push(',');
            baseline_rows.push(',');
        }
        rows.push_str(&format!(
            concat!(
                "{{\"variant\":\"{}\",\"vertices\":{},\"edges\":{},",
                "\"seconds\":{:.4},\"baseline_seconds\":{},",
                "\"single_core_speedup\":{},\"iterations\":{},\"phases\":{}}}"
            ),
            name,
            instance.num_vertices(),
            instance.num_edges(),
            secs,
            base.map_or("null".to_owned(), |b| format!("{b:.4}")),
            speedup.map_or("null".to_owned(), |s| format!("{s:.2}")),
            run.iterations,
            phases_json(&phases),
        ));
        baseline_rows.push_str(&format!(
            concat!(
                "{{\"variant\":\"{}\",\"vertices\":{},\"edges\":{},",
                "\"seconds\":{:.4},\"iterations\":{},\"phases\":{}}}"
            ),
            name,
            instance.num_vertices(),
            instance.num_edges(),
            secs,
            run.iterations,
            phases_json(&phases),
        ));
        eprintln!(
            "exp_engine_scaling: gate {name:>13} n={:<4} m={:<6} {secs:.3}s{}",
            instance.num_vertices(),
            instance.num_edges(),
            speedup.map_or(String::new(), |s| format!(" ({s:.2}x vs baseline)")),
        );
    }

    if args.record_baseline {
        let text = format!(
            "{{\"experiment\":\"exp_engine_scaling_baseline\",\"rows\":[{baseline_rows}]}}\n"
        );
        std::fs::write(&args.baseline, text)
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.baseline));
        eprintln!("exp_engine_scaling: baseline recorded to {}", args.baseline);
    } else if baseline.is_some() && passing < GATE_MIN_VARIANTS {
        failures.push(format!(
            "single-core gate: only {passing} of 4 variants reached \
             {GATE_MIN_SPEEDUP}x over {} (need {GATE_MIN_VARIANTS})",
            args.baseline
        ));
    } else if baseline.is_none() && args.ci {
        failures.push(format!(
            "single-core gate: baseline {} missing in --ci mode",
            args.baseline
        ));
    }
    (rows, failures)
}

/// The instrumentation-overhead check: per-section/per-shard timing
/// collection (`collect_timings`) must cost < [`OVERHEAD_MAX_RATIO`]
/// single-core on the gate instances. Best-of-[`GATE_REPS`] per
/// configuration; results are asserted byte-identical across the
/// toggle before any timing is reported.
fn run_overhead_check() -> (String, Vec<String>) {
    let mut rows = String::new();
    let mut failures = Vec::new();
    for (name, instance) in gate_instances() {
        let mut best = [f64::INFINITY; 2];
        let mut runs: [Option<SpannerRun>; 2] = [None, None];
        for (slot, collect) in [false, true].into_iter().enumerate() {
            let cfg = EngineConfig {
                collect_timings: collect,
                ..EngineConfig::seeded(7)
            };
            for _ in 0..GATE_REPS {
                let t0 = Instant::now();
                let run = run_variant(&instance, &cfg);
                best[slot] = best[slot].min(t0.elapsed().as_secs_f64());
                runs[slot] = Some(run);
            }
        }
        let (off_run, on_run) = (
            runs[0].take().expect("GATE_REPS >= 1"),
            runs[1].take().expect("GATE_REPS >= 1"),
        );
        assert_eq!(
            off_run.spanner, on_run.spanner,
            "{name}: collect_timings changed the spanner"
        );
        assert_eq!(
            off_run.stats, on_run.stats,
            "{name}: collect_timings changed iteration stats"
        );
        let (off, on) = (best[0], best[1]);
        let ratio = on / off;
        if !rows.is_empty() {
            rows.push(',');
        }
        rows.push_str(&format!(
            concat!(
                "{{\"variant\":\"{}\",\"off_seconds\":{:.4},",
                "\"on_seconds\":{:.4},\"overhead_ratio\":{:.4}}}"
            ),
            name, off, on, ratio,
        ));
        eprintln!(
            "exp_engine_scaling: overhead {name:>13} off={off:.3}s on={on:.3}s ({ratio:.3}x)"
        );
        if on > OVERHEAD_MAX_RATIO * off + OVERHEAD_SLACK_SECS {
            failures.push(format!(
                "{name}: collect_timings costs {on:.3}s vs {off:.3}s off \
                 (allowed {OVERHEAD_MAX_RATIO:.2}x + {OVERHEAD_SLACK_SECS:.0e}s)"
            ));
        }
    }
    (rows, failures)
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows = String::new();
    let mut failures: Vec<String> = Vec::new();

    for (name, instance) in instances(args.n) {
        let (base_secs, base_phases, base_run) = time_run(&instance, 1, args.reps);
        assert!(base_run.converged, "{name}: run did not converge");
        let mut t4 = base_secs;
        for shards in SHARD_COUNTS {
            let (secs, phases, run) = if shards == 1 {
                (base_secs, base_phases, base_run.clone())
            } else {
                time_run(&instance, shards, args.reps)
            };
            // The determinism contract, asserted before any timing is
            // reported: identical spanner bytes and identical
            // per-iteration accounting at every shard count.
            assert_eq!(
                run.spanner, base_run.spanner,
                "{name}: spanner differs at {shards} shards"
            );
            assert_eq!(
                run.stats, base_run.stats,
                "{name}: iteration stats differ at {shards} shards"
            );
            assert_eq!(run.star_fallbacks, base_run.star_fallbacks);
            if shards == 4 {
                t4 = secs;
            }
            let speedup = base_secs / secs;
            if !rows.is_empty() {
                rows.push(',');
            }
            rows.push_str(&format!(
                concat!(
                    "{{\"variant\":\"{}\",\"vertices\":{},\"edges\":{},",
                    "\"shards\":{},\"seconds\":{:.4},\"speedup\":{:.2},",
                    "\"iterations\":{},\"phases\":{},",
                    "\"step1_shard_seconds\":{}}}"
                ),
                name,
                instance.num_vertices(),
                instance.num_edges(),
                shards,
                secs,
                speedup,
                run.iterations,
                phases_json(&phases),
                secs_array(&step1_shard_secs(&run)),
            ));
            eprintln!(
                "exp_engine_scaling: {name:>13} n={:<4} shards={shards}: {:.3}s ({:.2}x)",
                instance.num_vertices(),
                secs,
                speedup,
            );
        }
        if t4 > args.tolerance * base_secs + ABS_SLACK_SECS {
            failures.push(format!(
                "{name}: 4-shard run {t4:.3}s exceeds {:.2}x the 1-shard {base_secs:.3}s (+{ABS_SLACK_SECS:.0e}s slack)",
                args.tolerance
            ));
        }
    }

    let (gate_rows, gate_failures) = run_gate(&args);
    failures.extend(gate_failures);

    let (overhead_rows, overhead_failures) = run_overhead_check();
    failures.extend(overhead_failures);

    println!(
        concat!(
            "{{\"experiment\":\"exp_engine_scaling\",\"n\":{},\"cores\":{},",
            "\"ci\":{},\"tolerance\":{:.2},\"reps\":{},\"rows\":[{}],",
            "\"gate\":[{}],\"overhead\":[{}]}}"
        ),
        args.n, cores, args.ci, args.tolerance, args.reps, rows, gate_rows, overhead_rows,
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("exp_engine_scaling: REGRESSION: {f}");
        }
        if args.ci {
            std::process::exit(1);
        }
    }
}
