//! S2 — single-job shard scaling: wall-clock speedup of one
//! `run_engine` call at 1/2/4/8 in-iteration shards, for all four
//! variants, with a byte-identity check across every shard count.
//!
//! PR 2's service made *many small jobs* fast; this experiment tracks
//! the complementary axis — one big job using every core via
//! `EngineConfig::num_shards`. Because the engine is
//! shard-count-deterministic, the experiment asserts that the spanner,
//! iteration count, and per-iteration stats are identical for every
//! shard count before reporting any timing: a speedup that changed the
//! answer would be a bug, not a result.
//!
//! Output is one JSON object on stdout (machine-readable; CI uploads
//! it as an artifact) and a human-readable summary on stderr.
//!
//! ```text
//! cargo run --release -p dsa-bench --bin exp_engine_scaling -- \
//!     [n] [--ci] [--tolerance F] [--reps K]
//! ```
//!
//! `--ci` shrinks the instances (CI machines are small and shared) and
//! *enforces* the no-regression bound: the run fails if the 4-shard
//! time exceeds `tolerance ×` the 1-shard time *plus an absolute
//! slack* ([`ABS_SLACK_SECS`]) for any variant — the guard that keeps
//! sharding overhead from silently rotting. The absolute slack exists
//! because the smallest CI instances finish in single-digit
//! milliseconds, where scheduler noise alone can exceed any ratio;
//! a genuine overhead regression dwarfs 30 ms, noise does not. On a
//! multi-core machine the interesting number is the speedup column; on
//! a 1-core container the check still bounds the overhead.

use std::time::Instant;

use dsa_core::dist::{run_variant, EngineConfig, SpannerRun, VariantInstance};
use dsa_graphs::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Absolute slack for the `--ci` regression gate: sub-10ms baselines
/// cannot be held to a pure ratio on shared CI machines.
const ABS_SLACK_SECS: f64 = 0.030;

struct Args {
    n: usize,
    ci: bool,
    tolerance: f64,
    reps: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        n: 0,
        ci: false,
        tolerance: 1.5,
        reps: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ci" => args.ci = true,
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a value");
                args.tolerance = v.parse().expect("--tolerance takes a float");
            }
            "--reps" => {
                let v = it.next().expect("--reps needs a value");
                args.reps = v.parse().expect("--reps takes a count");
            }
            other => {
                args.n = other.parse().unwrap_or_else(|_| {
                    eprintln!("usage: exp_engine_scaling [n] [--ci] [--tolerance F] [--reps K]");
                    std::process::exit(2);
                })
            }
        }
    }
    if args.n == 0 {
        args.n = if args.ci { 96 } else { 512 };
    }
    if args.reps == 0 {
        // Small CI instances are noisy; best-of-3 steadies the check.
        args.reps = if args.ci { 3 } else { 1 };
    }
    args
}

/// The instances under test: every variant sized so one run is heavy
/// enough to time but the whole sweep stays minutes, not hours.
fn instances(n: usize) -> Vec<(&'static str, VariantInstance)> {
    let mut rng = StdRng::seed_from_u64(2018);
    let avg_deg = |nv: usize, d: f64| (d / nv as f64).min(0.9);
    let g = gen::gnp_connected(n, avg_deg(n, 12.0), &mut rng);
    let weights = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let nd = (n / 4).max(8);
    let d = gen::random_digraph_connected(nd, avg_deg(nd, 8.0), &mut rng);
    let ncs = (n / 2).max(8);
    let cs = gen::gnp_connected(ncs, avg_deg(ncs, 10.0), &mut rng);
    let (clients, servers) = gen::client_server_split(&cs, 0.6, 0.6, &mut rng);
    vec![
        (
            "undirected",
            VariantInstance::Undirected { graph: g.clone() },
        ),
        ("directed", VariantInstance::Directed { graph: d }),
        ("weighted", VariantInstance::Weighted { graph: g, weights }),
        (
            "client-server",
            VariantInstance::ClientServer {
                graph: cs,
                clients,
                servers,
            },
        ),
    ]
}

/// Best-of-`reps` wall-clock seconds for one configuration, plus the
/// (identical) run from the last repetition.
fn time_run(instance: &VariantInstance, shards: usize, reps: usize) -> (f64, SpannerRun) {
    let cfg = EngineConfig {
        num_shards: shards,
        ..EngineConfig::seeded(7)
    };
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let run = run_variant(instance, &cfg);
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(run);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let args = parse_args();
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let mut rows = String::new();
    let mut failures: Vec<String> = Vec::new();

    for (name, instance) in instances(args.n) {
        let (base_secs, base_run) = time_run(&instance, 1, args.reps);
        assert!(base_run.converged, "{name}: run did not converge");
        let mut t4 = base_secs;
        for shards in SHARD_COUNTS {
            let (secs, run) = if shards == 1 {
                (base_secs, base_run.clone())
            } else {
                time_run(&instance, shards, args.reps)
            };
            // The determinism contract, asserted before any timing is
            // reported: identical spanner bytes and identical
            // per-iteration accounting at every shard count.
            assert_eq!(
                run.spanner, base_run.spanner,
                "{name}: spanner differs at {shards} shards"
            );
            assert_eq!(
                run.stats, base_run.stats,
                "{name}: iteration stats differ at {shards} shards"
            );
            assert_eq!(run.star_fallbacks, base_run.star_fallbacks);
            if shards == 4 {
                t4 = secs;
            }
            let speedup = base_secs / secs;
            if !rows.is_empty() {
                rows.push(',');
            }
            rows.push_str(&format!(
                concat!(
                    "{{\"variant\":\"{}\",\"vertices\":{},\"edges\":{},",
                    "\"shards\":{},\"seconds\":{:.4},\"speedup\":{:.2},",
                    "\"iterations\":{}}}"
                ),
                name,
                instance.num_vertices(),
                instance.num_edges(),
                shards,
                secs,
                speedup,
                run.iterations,
            ));
            eprintln!(
                "exp_engine_scaling: {name:>13} n={:<4} shards={shards}: {:.3}s ({:.2}x)",
                instance.num_vertices(),
                secs,
                speedup,
            );
        }
        if t4 > args.tolerance * base_secs + ABS_SLACK_SECS {
            failures.push(format!(
                "{name}: 4-shard run {t4:.3}s exceeds {:.2}x the 1-shard {base_secs:.3}s (+{ABS_SLACK_SECS:.0e}s slack)",
                args.tolerance
            ));
        }
    }

    println!(
        concat!(
            "{{\"experiment\":\"exp_engine_scaling\",\"n\":{},\"cores\":{},",
            "\"ci\":{},\"tolerance\":{:.2},\"reps\":{},\"rows\":[{}]}}"
        ),
        args.n, cores, args.ci, args.tolerance, args.reps, rows,
    );

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("exp_engine_scaling: REGRESSION: {f}");
        }
        if args.ci {
            std::process::exit(1);
        }
    }
}
