//! E10 — Theorem 1.2: the (1+ε)-approximation in LOCAL, compared with
//! the exact optimum on small graphs, plus the network decomposition's
//! color count.

#![forbid(unsafe_code)]

use dsa_bench::{banner, f2, Table};
use dsa_core::one_plus_eps::{linial_saks, one_plus_eps_spanner};
use dsa_core::seq::exact_min_k_spanner;
use dsa_core::verify::is_k_spanner;
use dsa_graphs::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(10);

    banner(
        "E10a",
        "(1+ε) vs exact optimum — ratio must stay ≤ 1+ε (small instances; the inner oracle is exponential, as the LOCAL model allows)",
    );
    let mut t = Table::new([
        "n",
        "m",
        "k",
        "ε",
        "(1+ε) |H|",
        "exact |H*|",
        "ratio",
        "≤ 1+ε",
        "colors",
        "max r_v",
    ]);
    for &(n, p, k, eps) in &[
        (9usize, 0.35, 2usize, 0.5f64),
        (10, 0.30, 2, 0.5),
        (11, 0.25, 2, 1.0),
        (12, 0.22, 2, 2.0),
        (9, 0.30, 3, 1.0),
        (10, 0.25, 3, 2.0),
    ] {
        let g = gen::gnp_connected(n, p, &mut rng);
        let run = one_plus_eps_spanner(&g, k, eps, 1);
        assert!(is_k_spanner(&g, &run.spanner, k));
        let opt = exact_min_k_spanner(&g, k).len();
        let ratio = run.spanner.len() as f64 / opt as f64;
        t.row([
            n.to_string(),
            g.num_edges().to_string(),
            k.to_string(),
            f2(eps),
            run.spanner.len().to_string(),
            opt.to_string(),
            f2(ratio),
            (ratio <= 1.0 + eps + 1e-9).to_string(),
            run.colors.to_string(),
            run.max_radius.to_string(),
        ]);
    }
    t.print();

    banner(
        "E10b",
        "Linial–Saks decomposition of G^r: colors stay O(log n) as n grows",
    );
    let mut t = Table::new(["n", "r", "colors", "log2 n"]);
    for n in [32usize, 64, 128, 256] {
        let g = gen::gnp_connected(n, 3.0 / n as f64, &mut rng);
        let d = linial_saks(&g, 2, 7);
        t.row([
            n.to_string(),
            "2".to_string(),
            d.num_colors.to_string(),
            f2((n as f64).log2()),
        ]);
    }
    t.print();
}
