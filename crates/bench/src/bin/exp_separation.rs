//! E11 E12 — the separations the paper draws.
//!
//! E11: undirected CONGEST is easy — Baswana–Sen (2k−1)-spanners give
//! an `O(n^{1/k})` approximation in k rounds, while the directed
//! problem needs Ω̃(√n) rounds (Theorem 1.1). We measure the undirected
//! side's sparsity.
//!
//! E12: the Section-4 LOCAL algorithm is *not* CONGEST: its messages
//! grow with Δ (the O(Δ) overhead of Section 1.3), whereas the MDS
//! protocol's stay constant. We measure both on the same graphs.

#![forbid(unsafe_code)]

use dsa_bench::{banner, f2, Table};
use dsa_core::protocol::run_two_spanner_protocol;
use dsa_core::sparse::baswana_sen;
use dsa_core::verify::is_k_spanner;
use dsa_graphs::gen;
use dsa_lowerbounds::two_party::{predicted_rounds_deterministic, predicted_rounds_randomized};
use dsa_mds::run_mds_protocol;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    banner(
        "E11",
        "undirected (2k−1)-spanners via Baswana–Sen: size ≈ O(k·n^{1+1/k}) ⇒ O(n^{1/k})-approx in k CONGEST rounds; contrast with the directed Ω̃ bounds",
    );
    let mut t = Table::new([
        "n",
        "m",
        "k",
        "|H|",
        "k·n^{1+1/k}",
        "|H|/(n-1)",
        "n^{1/k}",
        "Ω̃ rand (directed)",
        "Ω̃ det (directed)",
    ]);
    for &(n, p) in &[(256usize, 0.20), (512, 0.12), (1024, 0.06)] {
        let g = gen::gnp_connected(n, p, &mut rng);
        for k in [2usize, 3, 4] {
            let run = baswana_sen(&g, k, (n + k) as u64);
            assert!(is_k_spanner(&g, &run.spanner, 2 * k - 1));
            let nf = n as f64;
            t.row([
                n.to_string(),
                g.num_edges().to_string(),
                k.to_string(),
                run.spanner.len().to_string(),
                f2(k as f64 * nf.powf(1.0 + 1.0 / k as f64)),
                f2(run.spanner.len() as f64 / (nf - 1.0)),
                f2(nf.powf(1.0 / k as f64)),
                f2(predicted_rounds_randomized(n, nf.powf(1.0 / k as f64))),
                f2(predicted_rounds_deterministic(n, nf.powf(1.0 / k as f64))),
            ]);
        }
    }
    t.print();

    banner(
        "E12",
        "CONGEST overhead: 2-spanner protocol messages grow Θ(Δ) words; MDS stays O(1) — measured on identical graphs",
    );
    let mut t = Table::new([
        "n",
        "Δ",
        "2-spanner max msg (w)",
        "mds max msg (w)",
        "2-spanner rounds",
        "mds rounds",
    ]);
    for &(n, p) in &[(32usize, 0.2), (64, 0.15), (96, 0.12), (128, 0.10)] {
        let g = gen::gnp_connected(n, p, &mut rng);
        let sp = run_two_spanner_protocol(&g, 4, 200_000);
        assert!(sp.completed && is_k_spanner(&g, &sp.spanner, 2));
        let mds = run_mds_protocol(&g, 4, 200_000);
        assert!(mds.completed);
        assert_eq!(mds.metrics.cap_violations, Some(0));
        t.row([
            n.to_string(),
            g.max_degree().to_string(),
            sp.metrics.max_message_words.to_string(),
            mds.metrics.max_message_words.to_string(),
            sp.metrics.rounds.to_string(),
            mds.metrics.rounds.to_string(),
        ]);
    }
    t.print();
    println!("(2-spanner max message ≈ Δ+1 words confirms the Section 1.3 O(Δ) factor;");
    println!(" MDS never exceeds 2 words = O(log n) bits, i.e. genuinely CONGEST)\n");

    banner(
        "E12b",
        "direct CONGEST implementation via message fragmentation: identical output, rounds multiplied by the Θ(Δ) slot factor",
    );
    let mut t = Table::new([
        "n",
        "Δ",
        "LOCAL rounds",
        "CONGEST rounds",
        "slot factor",
        "same spanner",
        "cap viol",
    ]);
    for &(n, p) in &[(24usize, 0.3), (48, 0.2), (64, 0.15)] {
        let g = gen::gnp_connected(n, p, &mut rng);
        let local = run_two_spanner_protocol(&g, 9, 500_000);
        let (congest, slots) =
            dsa_core::protocol::run_two_spanner_protocol_congest(&g, 9, 5_000_000, 2);
        assert!(local.completed && congest.completed);
        t.row([
            n.to_string(),
            g.max_degree().to_string(),
            local.metrics.rounds.to_string(),
            congest.metrics.rounds.to_string(),
            slots.to_string(),
            (local.spanner == congest.spanner).to_string(),
            format!("{:?}", congest.metrics.cap_violations.unwrap()),
        ]);
    }
    t.print();
}
