//! Convenience driver: runs every experiment binary in sequence
//! (resolving siblings next to the current executable), printing each
//! one's tables with a header. `cargo run --release -p dsa-bench --bin
//! exp_all` regenerates everything EXPERIMENTS.md archives.

#![forbid(unsafe_code)]

use std::process::Command;

const ORDER: &[(&str, &str)] = &[
    (
        "exp_constructions",
        "F1 F2 F3 — structural validation of the figures",
    ),
    ("exp_two_spanner", "E1-E4 — Theorems 1.3, 4.9, 4.12, 4.15"),
    ("exp_mds", "E5 — Theorem 5.1 (+ expectation-only contrast)"),
    (
        "exp_hardness",
        "E6-E9 — Theorems 1.1, 2.8, 2.9/2.10, Section 3",
    ),
    ("exp_one_plus_eps", "E10 — Theorem 1.2"),
    ("exp_separation", "E11 E12 — the separations"),
    ("exp_ablations", "A1-A3 — Section-4 design choices"),
];

fn main() {
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe directory");
    let mut failures = 0;
    for (bin, what) in ORDER {
        println!("================================================================");
        println!("== {bin} — {what}");
        println!("================================================================\n");
        let path = dir.join(bin);
        if !path.exists() {
            eprintln!(
                "(binary {path:?} not built — run `cargo build --release -p dsa-bench` first)\n"
            );
            failures += 1;
            continue;
        }
        let status = Command::new(&path).status().expect("spawn sibling binary");
        if !status.success() {
            eprintln!("({bin} exited with {status})\n");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}
