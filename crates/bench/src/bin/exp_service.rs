//! S1 — `dsa-service` load test: served-jobs/sec under a duplicate-heavy
//! mix versus the sequential one-job-at-a-time baseline.
//!
//! The workload draws a pool of distinct seeded jobs across all four
//! variants, then builds a request stream in which at least half the
//! submissions repeat an earlier job (the serving sweet spot: real
//! traffic re-queries the same graphs). The baseline executes the
//! stream sequentially through `run_variant` with no cache; the
//! service run submits the same stream from multiple client threads
//! against an 8-worker [`dsa_service::Service`].
//!
//! A third phase measures the persistent store: the same stream is
//! replayed through a service whose results land in a disk-backed
//! `cache_dir`, the service is dropped ("restart"), and a fresh
//! service over the same directory re-serves the stream — reporting
//! the warm-start hit rate (it must be 1.0: every job answered from
//! the warm LRU or the verified disk log, zero engine re-runs).
//!
//! Output is one JSON object (machine-readable, used by the
//! acceptance check "speedup >= 3x with 8 workers and >= 50%
//! duplicates") followed by a human-readable summary on stderr.
//!
//! ```text
//! cargo run --release -p dsa-bench --bin exp_service [jobs] [unique] [workers]
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Instant;

use dsa_core::dist::{run_variant, VariantInstance};
use dsa_graphs::gen;
use dsa_service::{JobSpec, Service, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn distinct_jobs(unique: usize, rng: &mut StdRng) -> Vec<JobSpec> {
    (0..unique)
        .map(|i| {
            let n = 48 + (i % 5) * 8;
            let instance = match i % 4 {
                0 => VariantInstance::Undirected {
                    graph: gen::gnp_connected(n, 0.18, rng),
                },
                1 => VariantInstance::Directed {
                    graph: gen::random_digraph_connected(n / 2, 0.1, rng),
                },
                2 => {
                    let graph = gen::gnp_connected(n, 0.16, rng);
                    let weights = gen::random_weights(graph.num_edges(), 0, 9, rng);
                    VariantInstance::Weighted { graph, weights }
                }
                _ => {
                    let graph = gen::gnp_connected(n, 0.2, rng);
                    let (clients, servers) = gen::client_server_split(&graph, 0.6, 0.6, rng);
                    VariantInstance::ClientServer {
                        graph,
                        clients,
                        servers,
                    }
                }
            };
            JobSpec::new(instance, i as u64)
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let unique: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    assert!(unique >= 1 && jobs >= unique, "need jobs >= unique >= 1");

    let mut rng = StdRng::seed_from_u64(2018);
    let pool = distinct_jobs(unique, &mut rng);
    // Request stream: every distinct job once, the rest duplicates
    // drawn uniformly — a >= 50% duplicate mix by construction.
    let stream: Vec<usize> = (0..unique)
        .chain((unique..jobs).map(|_| rng.gen_range(0..unique)))
        .collect();
    let dup_fraction = (jobs - unique) as f64 / jobs as f64;

    // Sequential one-job-at-a-time baseline: no cache, no overlap.
    let t0 = Instant::now();
    let mut baseline_edges = 0usize;
    for &i in &stream {
        let run = run_variant(&pool[i].instance, &pool[i].config);
        assert!(run.converged);
        baseline_edges += run.spanner.len();
    }
    let seq_secs = t0.elapsed().as_secs_f64();

    // The service: same stream, submitted from client threads.
    let service = Arc::new(Service::new(&ServiceConfig {
        workers,
        queue_capacity: jobs.max(64),
        cache_capacity: unique.max(64),
        ..ServiceConfig::default()
    }));
    let client_threads = workers.clamp(2, 8);
    let t0 = Instant::now();
    let mut served_edges = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in stream.chunks(jobs.div_ceil(client_threads)) {
            let service = Arc::clone(&service);
            let pool = &pool;
            handles.push(scope.spawn(move || {
                // Pipeline: submit the whole chunk, then collect — the
                // point of a batched service over one-at-a-time calls.
                let submitted: Vec<_> = chunk
                    .iter()
                    .map(|&i| service.submit(&pool[i]).expect("submit"))
                    .collect();
                let mut edges = 0usize;
                for handle in submitted {
                    let resp = handle.wait().expect("service run");
                    assert!(resp.converged);
                    edges += resp.spanner.len();
                }
                edges
            }));
        }
        for h in handles {
            served_edges += h.join().expect("client thread");
        }
    });
    let svc_secs = t0.elapsed().as_secs_f64();

    // Same jobs, same seeds => byte-for-byte identical spanners, so
    // the edge totals must agree exactly.
    assert_eq!(baseline_edges, served_edges, "service changed results");

    // Warm-restart phase: fill a persistent store, "restart" (drop the
    // service), and re-serve the whole stream from the same directory.
    let store_dir = std::env::temp_dir().join(format!("exp-service-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let persistent_cfg = ServiceConfig {
        workers,
        queue_capacity: jobs.max(64),
        // Smaller than the record count so part of the warm stream
        // must travel the verified disk path, not just the warm LRU.
        cache_capacity: (unique / 2).max(1),
        cache_dir: Some(store_dir.clone()),
        ..ServiceConfig::default()
    };
    {
        let filler = Service::new(&persistent_cfg);
        for &i in &stream {
            assert!(filler.run(&pool[i]).expect("fill run").converged);
        }
        assert_eq!(filler.metrics().store_records, unique as u64);
    }
    let warm_service = Service::new(&persistent_cfg);
    let t0 = Instant::now();
    let mut warm_edges = 0usize;
    for &i in &stream {
        warm_edges += warm_service.run(&pool[i]).expect("warm run").spanner.len();
    }
    let warm_secs = t0.elapsed().as_secs_f64();
    assert_eq!(baseline_edges, warm_edges, "restart changed results");
    let wm = warm_service.metrics();
    assert_eq!(wm.cache_misses, 0, "warm restart re-ran the engine");
    assert!(wm.disk_hits > 0, "warm restart never touched the disk log");
    let warm_hit_rate = wm.cache_hits as f64 / wm.jobs_submitted as f64;
    let _ = std::fs::remove_dir_all(&store_dir);

    let m = service.metrics();
    let speedup = seq_secs / svc_secs;
    println!(
        concat!(
            "{{\"experiment\":\"exp_service\",\"jobs\":{},\"unique\":{},",
            "\"dup_fraction\":{:.3},\"workers\":{},\"client_threads\":{},",
            "\"seq_seconds\":{:.4},\"service_seconds\":{:.4},\"speedup\":{:.2},",
            "\"seq_jobs_per_sec\":{:.1},\"service_jobs_per_sec\":{:.1},",
            "\"cache_hit_rate\":{:.3},\"cache_hits\":{},\"cache_misses\":{},",
            "\"coalesced\":{},\"p50_latency_us\":{},\"p95_latency_us\":{},",
            "\"engine_local_rounds\":{},",
            "\"warm_hit_rate\":{:.3},\"warm_disk_hits\":{},\"warm_store_records\":{},",
            "\"warm_seconds\":{:.4},\"warm_jobs_per_sec\":{:.1}}}"
        ),
        jobs,
        unique,
        dup_fraction,
        workers,
        client_threads,
        seq_secs,
        svc_secs,
        speedup,
        jobs as f64 / seq_secs,
        jobs as f64 / svc_secs,
        m.cache_hit_rate,
        m.cache_hits,
        m.cache_misses,
        m.coalesced,
        m.p50_latency_us,
        m.p95_latency_us,
        m.engine_local_rounds,
        warm_hit_rate,
        wm.disk_hits,
        wm.store_records,
        warm_secs,
        jobs as f64 / warm_secs,
    );
    eprintln!(
        "exp_service: {jobs} jobs ({unique} unique, {:.0}% duplicates), {workers} workers: \
         {:.2}x over sequential ({:.1} -> {:.1} jobs/s), cache hit rate {:.0}%; \
         warm restart: {:.0}% hits ({} from disk), {:.1} jobs/s",
        dup_fraction * 100.0,
        speedup,
        jobs as f64 / seq_secs,
        jobs as f64 / svc_secs,
        m.cache_hit_rate * 100.0,
        warm_hit_rate * 100.0,
        wm.disk_hits,
        jobs as f64 / warm_secs,
    );
}
