//! S2 — HTTP facade load test: requests/sec through `POST /v1/jobs`
//! under concurrent keep-alive connections with a duplicate-heavy mix.
//!
//! The workload reuses the `exp_service` shape — a pool of distinct
//! seeded jobs across all four variants, then a request stream in
//! which at least half the submissions repeat an earlier job — but
//! drives it through the real HTTP/1.1 frontend: every request is
//! encoded to JSON, framed as HTTP, parsed by the server, routed into
//! the shared [`dsa_service::Service`], and the response body decoded
//! back. Concurrency comes from client *connections* (HTTP is one
//! request/response at a time per connection), each pipelining its
//! chunk of the stream over keep-alive.
//!
//! Before any timing is reported, the run asserts the facade's
//! correctness contract: every response converged, duplicate
//! submissions of one spec returned **byte-identical** bodies, and
//! the `/v1/metrics` invariant `jobs = hits + misses + coalesced`
//! holds. Output is one JSON object on stdout (the CI artifact)
//! followed by a human-readable summary on stderr.
//!
//! ```text
//! cargo run --release -p dsa-bench --bin exp_http [jobs] [unique] [workers]
//! ```

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dsa_core::dist::VariantInstance;
use dsa_graphs::gen;
use dsa_runtime::json::Json;
use dsa_service::http::HttpClient;
use dsa_service::{HttpServer, JobSpec, Service, ServiceConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn distinct_jobs(unique: usize, rng: &mut StdRng) -> Vec<JobSpec> {
    (0..unique)
        .map(|i| {
            let n = 40 + (i % 5) * 8;
            let instance = match i % 4 {
                0 => VariantInstance::Undirected {
                    graph: gen::gnp_connected(n, 0.18, rng),
                },
                1 => VariantInstance::Directed {
                    graph: gen::random_digraph_connected(n / 2, 0.1, rng),
                },
                2 => {
                    let graph = gen::gnp_connected(n, 0.16, rng);
                    let weights = gen::random_weights(graph.num_edges(), 0, 9, rng);
                    VariantInstance::Weighted { graph, weights }
                }
                _ => {
                    let graph = gen::gnp_connected(n, 0.2, rng);
                    let (clients, servers) = gen::client_server_split(&graph, 0.6, 0.6, rng);
                    VariantInstance::ClientServer {
                        graph,
                        clients,
                        servers,
                    }
                }
            };
            JobSpec::new(instance, i as u64)
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let jobs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let unique: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    assert!(unique >= 1 && jobs >= unique, "need jobs >= unique >= 1");

    let mut rng = StdRng::seed_from_u64(2018);
    let pool = distinct_jobs(unique, &mut rng);
    // Request stream: every distinct job once, the rest duplicates
    // drawn uniformly — a >= 50% duplicate mix by construction.
    let stream: Vec<usize> = (0..unique)
        .chain((unique..jobs).map(|_| rng.gen_range(0..unique)))
        .collect();
    let dup_fraction = (jobs - unique) as f64 / jobs as f64;

    let service = Arc::new(Service::new(&ServiceConfig {
        workers,
        queue_capacity: jobs.max(64),
        cache_capacity: unique.max(64),
        ..ServiceConfig::default()
    }));
    let server =
        HttpServer::with_service("127.0.0.1:0", Arc::clone(&service)).expect("bind http server");
    let addr = server.addr();

    // Byte-identity ledger: first body seen per pool index; every
    // later duplicate must match it exactly.
    let first_body: Mutex<HashMap<usize, Vec<u8>>> = Mutex::new(HashMap::new());
    let client_connections = workers.clamp(2, 8);
    let t0 = Instant::now();
    let mut served_edges = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in stream.chunks(jobs.div_ceil(client_connections)) {
            let pool = &pool;
            let first_body = &first_body;
            handles.push(scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let mut edges = 0usize;
                for &i in chunk {
                    let (status, body) = client.run_raw(&pool[i]).expect("http run");
                    assert_eq!(
                        status,
                        200,
                        "job rejected: {}",
                        String::from_utf8_lossy(&body)
                    );
                    {
                        let mut ledger = first_body.lock().expect("ledger lock");
                        match ledger.get(&i) {
                            None => {
                                ledger.insert(i, body.clone());
                            }
                            Some(first) => assert_eq!(
                                first, &body,
                                "duplicate submission of job {i} returned different bytes"
                            ),
                        }
                    }
                    let resp = dsa_service::http::decode_job_response(&body).expect("decode");
                    assert!(resp.converged, "job {i} did not converge");
                    edges += resp.spanner.len();
                }
                edges
            }));
        }
        for h in handles {
            served_edges += h.join().expect("client thread");
        }
    });
    let secs = t0.elapsed().as_secs_f64();

    // Counters reconcile through the facade's own metrics route.
    let mut client = HttpClient::connect(addr).expect("connect for metrics");
    let metrics_json = client.metrics_json().expect("metrics");
    let parsed = Json::parse(&metrics_json).expect("metrics JSON");
    let field = |k: &str| parsed.get(k).and_then(Json::as_u64).expect(k);
    assert_eq!(
        field("jobs_submitted"),
        field("cache_hits") + field("cache_misses") + field("coalesced"),
        "metrics invariant violated: {metrics_json}"
    );
    assert_eq!(field("jobs_submitted"), jobs as u64);

    let m = service.metrics();
    println!(
        concat!(
            "{{\"experiment\":\"exp_http\",\"jobs\":{},\"unique\":{},",
            "\"dup_fraction\":{:.3},\"workers\":{},\"client_connections\":{},",
            "\"seconds\":{:.4},\"requests_per_sec\":{:.1},",
            "\"cache_hit_rate\":{:.3},\"cache_hits\":{},\"cache_misses\":{},",
            "\"coalesced\":{},\"p50_latency_us\":{},\"p95_latency_us\":{},",
            "\"served_spanner_edges\":{}}}"
        ),
        jobs,
        unique,
        dup_fraction,
        workers,
        client_connections,
        secs,
        jobs as f64 / secs,
        m.cache_hit_rate,
        m.cache_hits,
        m.cache_misses,
        m.coalesced,
        m.p50_latency_us,
        m.p95_latency_us,
        served_edges,
    );
    eprintln!(
        "exp_http: {jobs} jobs ({unique} unique, {:.0}% duplicates) over {client_connections} \
         keep-alive connections, {workers} workers: {:.1} requests/s, cache hit rate {:.0}%, \
         byte-identity held for every duplicate",
        dup_fraction * 100.0,
        jobs as f64 / secs,
        m.cache_hit_rate * 100.0,
    );
    server.shutdown();
}
