//! E6–E9 — the Section 2–3 hardness results, executed.

#![forbid(unsafe_code)]

use dsa_bench::{banner, f2, Table};
use dsa_core::dist::{min_2_spanner_weighted, EngineConfig};
use dsa_core::verify::spanner_cost;
use dsa_graphs::gen;
use dsa_lowerbounds::construction_g::{GConstruction, GParams};
use dsa_lowerbounds::construction_gs::GsConstruction;
use dsa_lowerbounds::construction_gw::{GwDirected, GwUndirected};
use dsa_lowerbounds::disjointness::{
    random_disjoint, random_far_from_disjoint, random_intersecting,
};
use dsa_lowerbounds::two_party::{
    decide_disjointness_by_spanner, flood_with_metered_cut, predicted_rounds_deterministic,
    predicted_rounds_randomized,
};
use dsa_lowerbounds::vc::{exact_vertex_cover, greedy_vertex_cover, is_vertex_cover};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(6);

    banner(
        "E6",
        "Theorem 1.1 / Lemma 2.3 — spanner-size dichotomy on G(ℓ,β) with proof parameters, and the Lemma 2.4 decision rule",
    );
    let mut t = Table::new([
        "α",
        "ℓ",
        "β",
        "n",
        "disjoint |H|",
        "bound 7ℓβ",
        "forced (1 bit)",
        "α·t",
        "rule correct",
    ]);
    for alpha in [1.0f64, 2.0, 4.0] {
        let params = GParams::for_alpha(2_500, alpha);
        let d = GConstruction::build(params, random_disjoint(params.input_len(), &mut rng));
        let i = GConstruction::build(params, random_intersecting(params.input_len(), 1, &mut rng));
        let (dec_d, _, t_thresh) = decide_disjointness_by_spanner(&d, alpha);
        let (dec_i, forced, _) = decide_disjointness_by_spanner(&i, alpha);
        t.row([
            f2(alpha),
            params.ell.to_string(),
            params.beta.to_string(),
            params.num_vertices().to_string(),
            d.non_d_spanner().len().to_string(),
            d.disjoint_spanner_bound().to_string(),
            forced.to_string(),
            f2(alpha * t_thresh),
            (dec_d && !dec_i).to_string(),
        ]);
    }
    t.print();

    banner(
        "E6b",
        "communication accounting: the ℓ²-bit input vs the Θ(ℓ)-edge cut (naive flooding measured), plus the theorem's round bounds",
    );
    let mut t = Table::new([
        "ℓ",
        "β",
        "n",
        "cut",
        "input bits",
        "flood cut-bits",
        "Ω rand (α=1)",
        "Ω det (α=1)",
    ]);
    for (ell, beta) in [(2usize, 4usize), (3, 6), (4, 8)] {
        let params = GParams { ell, beta };
        let c = GConstruction::build(params, random_disjoint(params.input_len(), &mut rng));
        let (metrics, complete) = flood_with_metered_cut(&c, 100_000);
        assert!(complete);
        let n = params.num_vertices();
        t.row([
            ell.to_string(),
            beta.to_string(),
            n.to_string(),
            c.cut_size().to_string(),
            params.input_len().to_string(),
            metrics.cut_bits(n).unwrap().to_string(),
            f2(predicted_rounds_randomized(n, 1.0)),
            f2(predicted_rounds_deterministic(n, 1.0)),
        ]);
    }
    t.print();

    banner(
        "E7",
        "Theorem 2.8 / Lemma 2.6 — gap-disjointness dichotomy (β ≤ ℓ): far inputs force ≥ β²ℓ²/12 dense edges",
    );
    let mut t = Table::new([
        "α",
        "ℓ",
        "β",
        "disjoint |H|",
        "bound 7ℓ²",
        "forced (far)",
        "β²ℓ²/12",
        "separated",
    ]);
    for alpha in [1.0f64, 2.0] {
        let params = GParams::for_alpha_deterministic(1_500, alpha);
        let d = GConstruction::build(params, random_disjoint(params.input_len(), &mut rng));
        let f = GConstruction::build(
            params,
            random_far_from_disjoint(params.input_len(), &mut rng),
        );
        let forced = f.forced_d_edges();
        let bound = params.beta * params.beta * params.ell * params.ell / 12;
        t.row([
            f2(alpha),
            params.ell.to_string(),
            params.beta.to_string(),
            d.non_d_spanner().len().to_string(),
            d.disjoint_spanner_bound_gap().to_string(),
            forced.to_string(),
            bound.to_string(),
            (forced as f64 > alpha * d.disjoint_spanner_bound_gap() as f64).to_string(),
        ]);
    }
    t.print();

    banner(
        "E8",
        "Theorems 2.9/2.10 — weighted constructions: cost-0 k-spanner exists iff inputs disjoint",
    );
    let mut t = Table::new([
        "variant",
        "ℓ",
        "k",
        "disjoint → 0-cost",
        "1 shared bit → 0-cost",
    ]);
    for ell in [4usize, 8, 16] {
        let d = GwDirected::build(ell, random_disjoint(ell * ell, &mut rng));
        let i = GwDirected::build(ell, random_intersecting(ell * ell, 1, &mut rng));
        t.row([
            "directed".to_string(),
            ell.to_string(),
            "4".to_string(),
            d.zero_cost_spanner_exists(4).to_string(),
            i.zero_cost_spanner_exists(4).to_string(),
        ]);
    }
    for k in 4..=7usize {
        let d = GwUndirected::build(6, k, random_disjoint(36, &mut rng));
        let i = GwUndirected::build(6, k, random_intersecting(36, 1, &mut rng));
        t.row([
            "undirected".to_string(),
            "6".to_string(),
            k.to_string(),
            d.zero_cost_spanner_exists().to_string(),
            i.zero_cost_spanner_exists().to_string(),
        ]);
    }
    t.print();

    banner(
        "E9",
        "Claim 3.1 / Lemma 3.2 — MVC via weighted 2-spanner on G_S: exact equality and the distributed round trip",
    );
    let mut t = Table::new([
        "n(G)",
        "m(G)",
        "VC opt",
        "spanner opt",
        "equal",
        "dist cover",
        "greedy VC",
    ]);
    for (n, p) in [(6usize, 0.5), (8, 0.4), (10, 0.3)] {
        let g = gen::gnp_connected(n, p, &mut rng);
        let gs = GsConstruction::build(&g);
        let vc_opt = exact_vertex_cover(&g).len() as u64;
        let (_, span_opt) = dsa_core::seq::exact_min_2_spanner_weighted(&gs.graph, &gs.weights);
        // Distributed weighted 2-spanner -> cover (Lemma 3.2).
        let run = min_2_spanner_weighted(&gs.graph, &gs.weights, &EngineConfig::seeded(3));
        let (cover, normalized) = gs.spanner_to_cover(&run.spanner);
        assert!(is_vertex_cover(&g, &cover));
        assert!(spanner_cost(&normalized, &gs.weights) <= spanner_cost(&run.spanner, &gs.weights));
        t.row([
            n.to_string(),
            g.num_edges().to_string(),
            vc_opt.to_string(),
            span_opt.to_string(),
            (vc_opt == span_opt).to_string(),
            cover.len().to_string(),
            greedy_vertex_cover(&g).len().to_string(),
        ]);
    }
    t.print();
}
