//! Integration and property tests for the HTTP/JSON facade: all four
//! variants end to end, cache byte-identity over response bodies, one
//! cache shared between the TCP and HTTP frontends, and — the
//! malformed-input contract — oversized bodies, truncated requests,
//! bad JSON, unknown routes, and wrong methods each mapping to the
//! right status code without wedging the connection thread.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsa_core::dist::VariantInstance;
use dsa_graphs::gen;
use dsa_runtime::json::Json;
use dsa_service::http::{self, HttpClient, MAX_BODY};
use dsa_service::{HttpServer, JobSpec, Server, Service, ServiceConfig};

fn start_server() -> HttpServer {
    HttpServer::start("127.0.0.1:0", &ServiceConfig::default()).expect("bind http server")
}

fn undirected_spec(n: usize, p: f64, graph_seed: u64, engine_seed: u64) -> JobSpec {
    let mut rng = StdRng::seed_from_u64(graph_seed);
    JobSpec::new(
        VariantInstance::Undirected {
            graph: gen::gnp_connected(n, p, &mut rng),
        },
        engine_seed,
    )
}

fn all_variant_specs(seed: u64) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::gnp_connected(18, 0.3, &mut rng);
    let d = gen::random_digraph_connected(14, 0.14, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    vec![
        JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 1),
        JobSpec::new(VariantInstance::Directed { graph: d }, 2),
        JobSpec::new(
            VariantInstance::Weighted {
                graph: g.clone(),
                weights: w,
            },
            3,
        ),
        JobSpec::new(
            VariantInstance::ClientServer {
                graph: g,
                clients,
                servers,
            },
            4,
        ),
    ]
}

/// Sends raw bytes on a fresh connection and reads one HTTP response,
/// returning (status, head text, body). Panics on malformed responses.
fn raw_roundtrip(addr: std::net::SocketAddr, request: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("write");
    stream.flush().expect("flush");
    read_one_response(&mut stream)
}

fn read_one_response(stream: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let k = stream.read(&mut chunk).expect("read response");
        assert!(k > 0, "connection closed before a full response head");
        buf.extend_from_slice(&chunk[..k]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("head utf8");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("Content-Length header");
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let k = stream.read(&mut chunk).expect("read body");
        assert!(k > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..k]);
    }
    body.truncate(content_length);
    (status, head, body)
}

#[test]
fn serves_all_variants_with_cache_byte_identity() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    client.healthz().expect("healthz");
    for spec in &all_variant_specs(2018) {
        let (cold_status, cold) = client.run_raw(spec).expect("cold run");
        assert_eq!(cold_status, 200, "{}", String::from_utf8_lossy(&cold));
        let resp = http::decode_job_response(&cold).expect("decode");
        assert!(resp.converged);
        // The repeat is a cache hit and must be byte-identical.
        let (warm_status, warm) = client.run_raw(spec).expect("warm run");
        assert_eq!(warm_status, 200);
        assert_eq!(cold, warm, "cache hit bytes differ from cold run");
    }
    let m = server.service().metrics();
    assert_eq!(m.cache_misses, 4);
    assert_eq!(m.cache_hits, 4);
    assert_eq!(
        m.jobs_submitted,
        m.cache_hits + m.cache_misses + m.coalesced
    );
}

#[test]
fn tcp_and_http_share_one_cache() {
    // One Service behind both frontends, exactly as `spanner-serve
    // --http-port` wires them: a job computed via TCP is a cache hit
    // via HTTP (and vice versa), with identical decoded responses.
    let service = Arc::new(Service::new(&ServiceConfig::default()));
    let tcp = Server::with_service("127.0.0.1:0", Arc::clone(&service)).expect("tcp server");
    let http_srv = HttpServer::with_service("127.0.0.1:0", Arc::clone(&service)).expect("http");
    let mut wire_client = dsa_service::Client::connect(tcp.addr()).expect("tcp connect");
    let mut http_client = HttpClient::connect(http_srv.addr()).expect("http connect");

    let spec = undirected_spec(22, 0.25, 5, 11);
    let via_tcp = wire_client.run(&spec).expect("tcp run");
    let via_http = http_client.run(&spec).expect("http run");
    assert_eq!(via_tcp, via_http, "frontends disagree on one spec");
    let m = service.metrics();
    assert_eq!(
        (m.cache_misses, m.cache_hits),
        (1, 1),
        "the two submissions did not share one cache entry"
    );

    // And the other direction: HTTP computes, TCP hits.
    let spec2 = undirected_spec(20, 0.3, 6, 12);
    let first = http_client.run(&spec2).expect("http run");
    let second = wire_client.run(&spec2).expect("tcp run");
    assert_eq!(first, second);
    let m = service.metrics();
    assert_eq!((m.cache_misses, m.cache_hits), (2, 2));
    assert_eq!(
        m.jobs_submitted,
        m.cache_hits + m.cache_misses + m.coalesced
    );
}

#[test]
fn metrics_route_serves_a_coherent_snapshot() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    client.run(&undirected_spec(16, 0.3, 1, 1)).expect("run");
    client.run(&undirected_spec(16, 0.3, 1, 1)).expect("rerun");
    let parsed = Json::parse(&client.metrics_json().expect("metrics")).expect("json");
    let field = |k: &str| parsed.get(k).and_then(Json::as_u64).expect(k);
    assert_eq!(field("jobs_submitted"), 2);
    assert_eq!(
        field("jobs_submitted"),
        field("cache_hits") + field("cache_misses") + field("coalesced")
    );
    assert!(parsed.get("p50_latency_us").is_some());
    assert!(parsed.get("p95_latency_us").is_some());
    assert!(parsed.get("latency_hist_count").is_some());
    assert!(parsed.get("queue_depth").is_some());
    assert!(parsed.get("store_records_dropped").is_some());
}

/// Parses the `spanner_jobs_total` sample and the sum of the
/// `spanner_jobs_by_class_total` series out of a text exposition.
fn prometheus_jobs_and_class_sum(text: &str) -> (u64, u64) {
    let sample = |line: &str| -> u64 { line.rsplit(' ').next().unwrap().parse().unwrap() };
    let mut jobs = None;
    let mut class_sum = 0;
    for line in text.lines() {
        if line.starts_with("spanner_jobs_total ") {
            jobs = Some(sample(line));
        } else if line.starts_with("spanner_jobs_by_class_total{") {
            class_sum += sample(line);
        }
    }
    (jobs.expect("spanner_jobs_total sample"), class_sum)
}

#[test]
fn prometheus_format_negotiation_and_content_type() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    client.run(&undirected_spec(16, 0.3, 1, 1)).expect("run");
    client.run(&undirected_spec(16, 0.3, 1, 1)).expect("rerun");

    // The text exposition is served with the Prometheus content type.
    let (status, head, body) = raw_roundtrip(
        server.addr(),
        b"GET /v1/metrics?format=prometheus HTTP/1.1\r\nHost: x\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "head: {head}"
    );
    let text = String::from_utf8(body).expect("exposition utf8");
    assert!(
        text.starts_with("# HELP "),
        "starts: {:?}",
        text.lines().next()
    );
    let (jobs, class_sum) = prometheus_jobs_and_class_sum(&text);
    assert_eq!(jobs, 2);
    assert_eq!(jobs, class_sum, "scraped snapshot violates the invariant");

    // `format=json` and no query both answer JSON.
    for path in ["/v1/metrics", "/v1/metrics?format=json"] {
        let (status, body) = client.request("GET", path, None).expect("json metrics");
        assert_eq!(status, 200);
        assert!(Json::parse(std::str::from_utf8(&body).unwrap()).is_ok());
    }
    // Anything else is a 400, not a silent fallback.
    let (status, _) = client
        .request("GET", "/v1/metrics?format=xml", None)
        .expect("bad format");
    assert_eq!(status, 400);
}

#[test]
fn concurrent_prometheus_scrapes_under_load_stay_coherent() {
    // The hammer test: writers push a mix of fresh and duplicate jobs
    // through the facade while scrapers pull both metric formats.
    // Every scraped snapshot — JSON and Prometheus alike — must
    // satisfy `jobs = hits + misses + coalesced`, mid-load included.
    let server = start_server();
    let addr = server.addr();
    std::thread::scope(|scope| {
        for w in 0..3u64 {
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("writer connect");
                for i in 0..6u64 {
                    // Seed reuse across writers makes cache hits and
                    // coalesced submissions likely, not just misses.
                    let spec = undirected_spec(14, 0.3, i % 3, w % 2);
                    client.run(&spec).expect("writer run");
                }
            });
        }
        for _ in 0..2 {
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("scraper connect");
                for _ in 0..10 {
                    let json = client.metrics_json().expect("scrape json");
                    let parsed = Json::parse(&json).expect("metrics json");
                    let field = |k: &str| parsed.get(k).and_then(Json::as_u64).expect(k);
                    assert_eq!(
                        field("jobs_submitted"),
                        field("cache_hits") + field("cache_misses") + field("coalesced"),
                        "JSON snapshot violated the invariant mid-load"
                    );
                    let text = client.metrics_prometheus().expect("scrape prometheus");
                    let (jobs, class_sum) = prometheus_jobs_and_class_sum(&text);
                    assert_eq!(
                        jobs, class_sum,
                        "Prometheus snapshot violated the invariant mid-load"
                    );
                }
            });
        }
    });
    let m = server.service().metrics();
    assert_eq!(m.jobs_submitted, 18);
    assert_eq!(
        m.jobs_submitted,
        m.cache_hits + m.cache_misses + m.coalesced
    );
}

#[test]
fn bad_json_is_400_and_the_connection_stays_usable() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    for bad in ["{not json", "", "[]", r#"{"variant":"undirected"}"#] {
        let (status, body) = client.request("POST", "/v1/jobs", Some(bad)).expect("post");
        assert_eq!(status, 400, "body {bad:?}");
        let parsed = Json::parse(std::str::from_utf8(&body).unwrap()).expect("error body json");
        assert!(parsed.get("error").is_some());
    }
    // Same keep-alive connection still serves real work.
    let resp = client
        .run(&undirected_spec(14, 0.3, 3, 3))
        .expect("run after errors");
    assert!(resp.converged);
}

#[test]
fn unknown_routes_and_wrong_methods_map_cleanly() {
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let (status, _) = client.request("GET", "/nope", None).expect("404 route");
    assert_eq!(status, 404);
    let (status, _) = client
        .request("POST", "/v1/jobs/extra", None)
        .expect("deep route");
    assert_eq!(status, 404);
    let (status, _) = client.request("GET", "/v1/jobs", None).expect("405 route");
    assert_eq!(status, 405);
    let (status, _) = client
        .request("POST", "/healthz", None)
        .expect("405 healthz");
    assert_eq!(status, 405);
    let (status, _) = client
        .request("DELETE", "/v1/metrics", None)
        .expect("405 metrics");
    assert_eq!(status, 405);
    // The Allow header names the right method.
    let (status, head, _) =
        raw_roundtrip(server.addr(), b"GET /v1/jobs HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 405);
    assert!(head.contains("Allow: POST"), "head: {head}");
    // Query strings do not defeat routing.
    let (status, _) = client
        .request("GET", "/healthz?probe=1", None)
        .expect("query");
    assert_eq!(status, 200);
    client.healthz().expect("healthz after error parade");
}

#[test]
fn invalid_spec_is_422_not_400() {
    // Decodes fine (schema-valid) but fails service validation: the
    // distinction between "can't parse you" and "won't run you".
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let body = r#"{"variant":"undirected","seed":1,"graph":{"n":3,"edges":[[0,1],[1,2]]},"accept_denominator":0}"#;
    let (status, resp) = client
        .request("POST", "/v1/jobs", Some(body))
        .expect("post");
    assert_eq!(status, 422, "{}", String::from_utf8_lossy(&resp));
    assert_eq!(server.service().metrics().invalid, 1);
    client.healthz().expect("healthz after 422");
}

#[test]
fn oversized_bodies_are_413_before_any_allocation() {
    let server = start_server();
    let request = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY + 1
    );
    // The server must answer from the *head alone* — the body is never
    // sent — and close the connection (the stream is unsynchronized).
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(request.as_bytes()).expect("write");
    let (status, head, _) = read_one_response(&mut stream);
    assert_eq!(status, 413);
    assert!(head.contains("Connection: close"), "head: {head}");
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("read to end");
    assert!(rest.is_empty(), "server kept the connection open after 413");
    // The server is still alive for the next connection.
    HttpClient::connect(server.addr())
        .expect("reconnect")
        .healthz()
        .expect("healthz after 413");
}

#[test]
fn oversized_heads_are_431() {
    let server = start_server();
    let mut request = String::from("GET /healthz HTTP/1.1\r\n");
    while request.len() < 40 << 10 {
        request.push_str("X-Padding: yadda yadda yadda\r\n");
    }
    // No terminator yet — the head alone overflows the bound.
    let (status, _, _) = raw_roundtrip(server.addr(), request.as_bytes());
    assert_eq!(status, 431);
}

#[test]
fn truncated_requests_do_not_wedge_the_server() {
    let server = start_server();
    // Truncated mid-head: client gives up before the blank line.
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Le")
            .expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read");
        assert!(rest.is_empty(), "no response owed to a truncated head");
    }
    // Truncated mid-body: Content-Length promises more than is sent.
    {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .write_all(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"variant\":")
            .expect("write");
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("read");
        assert!(rest.is_empty(), "no response owed to a truncated body");
    }
    // Both connection threads exited cleanly; the server still serves.
    HttpClient::connect(server.addr())
        .expect("reconnect")
        .healthz()
        .expect("healthz after truncations");
}

#[test]
fn unsupported_protocol_shapes_are_rejected() {
    let server = start_server();
    let (status, _, _) = raw_roundtrip(server.addr(), b"GARBAGE\r\n\r\n");
    assert_eq!(status, 400, "malformed request line");
    let (status, _, _) = raw_roundtrip(server.addr(), b"GET /healthz HTTP/2\r\n\r\n");
    assert_eq!(status, 505, "unsupported version");
    let (status, _, _) = raw_roundtrip(
        server.addr(),
        b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert_eq!(status, 501, "chunked bodies unsupported");
    let (status, _, _) = raw_roundtrip(
        server.addr(),
        b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nx",
    );
    assert_eq!(status, 400, "conflicting lengths");
}

#[test]
fn expect_continue_is_acknowledged() {
    let server = start_server();
    let body = r#"{"variant":"undirected","seed":5,"graph":{"n":3,"edges":[[0,1],[1,2]]}}"#;
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(
            format!(
                "POST /v1/jobs HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .expect("write head");
    // The interim response arrives before any body byte is sent.
    let mut interim = [0u8; 25];
    stream.read_exact(&mut interim).expect("read 100");
    assert_eq!(&interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    stream.write_all(body.as_bytes()).expect("write body");
    let (status, _, resp) = read_one_response(&mut stream);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&resp));
}

#[test]
fn connection_close_is_honored() {
    let server = start_server();
    let (status, head, _) = raw_roundtrip(
        server.addr(),
        b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "head: {head}");
    // HTTP/1.0 defaults to close too.
    let (status, head, _) = raw_roundtrip(server.addr(), b"GET /healthz HTTP/1.0\r\n\r\n");
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "head: {head}");
}

#[test]
fn fuzzed_bodies_never_kill_the_connection_thread() {
    // Random garbage POSTed at /v1/jobs must always produce a clean
    // 4xx — never a panic, never a wedged thread — and the server
    // must keep answering afterwards.
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let mut rng = StdRng::seed_from_u64(77);
    for round in 0..60 {
        let len = rng.gen_range(0..400);
        let body: String = (0..len)
            .map(|_| {
                // Printable-ish ASCII skewed toward JSON punctuation.
                let choices = b"{}[]\",:0123456789.eE+-truefalsnl \t";
                choices[rng.gen_range(0..choices.len())] as char
            })
            .collect();
        let (status, _) = client
            .request("POST", "/v1/jobs", Some(&body))
            .expect("fuzz post");
        assert!(
            status == 400 || status == 422,
            "round {round}: fuzz body {body:?} yielded HTTP {status}"
        );
    }
    client.healthz().expect("healthz after fuzzing");
}

fn arb_instance() -> impl Strategy<Value = (VariantInstance, u64)> {
    (3usize..24, 0u64..500, 1u32..4, 0u64..64).prop_map(|(n, seed, d, engine_seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnp_connected(n, 0.1 * d as f64, &mut rng);
        let instance = match seed % 4 {
            0 => VariantInstance::Undirected { graph: g },
            1 => VariantInstance::Directed {
                graph: gen::random_digraph_connected(n, 0.15, &mut rng),
            },
            2 => {
                let weights = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
                VariantInstance::Weighted { graph: g, weights }
            }
            _ => {
                let (clients, servers) = gen::client_server_split(&g, 0.7, 0.7, &mut rng);
                VariantInstance::ClientServer {
                    graph: g,
                    clients,
                    servers,
                }
            }
        };
        (instance, engine_seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random instances of every variant, the spec JSON roundtrips
    /// to the same canonical job, and repeated POSTs of one spec
    /// return byte-identical bodies through a live server.
    #[test]
    fn random_specs_roundtrip_and_hit_bytewise((instance, seed) in arb_instance()) {
        let spec = JobSpec::new(instance, seed);
        let decoded = http::decode_job_spec(http::encode_job_spec(&spec).as_bytes()).unwrap();
        prop_assert_eq!(decoded.instance.kind(), spec.instance.kind());
        prop_assert_eq!(decoded.config.seed, spec.config.seed);

        let server = HttpServer::start("127.0.0.1:0", &ServiceConfig::default()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let (s1, cold) = client.run_raw(&spec).unwrap();
        let (s2, warm) = client.run_raw(&spec).unwrap();
        prop_assert_eq!((s1, s2), (200, 200));
        prop_assert_eq!(&cold, &warm, "cache hit bytes differ");
        let resp = http::decode_job_response(&cold).unwrap();
        prop_assert!(resp.converged);
        let m = server.service().metrics();
        prop_assert_eq!((m.cache_misses, m.cache_hits), (1, 1));
    }

    /// A job with a zero timeout either completes or maps to 504 —
    /// never to a hang or a dead connection.
    #[test]
    fn zero_timeout_maps_to_504_or_success(engine_seed in 0u64..16) {
        let mut spec = undirected_spec(30, 0.2, 9, engine_seed);
        spec.timeout = Some(Duration::from_nanos(0));
        let server = HttpServer::start("127.0.0.1:0", &ServiceConfig::default()).unwrap();
        let mut client = HttpClient::connect(server.addr()).unwrap();
        let (status, _) = client.run_raw(&spec).unwrap();
        prop_assert!(status == 200 || status == 504, "got HTTP {status}");
        client.healthz().unwrap();
    }
}

#[test]
fn error_bodies_carry_the_stable_code_field() {
    // Every error body is `{"error": prose, "code": slug}`: `error`
    // stays first (and prose) so pre-code clients keep parsing, while
    // `code` gives new clients a stable contract.
    let server = start_server();
    let mut client = HttpClient::connect(server.addr()).expect("connect");
    let body = r#"{"variant":"undirected","seed":1,"graph":{"n":3,"edges":[[0,1],[1,2]]},"accept_denominator":0}"#;
    let (status, resp) = client
        .request("POST", "/v1/jobs", Some(body))
        .expect("post");
    assert_eq!(status, 422);
    let text = String::from_utf8_lossy(&resp);
    assert!(
        text.starts_with(r#"{"error":"#),
        "prose key must stay first: {text}"
    );
    assert!(text.contains(r#""code":"invalid""#), "{text}");

    let (status, resp) = client
        .request("GET", "/v1/graphs/absent", None)
        .expect("get");
    assert_eq!(status, 404);
    assert!(
        String::from_utf8_lossy(&resp).contains(r#""code":"not_found""#),
        "{}",
        String::from_utf8_lossy(&resp)
    );
    client.healthz().expect("healthz after error parade");
}
