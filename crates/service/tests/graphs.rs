//! Integration tests for named long-lived graphs: the lifecycle over
//! both surfaces, the determinism contract (any insert/delete
//! interleaving serves a spanner byte-identical to a from-scratch
//! solve of the final edge set — property-tested on all four
//! variants), crash-mid-PATCH recovery of the graph delta log, and the
//! v1-vs-v2 protocol regression (old clients keep working against a
//! v2 server).

use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsa_core::dist::{EngineConfig, VariantInstance, VariantKind};
use dsa_graphs::{gen, DiGraph, EdgeSet, EdgeWeights, Graph};
use dsa_service::{
    wire, Client, DeltaOp, EdgeRole, GraphSpec, HttpClient, HttpServer, JobSpec, Server, Service,
    ServiceConfig,
};

/// A fresh per-test store directory (no tempfile dependency).
fn store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dsa-graphs-it-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn persistent_cfg(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    }
}

/// A client-side mirror of a graph's live edge list, in registry
/// live-id order: pairs normalized the way the graph constructors
/// store them (`(min, max)` except directed), plus variant extras.
#[derive(Clone)]
struct Mirror {
    kind: VariantKind,
    n: usize,
    recs: Vec<(usize, usize, u64, bool, bool)>,
}

impl Mirror {
    fn of(instance: &VariantInstance) -> Mirror {
        let kind = instance.kind();
        let (n, recs) = match instance {
            VariantInstance::Undirected { graph } => (
                graph.num_vertices(),
                graph
                    .edges()
                    .map(|(_, u, v)| (u, v, 0, false, false))
                    .collect(),
            ),
            VariantInstance::Directed { graph } => (
                graph.num_vertices(),
                graph
                    .edges()
                    .map(|(_, u, v)| (u, v, 0, false, false))
                    .collect(),
            ),
            VariantInstance::Weighted { graph, weights } => (
                graph.num_vertices(),
                graph
                    .edges()
                    .map(|(e, u, v)| (u, v, weights.get(e), false, false))
                    .collect(),
            ),
            VariantInstance::ClientServer {
                graph,
                clients,
                servers,
            } => (
                graph.num_vertices(),
                graph
                    .edges()
                    .map(|(e, u, v)| (u, v, 0, clients.contains(e), servers.contains(e)))
                    .collect(),
            ),
        };
        Mirror { kind, n, recs }
    }

    fn pair(&self, u: usize, v: usize) -> (usize, usize) {
        if self.kind == VariantKind::Directed {
            (u, v)
        } else {
            (u.min(v), u.max(v))
        }
    }

    fn position(&self, u: usize, v: usize) -> Option<usize> {
        let p = self.pair(u, v);
        self.recs.iter().position(|r| (r.0, r.1) == p)
    }

    fn insert(&mut self, u: usize, v: usize, weight: u64, role: Option<EdgeRole>) {
        let (u, v) = self.pair(u, v);
        let (client, server) = match role {
            Some(EdgeRole::Client) => (true, false),
            Some(EdgeRole::Server) => (false, true),
            Some(EdgeRole::Both) => (true, true),
            None => (false, false),
        };
        self.recs.push((u, v, weight, client, server));
    }

    fn delete(&mut self, u: usize, v: usize) {
        let i = self.position(u, v).expect("deleting a live edge");
        // The registry compacts by dropping the record and shifting
        // the tail down one id; `Vec::remove` is exactly that.
        self.recs.remove(i);
    }

    fn instance(&self) -> VariantInstance {
        let pairs: Vec<(usize, usize)> = self.recs.iter().map(|r| (r.0, r.1)).collect();
        match self.kind {
            VariantKind::Undirected => VariantInstance::Undirected {
                graph: Graph::from_edges(self.n, pairs),
            },
            VariantKind::Directed => VariantInstance::Directed {
                graph: DiGraph::from_edges(self.n, pairs),
            },
            VariantKind::Weighted => VariantInstance::Weighted {
                graph: Graph::from_edges(self.n, pairs),
                weights: EdgeWeights::from_vec(self.recs.iter().map(|r| r.2).collect()),
            },
            VariantKind::ClientServer => {
                let m = self.recs.len();
                VariantInstance::ClientServer {
                    graph: Graph::from_edges(self.n, pairs),
                    clients: EdgeSet::from_iter(
                        m,
                        self.recs
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.3)
                            .map(|(i, _)| i),
                    ),
                    servers: EdgeSet::from_iter(
                        m,
                        self.recs
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.4)
                            .map(|(i, _)| i),
                    ),
                }
            }
        }
    }
}

/// One small seeded instance per variant, sized for property cases.
fn variant_instances(seed: u64) -> Vec<VariantInstance> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::gnp_connected(10 + (seed % 5) as usize, 0.35, &mut rng);
    let d = gen::random_digraph_connected(8 + (seed % 4) as usize, 0.2, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    vec![
        VariantInstance::Undirected { graph: g.clone() },
        VariantInstance::Directed { graph: d },
        VariantInstance::Weighted {
            graph: g.clone(),
            weights: w,
        },
        VariantInstance::ClientServer {
            graph: g,
            clients,
            servers,
        },
    ]
}

/// Asserts the maintained spanner is byte-identical (over its wire
/// encoding) to a from-scratch solve of the mirror's edge set.
fn assert_matches_from_scratch(service: &Service, id: &str, mirror: &Mirror, seed: u64) {
    let gs = service.graph_spanner(id).expect("spanner");
    let resp = service
        .run(&JobSpec::new(mirror.instance(), seed))
        .expect("from-scratch solve");
    assert_eq!(gs.key, resp.key, "{id}: cache key diverged");
    let want: Vec<(usize, usize)> = resp
        .spanner
        .iter()
        .map(|&e| (mirror.recs[e].0, mirror.recs[e].1))
        .collect();
    assert_eq!(gs.edges, want, "{id}: spanner edges diverged");
    // Equal structs are a necessary condition; the guarantee is stated
    // over bytes, so compare the actual wire encoding too.
    let mut scratch = gs.clone();
    scratch.edges = want;
    assert_eq!(
        wire::encode_graph_spanner_response(&gs),
        wire::encode_graph_spanner_response(&scratch),
        "{id}: wire bytes diverged"
    );
}

#[test]
fn lifecycle_works_across_tcp_and_http() {
    // One service, both frontends — create over TCP, read and patch
    // over HTTP, spanners byte-identical on both surfaces, retire over
    // HTTP, both surfaces then answer not-found.
    let service = Arc::new(Service::new(&ServiceConfig::default()));
    let server = Server::with_service("127.0.0.1:0", Arc::clone(&service)).expect("bind tcp");
    let http = HttpServer::with_service("127.0.0.1:0", Arc::clone(&service)).expect("bind http");
    let mut tcp = Client::connect(server.addr()).expect("tcp connect");
    let mut hc = HttpClient::connect(http.addr()).expect("http connect");

    let instance = variant_instances(3).remove(0);
    let spec = GraphSpec {
        id: "life".to_string(),
        instance: instance.clone(),
        config: EngineConfig::seeded(3),
    };
    let created = tcp.graph_create(&spec).expect("create");
    assert!(!created.existed);
    assert_eq!(created.version, 0);
    assert!(created.spanner_size > 0);

    let mut mirror = Mirror::of(&instance);
    let meta = hc.graph_get("life").expect("get");
    assert_eq!((meta.version, meta.edges), (0, mirror.recs.len()));

    // Insert one absent pair over HTTP, delete one live edge over TCP.
    let (mut fu, mut fv) = (0, 1);
    'scan: for u in 0..mirror.n {
        for v in (u + 1)..mirror.n {
            if mirror.position(u, v).is_none() {
                (fu, fv) = (u, v);
                break 'scan;
            }
        }
    }
    let patched = hc
        .graph_patch(
            "life",
            &[DeltaOp::Insert {
                u: fu,
                v: fv,
                weight: None,
                role: None,
            }],
        )
        .expect("http patch");
    mirror.insert(fu, fv, 0, None);
    assert_eq!((patched.version, patched.edges), (1, mirror.recs.len()));
    let (du, dv) = {
        let r = mirror.recs[0];
        (r.0, r.1)
    };
    let patched = tcp
        .graph_patch("life", &[DeltaOp::Delete { u: du, v: dv }])
        .expect("tcp patch");
    mirror.delete(du, dv);
    assert_eq!((patched.version, patched.edges), (2, mirror.recs.len()));

    // Both surfaces serve the same spanner for the same version.
    let t = tcp.graph_spanner("life").expect("tcp spanner");
    let h = hc.graph_spanner("life").expect("http spanner");
    assert_eq!(t.version, 2);
    assert_eq!((t.key, &t.edges), (h.key, &h.edges));
    assert_matches_from_scratch(&service, "life", &mirror, 3);

    hc.graph_delete("life").expect("delete");
    assert!(
        tcp.graph_get("life").is_err(),
        "TCP still serves a retired graph"
    );
    assert!(
        hc.graph_get("life").is_err(),
        "HTTP still serves a retired graph"
    );

    http.shutdown();
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The determinism contract: whatever interleaving of inserts and
    /// deletes a graph lives through, the spanner it serves is
    /// byte-identical to a from-scratch solve of the final edge set —
    /// for every variant.
    #[test]
    fn any_interleaving_serves_the_from_scratch_spanner(
        seed in 0u64..100,
        script in proptest::collection::vec((0usize..2, 0usize..64, 0usize..64), 1..14),
    ) {
        let service = Service::new(&ServiceConfig::default());
        for (i, instance) in variant_instances(seed).into_iter().enumerate() {
            let kind = instance.kind();
            let id = format!("prop-{kind}");
            let job_seed = seed + i as u64;
            service
                .graph_create(GraphSpec {
                    id: id.clone(),
                    instance: instance.clone(),
                    config: EngineConfig::seeded(job_seed),
                })
                .expect("create");
            let mut mirror = Mirror::of(&instance);
            for &(del, a, b) in &script {
                let is_delete = del == 1;
                let (u, v) = (a % mirror.n, b % mirror.n);
                if u == v {
                    continue;
                }
                let live = mirror.position(u, v).is_some();
                let op = if is_delete && live {
                    DeltaOp::Delete { u, v }
                } else if !is_delete && !live {
                    let (weight, role) = match kind {
                        VariantKind::Weighted => (Some((a + b) as u64 % 10), None),
                        VariantKind::ClientServer => (None, Some(EdgeRole::Both)),
                        _ => (None, None),
                    };
                    DeltaOp::Insert { u, v, weight, role }
                } else {
                    continue;
                };
                // Deleting the last edge would leave an instance the
                // engine rejects; keep at least one live edge.
                if matches!(op, DeltaOp::Delete { .. }) && mirror.recs.len() == 1 {
                    continue;
                }
                service
                    .graph_patch(&id, std::slice::from_ref(&op))
                    .expect("patch");
                match op {
                    DeltaOp::Insert { u, v, weight, role } => {
                        mirror.insert(u, v, weight.unwrap_or(0), role)
                    }
                    DeltaOp::Delete { u, v } => mirror.delete(u, v),
                }
            }
            assert_matches_from_scratch(&service, &id, &mirror, job_seed);
        }
    }
}

#[test]
fn crash_mid_patch_recovers_the_intact_prefix() {
    let dir = store_dir("crash");
    let instance = variant_instances(9).remove(0);
    let mut mirror = Mirror::of(&instance);
    let (mut inserts, mut probe) = (Vec::new(), Mirror::of(&instance));
    'scan: for u in 0..mirror.n {
        for v in (u + 1)..mirror.n {
            if probe.position(u, v).is_none() {
                probe.insert(u, v, 0, None);
                inserts.push((u, v));
                if inserts.len() == 3 {
                    break 'scan;
                }
            }
        }
    }
    assert_eq!(inserts.len(), 3, "instance too dense for the test");

    {
        let service = Service::open(&persistent_cfg(&dir)).expect("open");
        service
            .graph_create(GraphSpec {
                id: "crash".to_string(),
                instance: instance.clone(),
                config: EngineConfig::seeded(9),
            })
            .expect("create");
        for &(u, v) in &inserts {
            service
                .graph_patch(
                    "crash",
                    &[DeltaOp::Insert {
                        u,
                        v,
                        weight: None,
                        role: None,
                    }],
                )
                .expect("patch");
        }
    } // crash point: service drops, log holds create + 3 patches

    // Simulate a crash mid-PATCH append: a length header promising 400
    // bytes followed by a torn fragment of a record.
    let log = dir.join("graphs.log");
    let mut bytes = std::fs::read(&log).expect("graphs.log exists");
    let intact = bytes.len();
    bytes.extend_from_slice(&400u32.to_be_bytes());
    bytes.extend_from_slice(b"graph-patch v2\nid crash\ntorn");
    std::fs::write(&log, &bytes).expect("append torn tail");

    // Warm restart: the torn tail is dropped, the intact prefix
    // replays, and the graph serves exactly the prefix's edge set.
    let service = Service::open(&persistent_cfg(&dir)).expect("reopen after torn tail");
    for &(u, v) in &inserts {
        mirror.insert(u, v, 0, None);
    }
    let meta = service.graph_meta("crash").expect("meta after recovery");
    assert_eq!(meta.version, inserts.len() as u64);
    assert_eq!(meta.edges, mirror.recs.len());
    assert_matches_from_scratch(&service, "crash", &mirror, 9);

    // Recovery truncated the log back to the intact prefix, so the
    // next patch appends cleanly and survives another restart.
    assert_eq!(
        std::fs::metadata(&log).expect("log").len(),
        intact as u64,
        "torn tail must be truncated away"
    );
    let (u, v) = {
        let r = mirror.recs[0];
        (r.0, r.1)
    };
    service
        .graph_patch("crash", &[DeltaOp::Delete { u, v }])
        .expect("patch after recovery");
    mirror.delete(u, v);
    drop(service);

    let service = Service::open(&persistent_cfg(&dir)).expect("second reopen");
    let meta = service.graph_meta("crash").expect("meta");
    assert_eq!(meta.version, inserts.len() as u64 + 1);
    assert_matches_from_scratch(&service, "crash", &mirror, 9);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_clients_are_still_served_by_a_v2_server() {
    let server = Server::start("127.0.0.1:0", &ServiceConfig::default()).expect("bind");

    // A raw v1 peer: offers `hello v1`, must be answered with
    // `proto 1` and no feature tokens — the pre-handshake protocol.
    let mut raw = TcpStream::connect(server.addr()).expect("raw connect");
    wire::write_frame(&mut raw, wire::encode_hello_request(1).as_bytes()).expect("send hello v1");
    let reply = wire::read_frame(&mut raw)
        .expect("read hello reply")
        .expect("server closed");
    assert_eq!(reply, wire::encode_hello_response(1, &[]).as_bytes());

    // A v1 client that never says hello at all: plain `run v1` frames
    // keep working unchanged on the same connection.
    let spec = JobSpec::new(variant_instances(5).remove(0), 5);
    wire::write_frame(&mut raw, wire::encode_request(&spec).as_bytes()).expect("send run");
    let reply = wire::read_frame(&mut raw)
        .expect("read run reply")
        .expect("server closed");
    let v1_resp = match wire::decode_response(&reply).expect("decode run response") {
        wire::Response::Run(resp) => resp,
        other => panic!("expected a run response, got {other:?}"),
    };
    assert!(v1_resp.converged);

    // A v2 client on a fresh connection negotiates up and sees the
    // graphs feature; its runs return the same bytes as the v1 path.
    let mut v2 = Client::connect(server.addr()).expect("v2 connect");
    assert_eq!(v2.hello().expect("hello"), (2, vec!["graphs".to_string()]));
    let v2_raw = v2.run_raw(&spec).expect("v2 run");
    assert_eq!(v2_raw, wire::encode_run_response(&v1_resp).as_bytes());

    server.shutdown();
}
