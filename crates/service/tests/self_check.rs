//! Smoke tests over the real binaries: `spanner-serve --self-check`
//! must pass end to end (ephemeral port, all four variants, cache
//! byte-identity, error handling), and bad usage must exit non-zero.

use std::process::Command;

#[test]
fn spanner_serve_self_check_passes() {
    let out = Command::new(env!("CARGO_BIN_EXE_spanner-serve"))
        .arg("--self-check")
        .output()
        .expect("run spanner-serve");
    assert!(
        out.status.success(),
        "self-check failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("self-check ok"));
}

#[test]
fn spanner_serve_http_self_check_passes() {
    let out = Command::new(env!("CARGO_BIN_EXE_spanner-serve"))
        .args(["--self-check", "--http"])
        .output()
        .expect("run spanner-serve");
    assert!(
        out.status.success(),
        "http self-check failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("self-check ok"));
}

#[test]
fn http_flag_without_self_check_is_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_spanner-serve"))
        .arg("--http")
        .output()
        .expect("run spanner-serve");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--http-port"));
}

#[test]
fn unknown_flags_exit_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_spanner-serve"))
        .arg("--bogus")
        .output()
        .expect("run spanner-serve");
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_spanner-cli"))
        .arg("frobnicate")
        .output()
        .expect("run spanner-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn explicit_help_succeeds_on_stdout() {
    for bin in [
        env!("CARGO_BIN_EXE_spanner-cli"),
        env!("CARGO_BIN_EXE_spanner-serve"),
    ] {
        let out = Command::new(bin)
            .arg("--help")
            .output()
            .expect("run --help");
        assert!(out.status.success(), "--help must exit 0 for {bin}");
        assert!(String::from_utf8_lossy(&out.stdout).contains("usage:"));
    }
}

#[test]
fn spanner_serve_graphs_self_check_passes() {
    let out = Command::new(env!("CARGO_BIN_EXE_spanner-serve"))
        .args(["--self-check", "--graphs"])
        .output()
        .expect("run spanner-serve");
    assert!(
        out.status.success(),
        "graphs self-check failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("self-check ok"));
    // The one-line delta-classification summary CI extracts into
    // graph_deltas.json must be on stdout.
    assert!(
        stdout.contains("{\"graphs_self_check\":{\"deltas\":"),
        "missing artifact line\nstdout: {stdout}"
    );
}

#[test]
fn graphs_flag_without_self_check_is_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_spanner-serve"))
        .arg("--graphs")
        .output()
        .expect("run spanner-serve");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--self-check"));
}
