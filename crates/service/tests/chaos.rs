//! Chaos soak: a seeded fault plan drives store failures, engine
//! aborts and latency, and mid-response connection drops against all
//! four problem variants served over both frontends, while retrying
//! clients hammer the service. The contract under fault injection:
//! no panic, no wrong bytes (every delivered response byte-identical
//! to a fault-free reference), and exact admission accounting
//! (`jobs = hits + misses + coalesced + shed`).

use std::sync::Arc;
use std::time::Duration;

use dsa_core::dist::VariantInstance;
use dsa_graphs::gen;
use dsa_runtime::{FaultInjector, FaultPlan};
use dsa_service::{
    Client, HttpClient, HttpServer, JobSpec, RetryPolicy, Server, Service, ServiceConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All four variants under two engine seeds each.
fn soak_specs() -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(77);
    let g = gen::gnp_connected(22, 0.3, &mut rng);
    let d = gen::random_digraph_connected(16, 0.14, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    let instances = [
        VariantInstance::Undirected { graph: g.clone() },
        VariantInstance::Directed { graph: d },
        VariantInstance::Weighted {
            graph: g.clone(),
            weights: w,
        },
        VariantInstance::ClientServer {
            graph: g,
            clients,
            servers,
        },
    ];
    let mut specs = Vec::new();
    for engine_seed in [1u64, 2] {
        for instance in &instances {
            specs.push(JobSpec::new(instance.clone(), engine_seed));
        }
    }
    specs
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsa-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn seeded_fault_plan_never_corrupts_a_delivered_response() {
    let specs = soak_specs();
    // Fault-free reference responses, computed in-process.
    let reference_service = Service::new(&ServiceConfig::default());
    let reference: Vec<_> = specs
        .iter()
        .map(|spec| reference_service.run(spec).unwrap())
        .collect();

    let plan = FaultPlan::parse(
        "seed=11;store.append.err=0.4;store.append.short=0.3;store.read.err=0.25;\
         engine.latency_ms=2@0.4;engine.abort=0.3;conn.drop=0.25",
    )
    .unwrap();
    let fault = Arc::new(FaultInjector::new(plan));
    let dir = scratch_dir("soak");
    let service = Arc::new(
        Service::open(&ServiceConfig {
            workers: 2,
            queue_capacity: 2,
            cache_dir: Some(dir.clone()),
            fault: Some(Arc::clone(&fault)),
            ..ServiceConfig::default()
        })
        .unwrap(),
    );
    let server = Server::with_service("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let http = HttpServer::with_service("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let (tcp_addr, http_addr) = (server.addr(), http.addr());

    // Three TCP clients and two HTTP clients, each retrying with its
    // own jitter seed, each submitting every spec twice in a rotated
    // order. Every *delivered* response must equal the reference.
    let policy = |seed: u64| RetryPolicy {
        max_retries: 60,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(40),
        seed,
    };
    std::thread::scope(|scope| {
        for t in 0..3usize {
            let (specs, reference) = (&specs, &reference);
            scope.spawn(move || {
                let mut client = Client::connect(tcp_addr).unwrap();
                let policy = policy(t as u64);
                for pass in 0..2 {
                    for i in 0..specs.len() {
                        let i = (i + 2 * t + pass) % specs.len();
                        let resp = client
                            .run_with_retry(&specs[i], &policy)
                            .unwrap_or_else(|e| panic!("tcp client {t}, spec {i}: {e}"));
                        assert_eq!(resp, reference[i], "tcp client {t}: spec {i} diverged");
                    }
                }
            });
        }
        for t in 0..2usize {
            let (specs, reference) = (&specs, &reference);
            scope.spawn(move || {
                let mut client = HttpClient::connect(http_addr).unwrap();
                let policy = policy(100 + t as u64);
                for pass in 0..2 {
                    for i in 0..specs.len() {
                        let i = (i + 3 * t + pass) % specs.len();
                        let resp = client
                            .run_with_retry(&specs[i], &policy)
                            .unwrap_or_else(|e| panic!("http client {t}, spec {i}: {e}"));
                        assert_eq!(resp, reference[i], "http client {t}: spec {i} diverged");
                    }
                }
            });
        }
    });

    let m = service.metrics();
    assert!(fault.fired() > 0, "the plan never fired");
    assert_eq!(
        m.jobs_submitted,
        m.cache_hits + m.cache_misses + m.coalesced + m.shed,
        "admission accounting broke under chaos"
    );
    // The injected append failures demoted the store without failing
    // a single job (every delivery above was asserted byte-identical).
    assert_eq!(m.store_degraded, 1);

    http.shutdown();
    server.shutdown();
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_store_leaves_a_recoverable_log_behind() {
    // A short-write fault leaves a crash-shaped ragged tail; the next
    // open must recover cleanly (dropping only the torn record) and
    // serve what was durably written before the fault.
    let specs = soak_specs();
    let dir = scratch_dir("recover");
    {
        // Two appends land durably through a fault-free service.
        let healthy = Service::open(&ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .unwrap();
        healthy.run(&specs[0]).unwrap();
        healthy.run(&specs[1]).unwrap();
        assert_eq!(healthy.metrics().store_records, 2);
    }
    {
        let plan = FaultPlan::parse("seed=5;store.append.short=1.0").unwrap();
        let faulty = Service::open(&ServiceConfig {
            cache_dir: Some(dir.clone()),
            fault: Some(Arc::new(FaultInjector::new(plan))),
            ..ServiceConfig::default()
        })
        .unwrap();
        // The torn append degrades the store but still answers.
        faulty.run(&specs[2]).unwrap();
        assert_eq!(faulty.metrics().store_degraded, 1);
    }
    // Reopen healthy: the two whole records survive, the torn tail is
    // dropped, and the service answers them without engine re-runs.
    let reopened = Service::open(&ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    })
    .unwrap();
    reopened.run(&specs[0]).unwrap();
    reopened.run(&specs[1]).unwrap();
    let m = reopened.metrics();
    assert_eq!(m.cache_misses, 0, "recovered records were not served");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}
