//! Integration tests for the persistent result store, driven entirely
//! through the public [`Service`] API: restart byte-identity across
//! all four variants (property-tested), and corruption recovery —
//! truncated tails, flipped checksum bytes, and garbage headers must
//! cost records, never correctness or startup.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use dsa_core::dist::VariantInstance;
use dsa_graphs::gen;
use dsa_service::{wire, JobSpec, Service, ServiceConfig};

/// A fresh per-test store directory (no tempfile dependency).
fn store_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dsa-store-it-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The store's single record log (found, not named, so the test does
/// not depend on the private file-name constant).
fn log_path(dir: &Path) -> PathBuf {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("store dir exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    assert_eq!(files.len(), 1, "store dir holds exactly the record log");
    files.pop().expect("one file")
}

fn persistent_cfg(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    }
}

/// One seeded instance of every variant.
fn four_variant_specs(seed: u64) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gen::gnp_connected(14 + (seed % 7) as usize, 0.3, &mut rng);
    let d = gen::random_digraph_connected(10 + (seed % 5) as usize, 0.15, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    vec![
        JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, seed),
        JobSpec::new(VariantInstance::Directed { graph: d }, seed + 1),
        JobSpec::new(
            VariantInstance::Weighted {
                graph: g.clone(),
                weights: w,
            },
            seed + 2,
        ),
        JobSpec::new(
            VariantInstance::ClientServer {
                graph: g,
                clients,
                servers,
            },
            seed + 3,
        ),
    ]
}

/// Wire-encoded responses for `specs` against a service over `dir`,
/// plus the (misses, hits, disk hits) classification it ended with.
fn serve_all(
    dir: &Path,
    cache_capacity: usize,
    specs: &[JobSpec],
) -> (Vec<String>, (u64, u64, u64)) {
    let service = Service::new(&ServiceConfig {
        cache_capacity,
        ..persistent_cfg(dir)
    });
    let bodies = specs
        .iter()
        .map(|s| wire::encode_run_response(&service.run(s).expect("serve")))
        .collect();
    let m = service.metrics();
    assert_eq!(
        m.jobs_submitted,
        m.cache_hits + m.cache_misses + m.coalesced,
        "classification invariant"
    );
    assert!(m.disk_hits <= m.cache_hits);
    (bodies, (m.cache_misses, m.cache_hits, m.disk_hits))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A populated store, reopened, serves byte-identical responses
    /// for all four variants — through the warm LRU (ample capacity)
    /// and through the verified disk path (capacity starved) alike.
    #[test]
    fn reopened_store_serves_all_variants_byte_identically(seed in 0u64..200) {
        let dir = store_dir("prop");
        let specs = four_variant_specs(seed);
        let (cold, (misses, _, disk)) = serve_all(&dir, 256, &specs);
        prop_assert_eq!(misses, 4);
        prop_assert_eq!(disk, 0);
        // Restart 1: ample LRU — warm start answers from memory.
        let (warm, (misses, hits, disk)) = serve_all(&dir, 256, &specs);
        prop_assert_eq!(&warm, &cold);
        prop_assert_eq!((misses, hits, disk), (0, 4, 0));
        // Restart 2: starved LRU — the disk path must carry load,
        // with the same bytes.
        let (starved, (misses, hits, disk)) = serve_all(&dir, 1, &specs);
        prop_assert_eq!(&starved, &cold);
        prop_assert_eq!((misses, hits), (0, 4));
        prop_assert!(disk > 0, "expected verified disk hits, got none");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn truncated_tail_recovers_and_recomputes_only_the_lost_records() {
    let dir = store_dir("trunc");
    let specs = four_variant_specs(42);
    let (cold, _) = serve_all(&dir, 256, &specs);
    // Chop bytes off the end of the log: the tail record(s) die, the
    // prefix survives, startup succeeds, and every response still
    // matches its cold bytes (lost records are simply recomputed).
    let path = log_path(&dir);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();
    let (recovered, (misses, hits, _)) = serve_all(&dir, 1, &specs);
    assert_eq!(recovered, cold, "recovery must never change bytes");
    assert!(misses >= 1, "the truncated record must recompute");
    assert!(hits >= 1, "the intact prefix must still serve");
    // The recompute re-persisted the lost record: a further restart
    // serves everything from the store again.
    let (healed, (misses, _, disk)) = serve_all(&dir, 1, &specs);
    assert_eq!(healed, cold);
    assert_eq!(misses, 0);
    assert!(disk > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_byte_skips_the_bad_record_not_the_startup() {
    let dir = store_dir("flip");
    let specs = four_variant_specs(7);
    let (cold, _) = serve_all(&dir, 256, &specs);
    // Flip one byte in the middle of the log (inside some record's
    // payload or checksum): that record fails verification and is
    // dropped; everything else keeps serving, and nothing wrong is
    // ever served.
    let path = log_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    std::fs::write(&path, &bytes).unwrap();
    let (recovered, (misses, hits, _)) = serve_all(&dir, 1, &specs);
    assert_eq!(
        recovered, cold,
        "a corrupt record must recompute, never lie"
    );
    assert!(misses >= 1, "the corrupted record must recompute");
    assert!(hits >= 1, "records before the flip must still serve");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_records_are_counted_and_exported() {
    // Regression test for the `store_records_dropped` metric: a
    // corrupted cache dir must surface the drop count through
    // `Service::metrics`, the JSON body of `GET /v1/metrics`, and the
    // Prometheus exposition — not just a log line.
    let dir = store_dir("dropcount");
    let specs = four_variant_specs(11);
    let (_, _) = serve_all(&dir, 256, &specs);
    let path = log_path(&dir);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    std::fs::write(&path, &bytes).unwrap();

    let service = std::sync::Arc::new(Service::new(&persistent_cfg(&dir)));
    let m = service.metrics();
    assert!(
        m.store_records_dropped >= 1,
        "recovery dropped a corrupt record but the counter reads 0"
    );
    let http =
        dsa_service::HttpServer::with_service("127.0.0.1:0", std::sync::Arc::clone(&service))
            .expect("bind http");
    let mut client = dsa_service::HttpClient::connect(http.addr()).expect("connect");
    let parsed = dsa_runtime::json::Json::parse(&client.metrics_json().expect("metrics"))
        .expect("metrics json");
    let dropped = parsed
        .get("store_records_dropped")
        .and_then(dsa_runtime::json::Json::as_u64)
        .expect("store_records_dropped field");
    assert_eq!(dropped, m.store_records_dropped);
    let text = client.metrics_prometheus().expect("prometheus");
    assert!(
        text.contains(&format!("spanner_store_records_dropped_total {dropped}")),
        "exposition missing the dropped-records sample"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_header_starts_fresh_without_failing() {
    let dir = store_dir("header");
    let specs = four_variant_specs(9);
    let (cold, _) = serve_all(&dir, 256, &specs);
    std::fs::write(log_path(&dir), b"\x00\x01\x02 this is not a store").unwrap();
    // Startup succeeds with an empty store; everything recomputes to
    // the same bytes and repopulates the log.
    let (recovered, (misses, _, disk)) = serve_all(&dir, 256, &specs);
    assert_eq!(recovered, cold);
    assert_eq!(misses, 4, "a dropped store recomputes everything");
    assert_eq!(disk, 0);
    let (warm, (misses, _, _)) = serve_all(&dir, 256, &specs);
    assert_eq!(warm, cold);
    assert_eq!(misses, 0, "the rewritten log must serve again");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_services_over_time_share_work_not_a_process() {
    // The store is the only channel between these two service
    // lifetimes; the second must not re-run the engine at all, and
    // `store_records` must count distinct keys, not appends.
    let dir = store_dir("lifetimes");
    let specs = four_variant_specs(3);
    {
        let service = Service::new(&persistent_cfg(&dir));
        for s in &specs {
            service.run(s).unwrap();
            service.run(s).unwrap(); // in-memory repeat, no new record
        }
        assert_eq!(service.metrics().store_records, 4);
    }
    let service = Service::new(&persistent_cfg(&dir));
    for s in &specs {
        assert!(service.run(s).unwrap().converged);
    }
    let m = service.metrics();
    assert_eq!(m.cache_misses, 0);
    assert_eq!(m.store_records, 4);
    let _ = std::fs::remove_dir_all(&dir);
}
