//! Property tests for the serving layer: for random graphs, a
//! cache-hit response is byte-identical to the cold-compute response,
//! coalesced concurrent duplicates all receive the same summary, and
//! reordered submissions of the same edge set share one cache entry
//! while staying valid in each caller's id space.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsa_core::dist::VariantInstance;
use dsa_core::verify::is_k_spanner;
use dsa_graphs::{gen, EdgeSet, Graph};
use dsa_service::{wire, JobSpec, Service, ServiceConfig};

fn arb_instance() -> impl Strategy<Value = (VariantInstance, u64)> {
    (3usize..28, 0u64..500, 1u32..4, 0u64..64).prop_map(|(n, seed, d, engine_seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnp_connected(n, 0.1 * d as f64, &mut rng);
        let instance = match seed % 3 {
            0 => VariantInstance::Undirected { graph: g },
            1 => {
                let weights = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
                VariantInstance::Weighted { graph: g, weights }
            }
            _ => {
                let (clients, servers) = gen::client_server_split(&g, 0.7, 0.7, &mut rng);
                VariantInstance::ClientServer {
                    graph: g,
                    clients,
                    servers,
                }
            }
        };
        (instance, engine_seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cold compute, cache hit, and a fresh service instance all
    /// produce byte-identical wire responses for the same spec.
    #[test]
    fn cache_hit_is_byte_identical((instance, seed) in arb_instance()) {
        let spec = JobSpec::new(instance, seed);
        let service = Service::new(&ServiceConfig::default());
        let cold = wire::encode_run_response(&service.run(&spec).unwrap());
        let warm = wire::encode_run_response(&service.run(&spec).unwrap());
        prop_assert_eq!(&cold, &warm);
        let m = service.metrics();
        prop_assert_eq!(m.cache_misses, 1);
        prop_assert_eq!(m.cache_hits, 1);
        // A brand-new service (cold cache) agrees too: the response
        // is a pure function of the spec.
        let fresh = Service::new(&ServiceConfig::default());
        let recomputed = wire::encode_run_response(&fresh.run(&spec).unwrap());
        prop_assert_eq!(&cold, &recomputed);
    }

    /// N concurrent identical submissions coalesce into at most one
    /// engine run per cache generation, and all waiters receive the
    /// same response.
    #[test]
    fn coalesced_duplicates_agree((instance, seed) in arb_instance()) {
        let spec = JobSpec::new(instance, seed);
        let service = Arc::new(Service::new(&ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        }));
        let responses: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let spec = spec.clone();
                    scope.spawn(move || service.run(&spec).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for resp in &responses[1..] {
            prop_assert_eq!(resp, &responses[0]);
        }
        let m = service.metrics();
        // Exactly one engine run; the other five were coalesced onto
        // it or (if they arrived after it finished) served from cache.
        prop_assert_eq!(m.cache_misses, 1);
        prop_assert_eq!(m.cache_hits + m.coalesced, 5);
        prop_assert_eq!(m.jobs_submitted, 6);
    }

    /// Submitting the same edge set in a shuffled order hits the same
    /// cache entry, and each response is a valid 2-spanner in its own
    /// submitted id space.
    #[test]
    fn shuffled_submission_shares_cache(
        (n, seed, d, engine_seed) in (4usize..24, 0u64..400, 2u32..4, 0u64..32)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen::gnp_connected(n, 0.1 * d as f64, &mut rng);
        let mut edges: Vec<(usize, usize)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        // Shuffle edge insertion order (and flip endpoint order).
        for i in (1..edges.len()).rev() {
            let j = rng.gen_range(0..=i);
            edges.swap(i, j);
        }
        let shuffled = Graph::from_edges(
            g.num_vertices(),
            edges.iter().map(|&(u, v)| (v, u)),
        );
        let service = Service::new(&ServiceConfig::default());
        let a = service
            .run(&JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, engine_seed))
            .unwrap();
        let b = service
            .run(&JobSpec::new(
                VariantInstance::Undirected { graph: shuffled.clone() },
                engine_seed,
            ))
            .unwrap();
        prop_assert_eq!(a.key, b.key);
        let m = service.metrics();
        prop_assert_eq!((m.cache_misses, m.cache_hits), (1, 1));
        let sa = EdgeSet::from_iter(g.num_edges(), a.spanner.iter().copied());
        let sb = EdgeSet::from_iter(shuffled.num_edges(), b.spanner.iter().copied());
        prop_assert!(is_k_spanner(&g, &sa, 2));
        prop_assert!(is_k_spanner(&shuffled, &sb, 2));
        // Identical spanners as endpoint-pair sets.
        let pairs = |g: &Graph, ids: &[usize]| {
            let mut p: Vec<_> = ids.iter().map(|&e| g.endpoints(e)).collect();
            p.sort_unstable();
            p
        };
        prop_assert_eq!(pairs(&g, &a.spanner), pairs(&shuffled, &b.spanner));
    }

    /// Admission control accounts for every job exactly once under
    /// concurrent hammering of a deliberately tiny pool: what the
    /// callers observed (deliveries + busy rejections) matches the
    /// server-side classes, `submitted = hits + misses + coalesced +
    /// shed`, and nothing is both shed and delivered.
    #[test]
    fn admission_control_accounts_for_every_job(
        (workers, queue, threads, jobs, seed) in
            (1usize..3, 1usize..3, 2usize..6, 1u64..8, 0u64..200)
    ) {
        let service = Arc::new(Service::new(&ServiceConfig {
            workers,
            queue_capacity: queue,
            ..ServiceConfig::default()
        }));
        let (delivered, shed) = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let service = Arc::clone(&service);
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed ^ ((t as u64) << 32));
                        let (mut delivered, mut shed) = (0u64, 0u64);
                        for j in 0..jobs {
                            let g = gen::gnp_connected(
                                6 + (j as usize % 10),
                                0.3,
                                &mut rng,
                            );
                            let spec = JobSpec::new(
                                VariantInstance::Undirected { graph: g },
                                seed.wrapping_add(j),
                            );
                            match service.run(&spec) {
                                Ok(_) => delivered += 1,
                                Err(dsa_service::JobError::Busy { retry_after_ms }) => {
                                    assert!((10..=30_000).contains(&retry_after_ms));
                                    shed += 1;
                                }
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                        (delivered, shed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .fold((0, 0), |(d, s), (d2, s2)| (d + d2, s + s2))
        });
        let m = service.metrics();
        prop_assert_eq!(m.jobs_submitted, delivered + shed);
        prop_assert_eq!(m.shed, shed);
        prop_assert_eq!(
            m.jobs_submitted,
            m.cache_hits + m.cache_misses + m.coalesced + m.shed
        );
        // No cancellations in this workload, so every admitted job was
        // delivered to exactly one caller.
        prop_assert_eq!(m.jobs_completed, delivered);
    }
}
