//! Graceful-drain test against the real `spanner-serve` binary:
//! SIGTERM under load must stop accepting, let every in-flight job
//! finish, and exit 0 — with zero delivered-but-wrong responses. The
//! single-writer store lock is exercised across the restart too.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dsa_core::dist::VariantInstance;
use dsa_graphs::gen;
use dsa_service::{Client, JobSpec, RetryPolicy, Service, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SERVE_BIN: &str = env!("CARGO_BIN_EXE_spanner-serve");

/// Starts `spanner-serve` on an ephemeral port and returns the child
/// plus the bound address parsed from its `listening <addr>` line.
fn start_server(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(SERVE_BIN)
        .args(["--addr", "127.0.0.1:0", "--workers", "2", "--queue", "4"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn spanner-serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before listening")
            .expect("read server stdout");
        if let Some(addr) = line.strip_prefix("listening ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn sigterm(child: &Child) {
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -TERM failed");
}

#[test]
fn sigterm_under_load_drains_and_loses_no_delivered_response() {
    let specs: Vec<JobSpec> = {
        let mut rng = StdRng::seed_from_u64(31);
        (0..10)
            .map(|i| {
                JobSpec::new(
                    VariantInstance::Undirected {
                        graph: gen::gnp_connected(40 + 4 * (i as usize), 0.2, &mut rng),
                    },
                    i,
                )
            })
            .collect()
    };
    // Fault-free reference for every spec this test ever submits.
    let reference_service = Service::new(&ServiceConfig::default());
    let reference: Vec<_> = specs
        .iter()
        .map(|spec| reference_service.run(spec).unwrap())
        .collect();

    let (child, addr) = start_server(&["--drain-timeout", "30"]);
    // Load: three retrying clients loop over the specs until the
    // server goes away; the SIGTERM lands mid-stream. Everything a
    // client *received* must match the reference — a drained server
    // may refuse or cut a request, but it must never corrupt one.
    let stop_at = Instant::now() + Duration::from_secs(10);
    let delivered: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..3usize {
            let (specs, reference, addr) = (&specs, &reference, addr.clone());
            handles.push(scope.spawn(move || {
                let Ok(mut client) = Client::connect(addr.as_str()) else {
                    return 0u64;
                };
                let policy = RetryPolicy {
                    max_retries: 3,
                    base: Duration::from_millis(2),
                    cap: Duration::from_millis(20),
                    seed: t as u64,
                };
                let mut delivered = 0u64;
                'outer: while Instant::now() < stop_at {
                    for (i, spec) in specs.iter().enumerate() {
                        match client.run_with_retry(spec, &policy) {
                            Ok(resp) => {
                                assert_eq!(resp, reference[i], "client {t}: spec {i} diverged");
                                delivered += 1;
                            }
                            // The server shut down underneath us —
                            // expected once SIGTERM lands.
                            Err(_) => break 'outer,
                        }
                    }
                }
                delivered
            }));
        }
        // Let the load ramp, then deliver SIGTERM mid-flight.
        std::thread::sleep(Duration::from_millis(300));
        sigterm(&child);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert!(delivered > 0, "no responses delivered before the drain");

    let mut child = child;
    let status = wait_with_deadline(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "drain must exit 0");
}

#[test]
fn interrupted_connection_mid_request_does_not_block_the_drain() {
    // A client that sends half a frame and stalls (slow loris) must
    // not hold the drain hostage: shutdown turns the stalled read into
    // a clean close and the process still exits 0 inside the bound.
    let (child, addr) = start_server(&["--drain-timeout", "30"]);
    let mut stalled = TcpStream::connect(&addr).expect("connect");
    // Frame header promising 1000 bytes, then silence.
    stalled.write_all(&1000u32.to_be_bytes()).unwrap();
    stalled.write_all(b"run v1\n").unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200));
    sigterm(&child);
    let mut child = child;
    let status = wait_with_deadline(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "drain must exit 0");
    // The stalled connection was closed server-side.
    let mut buf = [0u8; 16];
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert_eq!(stalled.read(&mut buf).unwrap_or(0), 0);
}

#[test]
fn cache_dir_takes_a_single_writer_lock() {
    let dir = std::env::temp_dir().join(format!("dsa-drain-lock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_flag = dir.to_str().unwrap();
    let (child, _addr) = start_server(&["--cache-dir", dir_flag]);
    // A second server on the same directory must fail fast — the lock
    // holder's PID is alive.
    let second = Command::new(SERVE_BIN)
        .args(["--addr", "127.0.0.1:0", "--cache-dir", dir_flag])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("spawn second server");
    assert_ne!(second.code(), Some(0), "second writer must be refused");
    // After a graceful stop the lock is released and a successor
    // starts cleanly.
    sigterm(&child);
    let mut child = child;
    let status = wait_with_deadline(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0));
    let (successor, _addr) = start_server(&["--cache-dir", dir_flag]);
    sigterm(&successor);
    let mut successor = successor;
    let status = wait_with_deadline(&mut successor, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `Child::wait` with a deadline: polls `try_wait`, kills on overrun.
fn wait_with_deadline(child: &mut Child, deadline: Duration) -> std::process::ExitStatus {
    let until = Instant::now() + deadline;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= until {
            let _ = child.kill();
            panic!("server did not exit within {deadline:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
