//! Named, long-lived graphs: the resource registry behind the
//! `/v1/graphs` HTTP surface and the `graph-*` wire frames.
//!
//! A named graph is a persistent, evolving edge set plus the engine
//! configuration it is solved under. Callers create it once (`PUT`),
//! stream edge insert/delete deltas at it (`PATCH`), and read the
//! maintained spanner (`GET .../spanner`) — instead of re-shipping and
//! re-solving a full edge list per request.
//!
//! # Determinism contract
//!
//! The served spanner is **always** `solve(current live edge set)`
//! under the graph's stored config — the exact bytes a one-shot job
//! over the same edges would return, executed through the same service
//! pipeline (canonicalization, cache, store, coalescing). Incremental
//! maintenance never changes *what* is served, only *when* the engine
//! runs:
//!
//! * **commuted** — an inserted edge is already covered by the current
//!   working cover (or is not a coverage target): no engine work.
//! * **repaired** — an inserted target is uncovered: a local repair
//!   pass ([`dsa_core::dist::repair_cover`]) patches the working cover
//!   in O(delta) and the engine still does not run. Each repair adds
//!   *repair debt*; debt is cleared by the next full solve.
//! * **recomputed** — a deletion, a restart (the replayed log carries
//!   no cover), or repair debt above [`REPAIR_DEBT_THRESHOLD`] makes
//!   the working cover untrustworthy as a classification basis: the
//!   next solve is a full engine run over the live edge set.
//!
//! The working cover is used only for classification and metadata; it
//! is never served. Class counts are process-local runtime metrics —
//! they depend on restart timing and patch batching — while the served
//! spanner bytes are a pure function of the delta history.
//!
//! # Persistence
//!
//! With a `--cache-dir`, every accepted create/patch/delete command is
//! appended to `graphs.log` in the store directory (the store's
//! advisory single-writer lock covers the whole directory, so the log
//! needs no lock of its own). Records reuse the wire codec's command
//! text — the wire protocol and the log can never drift — framed like
//! the result store: `u32 BE length | payload | u64 BE FNV-1a
//! checksum`. Recovery skips checksum-corrupt records and truncates a
//! ragged tail, so a crash mid-append recovers to the last fully
//! appended delta. An append failure demotes the registry to
//! memory-only (mirroring the result store's degrade path) — the
//! service keeps answering, it just stops persisting graph history.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dsa_runtime::sync::OrderedMutex;

use dsa_core::dist::{
    plan_insertions, repair_cover, ClientServerTwoSpanner, DirectedTwoSpanner, EngineConfig,
    SpannerVariant, UndirectedTwoSpanner, VariantInstance, VariantKind, WeightedTwoSpanner,
};
use dsa_graphs::canon::Fnv1a;
use dsa_graphs::{DiGraph, EdgeSet, EdgeWeights, Graph};
use dsa_runtime::{obs, FaultInjector};

use crate::job::{JobError, JobResponse, JobSpec};
use crate::wire;

/// Repair debt (cover edges added by local repairs since the last full
/// solve) above which the next insert patch stops repairing and
/// recomputes instead. Repairs are individually sound but greedy; past
/// this bound a fresh engine solve both re-tightens the cover and
/// resets the classification basis.
pub const REPAIR_DEBT_THRESHOLD: usize = 256;

/// Maximum length of a graph id.
pub const MAX_GRAPH_ID_LEN: usize = 64;

/// File-format magic identifying a v1 graph delta log.
const GRAPH_LOG_MAGIC: &[u8; 8] = b"DSAGRPH1";

/// Name of the delta log inside a store directory (next to the result
/// store's `results.log`; the directory's advisory lock covers both).
pub(crate) const GRAPH_LOG_FILE: &str = "graphs.log";

/// Upper bound on one log record payload: a create command carries at
/// most one wire frame's worth of graph text.
const MAX_GRAPH_RECORD: usize = 2 * wire::MAX_FRAME;

fn graph_checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(b"dsa-graph-record-v1");
    h.write_bytes(payload);
    h.finish()
}

// ---------------------------------------------------------------------
// Public request/response types
// ---------------------------------------------------------------------

/// A request to create a named graph: the instance (initial edges plus
/// variant-specific extras) and the result-relevant engine config it
/// will be solved under for its whole lifetime.
#[derive(Clone, Debug)]
pub struct GraphSpec {
    /// The graph's name: 1–64 characters from `[a-zA-Z0-9._-]`.
    pub id: String,
    /// The initial instance. Edge ids in the live graph start as this
    /// instance's edge ids (insertion order) and extend from there.
    pub instance: VariantInstance,
    /// Engine configuration. Execution policy (shard count, cancel
    /// flag, timing collection) is normalized away at registration:
    /// it never affects the served bytes.
    pub config: EngineConfig,
}

/// Role of an edge inserted into a client-server graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeRole {
    /// The edge needs covering (a client edge).
    Client,
    /// The edge may be used in covering 2-paths (a server edge).
    Server,
    /// Both of the above.
    Both,
}

impl EdgeRole {
    /// The wire spelling (`client` / `server` / `both`).
    pub fn as_str(&self) -> &'static str {
        match self {
            EdgeRole::Client => "client",
            EdgeRole::Server => "server",
            EdgeRole::Both => "both",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<EdgeRole> {
        match s {
            "client" => Some(EdgeRole::Client),
            "server" => Some(EdgeRole::Server),
            "both" => Some(EdgeRole::Both),
            _ => None,
        }
    }
}

/// One edge delta in a `PATCH`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Insert one edge. `weight` is required for the weighted variant
    /// and forbidden elsewhere; `role` is optional for the
    /// client-server variant (no role: neither client nor server) and
    /// forbidden elsewhere.
    Insert {
        /// One endpoint.
        u: usize,
        /// The other endpoint (the head, for directed graphs).
        v: usize,
        /// Edge weight (weighted variant only).
        weight: Option<u64>,
        /// Client/server role (client-server variant only).
        role: Option<EdgeRole>,
    },
    /// Delete the edge `{u, v}` (the ordered edge `(u, v)` for
    /// directed graphs).
    Delete {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
}

/// Per-patch (and per-graph cumulative) delta classification counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaClasses {
    /// Ops that commuted with the working cover: no engine work.
    pub commuted: u64,
    /// Ops answered by a local repair pass: no engine run.
    pub repaired: u64,
    /// Ops that invalidated the cover or forced a full solve.
    pub recomputed: u64,
}

impl DeltaClasses {
    fn add(&mut self, other: &DeltaClasses) {
        self.commuted += other.commuted;
        self.repaired += other.repaired;
        self.recomputed += other.recomputed;
    }
}

/// Result of a create.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphCreated {
    /// The graph id.
    pub id: String,
    /// Applied delta count (0 for a fresh create).
    pub version: u64,
    /// Live edge count.
    pub edges: usize,
    /// Size of the eagerly solved spanner (for an idempotent
    /// re-create: the current working cover, 0 if unsolved since
    /// restart).
    pub spanner_size: usize,
    /// True when the graph already existed with an identical
    /// definition (idempotent re-create; maps to HTTP 200 vs 201).
    pub existed: bool,
}

/// Result of a patch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphPatched {
    /// The graph id.
    pub id: String,
    /// Total deltas applied since creation (after this patch).
    pub version: u64,
    /// Ops applied by this patch.
    pub applied: usize,
    /// How this patch's ops were classified.
    pub classes: DeltaClasses,
    /// Live edge count after the patch.
    pub edges: usize,
}

/// Graph metadata/stats.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphMeta {
    /// The graph id.
    pub id: String,
    /// The variant.
    pub kind: VariantKind,
    /// Total deltas applied since creation.
    pub version: u64,
    /// Vertex count (fixed at creation).
    pub vertices: usize,
    /// Live edge count.
    pub edges: usize,
    /// The engine seed.
    pub seed: u64,
    /// Size of the working cover, absent when invalidated (after a
    /// delete or a restart, before the next solve).
    pub cover_size: Option<usize>,
    /// Repair debt accumulated since the last full solve.
    pub debt: usize,
    /// Cumulative per-graph delta classification counts (process-local;
    /// reset by restarts).
    pub classes: DeltaClasses,
}

/// The maintained spanner: the solve of the current live edge set,
/// with edges reported as endpoint pairs (live edge ids are internal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSpannerResult {
    /// The graph id.
    pub id: String,
    /// The delta version this spanner answers.
    pub version: u64,
    /// The canonical job/cache key of the underlying solve.
    pub key: u64,
    /// The variant.
    pub kind: VariantKind,
    /// Whether the engine converged.
    pub converged: bool,
    /// Engine iterations of the underlying run.
    pub iterations: u64,
    /// LOCAL rounds of the underlying run.
    pub local_rounds: u64,
    /// Star-fallback count of the underlying run.
    pub star_fallbacks: u64,
    /// Spanner edges as `(u, v)` endpoint pairs, ordered by live edge
    /// id ascending — a pure function of the delta history.
    pub edges: Vec<(usize, usize)>,
}

/// Why a graph operation failed.
#[derive(Clone, Debug)]
pub enum GraphError {
    /// No graph with that id.
    NotFound(String),
    /// The id exists with a different definition (create conflict).
    Conflict(String),
    /// The request is structurally valid but semantically rejected
    /// (bad id, duplicate insert, missing delete target, ...).
    Invalid(String),
    /// The underlying solve failed (busy, timeout, ...).
    Job(JobError),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NotFound(id) => write!(f, "no graph named `{id}`"),
            GraphError::Conflict(m) => write!(f, "graph conflict: {m}"),
            GraphError::Invalid(m) => write!(f, "invalid graph request: {m}"),
            GraphError::Job(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for GraphError {}

/// Whether `id` is a well-formed graph name: 1–64 characters from
/// `[a-zA-Z0-9._-]` (URL-safe, shell-safe, filename-safe).
pub fn valid_graph_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_GRAPH_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

// ---------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------

/// One live edge. The record index in [`GraphState::edges`] is the
/// live edge id, which is also the engine edge id of the instance
/// rebuilt from the list (insertion-order CSR).
#[derive(Clone, Copy, Debug)]
struct EdgeRecord {
    u: usize,
    v: usize,
    /// Weight (weighted variant; 0 elsewhere).
    weight: u64,
    /// Client/server role flags (client-server variant; false
    /// elsewhere).
    client: bool,
    server: bool,
}

struct GraphState {
    kind: VariantKind,
    config: EngineConfig,
    n: usize,
    /// The canonical create command text — the idempotency identity of
    /// a re-create, and the bytes the log replays.
    create_cmd: String,
    /// Live edges in insertion order. Deletion compacts the list, so
    /// ids shift — which is fine, because deletion always invalidates
    /// the working cover.
    edges: Vec<EdgeRecord>,
    /// Normalized endpoint pair -> live edge id, for O(1) existence
    /// checks. Pairs are `(min, max)` except for directed graphs.
    index: HashMap<(usize, usize), usize>,
    /// Applied delta count.
    version: u64,
    /// The working cover over live edge ids (classification basis, a
    /// valid 2-spanner of the live graph when present — never served).
    cover: Option<EdgeSet>,
    /// Cover edges added by local repairs since the last full solve.
    debt: usize,
    /// Cumulative per-graph classification counts.
    classes: DeltaClasses,
}

struct GraphEntry {
    state: OrderedMutex<GraphState>,
}

/// What open-time log replay found.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ReplayReport {
    /// Graphs live after replay.
    pub graphs: usize,
    /// Commands applied.
    pub records: usize,
    /// Corrupt records dropped by the framing walk.
    pub dropped: u64,
    /// Well-framed records skipped by semantic replay (unknown id,
    /// un-decodable command).
    pub skipped: u64,
}

/// The named-graph registry shared by the TCP and HTTP frontends.
pub(crate) struct GraphRegistry {
    graphs: OrderedMutex<HashMap<String, Arc<GraphEntry>>>,
    log: Option<OrderedMutex<GraphLog>>,
    /// Cleared when an append fails: the registry keeps serving from
    /// memory but stops persisting (mirrors the result store).
    log_ok: AtomicBool,
    fault: Arc<FaultInjector>,
}

impl GraphState {
    fn normalize_pair(&self, u: usize, v: usize) -> Result<(usize, usize), GraphError> {
        if u >= self.n || v >= self.n {
            return Err(GraphError::Invalid(format!(
                "edge ({u}, {v}) out of range for {} vertices",
                self.n
            )));
        }
        if u == v {
            return Err(GraphError::Invalid(format!("self-loop ({u}, {u})")));
        }
        Ok(match self.kind {
            VariantKind::Directed => (u, v),
            _ => (u.min(v), u.max(v)),
        })
    }

    /// Validates `ops` against the current live set without mutating
    /// it (a rejected patch applies nothing). Ops are checked
    /// sequentially, so an insert+delete of the same edge inside one
    /// patch is legal.
    fn validate_ops(&self, ops: &[DeltaOp]) -> Result<(), GraphError> {
        if ops.is_empty() {
            return Err(GraphError::Invalid("patch carries no ops".into()));
        }
        let mut present: HashSet<(usize, usize)> = self.index.keys().copied().collect();
        for op in ops {
            match *op {
                DeltaOp::Insert { u, v, weight, role } => {
                    let pair = self.normalize_pair(u, v)?;
                    match self.kind {
                        VariantKind::Weighted => {
                            if weight.is_none() {
                                return Err(GraphError::Invalid(format!(
                                    "insert ({u}, {v}): weighted graphs need a weight"
                                )));
                            }
                        }
                        _ => {
                            if weight.is_some() {
                                return Err(GraphError::Invalid(format!(
                                    "insert ({u}, {v}): only weighted graphs take a weight"
                                )));
                            }
                        }
                    }
                    if role.is_some() && self.kind != VariantKind::ClientServer {
                        return Err(GraphError::Invalid(format!(
                            "insert ({u}, {v}): only client-server graphs take a role"
                        )));
                    }
                    if !present.insert(pair) {
                        return Err(GraphError::Invalid(format!(
                            "insert ({u}, {v}): edge already exists"
                        )));
                    }
                }
                DeltaOp::Delete { u, v } => {
                    let pair = self.normalize_pair(u, v)?;
                    if !present.remove(&pair) {
                        return Err(GraphError::Invalid(format!(
                            "delete ({u}, {v}): no such edge"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies validated ops. Returns the live ids of inserted edges
    /// (meaningful only for insert-only patches: deletion shifts ids)
    /// and whether any op was a delete.
    ///
    /// Callers run [`GraphState::validate_ops`] first, so the fallible
    /// steps here cannot fail in practice; they still propagate as
    /// `GraphError` rather than panicking — a request-path invariant
    /// slip must degrade to a failed patch, not a dead worker.
    fn apply_ops(&mut self, ops: &[DeltaOp]) -> Result<(Vec<usize>, bool), GraphError> {
        let mut new_ids = Vec::new();
        let mut had_delete = false;
        for op in ops {
            match *op {
                DeltaOp::Insert { u, v, weight, role } => {
                    let pair = self.normalize_pair(u, v)?;
                    let id = self.edges.len();
                    self.edges.push(EdgeRecord {
                        u: pair.0,
                        v: pair.1,
                        weight: weight.unwrap_or(0),
                        client: matches!(role, Some(EdgeRole::Client | EdgeRole::Both)),
                        server: matches!(role, Some(EdgeRole::Server | EdgeRole::Both)),
                    });
                    self.index.insert(pair, id);
                    new_ids.push(id);
                }
                DeltaOp::Delete { u, v } => {
                    had_delete = true;
                    let pair = self.normalize_pair(u, v)?;
                    let id = *self.index.get(&pair).ok_or_else(|| {
                        GraphError::Invalid(format!("delete ({u}, {v}): no such edge"))
                    })?;
                    self.edges.remove(id);
                    self.index.clear();
                    for (i, r) in self.edges.iter().enumerate() {
                        self.index.insert((r.u, r.v), i);
                    }
                }
            }
        }
        self.version += ops.len() as u64;
        Ok((new_ids, had_delete))
    }

    /// Rebuilds the engine instance from the live edge list. Live edge
    /// ids equal instance edge ids (insertion-order construction).
    fn instance(&self) -> VariantInstance {
        let pairs: Vec<(usize, usize)> = self.edges.iter().map(|r| (r.u, r.v)).collect();
        match self.kind {
            VariantKind::Undirected => VariantInstance::Undirected {
                graph: Graph::from_edges(self.n, pairs),
            },
            VariantKind::Weighted => VariantInstance::Weighted {
                graph: Graph::from_edges(self.n, pairs),
                weights: EdgeWeights::from_vec(self.edges.iter().map(|r| r.weight).collect()),
            },
            VariantKind::Directed => VariantInstance::Directed {
                graph: DiGraph::from_edges(self.n, pairs),
            },
            VariantKind::ClientServer => {
                let m = self.edges.len();
                let flagged = |f: fn(&EdgeRecord) -> bool| {
                    EdgeSet::from_iter(
                        m,
                        self.edges
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| f(r))
                            .map(|(i, _)| i),
                    )
                };
                VariantInstance::ClientServer {
                    graph: Graph::from_edges(self.n, pairs),
                    clients: flagged(|r| r.client),
                    servers: flagged(|r| r.server),
                }
            }
        }
    }

    /// The one-shot job equivalent of this graph's current state — the
    /// spec whose solve defines the served bytes.
    fn job_spec(&self) -> JobSpec {
        JobSpec {
            instance: self.instance(),
            config: self.config.clone(),
            timeout: None,
        }
    }

    /// Installs a fresh engine solve as the working cover.
    fn install_cover(&mut self, resp: &JobResponse) {
        self.cover = Some(EdgeSet::from_iter(
            self.edges.len(),
            resp.spanner.iter().copied(),
        ));
        self.debt = 0;
    }

    fn meta(&self, id: &str) -> GraphMeta {
        GraphMeta {
            id: id.to_string(),
            kind: self.kind,
            version: self.version,
            vertices: self.n,
            edges: self.edges.len(),
            seed: self.config.seed,
            cover_size: self.cover.as_ref().map(EdgeSet::len),
            debt: self.debt,
            classes: self.classes,
        }
    }
}

/// Classifies `new_ids` against the cover and repairs the uncovered
/// ones. Returns `(commuted, repaired, cover edges added)`.
fn plan_and_repair<V: SpannerVariant>(
    variant: &V,
    cover: &mut EdgeSet,
    new_ids: &[usize],
) -> (usize, usize, usize) {
    let plan = plan_insertions(variant, cover, new_ids);
    let added = repair_cover(variant, cover, &plan.uncovered);
    (plan.commuted.len(), plan.uncovered.len(), added.len())
}

/// Variant dispatch for [`plan_and_repair`] over a rebuilt instance.
fn classify_inserts(
    instance: &VariantInstance,
    cover: &mut EdgeSet,
    new_ids: &[usize],
) -> (usize, usize, usize) {
    match instance {
        VariantInstance::Undirected { graph } => {
            plan_and_repair(&UndirectedTwoSpanner::new(graph), cover, new_ids)
        }
        VariantInstance::Weighted { graph, weights } => {
            plan_and_repair(&WeightedTwoSpanner::new(graph, weights), cover, new_ids)
        }
        VariantInstance::Directed { graph } => {
            plan_and_repair(&DirectedTwoSpanner::new(graph), cover, new_ids)
        }
        VariantInstance::ClientServer {
            graph,
            clients,
            servers,
        } => plan_and_repair(
            &ClientServerTwoSpanner::new(graph, clients, servers),
            cover,
            new_ids,
        ),
    }
}

/// Strips execution policy from a config: shard count, cancellation,
/// and timing collection never affect served bytes, so a graph's
/// stored config (and its log encoding) normalizes them away.
fn normalized_config(mut config: EngineConfig) -> EngineConfig {
    config.num_shards = 1;
    config.cancel = None;
    config.collect_timings = false;
    config
}

/// Extracts `(n, records)` from an instance. Infallible: instances are
/// normalized by construction (the graph types reject self-loops and
/// duplicates).
fn records_of(instance: &VariantInstance) -> (usize, Vec<EdgeRecord>) {
    let blank = |(u, v): (usize, usize)| EdgeRecord {
        u,
        v,
        weight: 0,
        client: false,
        server: false,
    };
    match instance {
        VariantInstance::Undirected { graph } => (
            graph.num_vertices(),
            graph.edges().map(|(_, u, v)| blank((u, v))).collect(),
        ),
        VariantInstance::Directed { graph } => (
            graph.num_vertices(),
            graph.edges().map(|(_, u, v)| blank((u, v))).collect(),
        ),
        VariantInstance::Weighted { graph, weights } => (
            graph.num_vertices(),
            graph
                .edges()
                .map(|(e, u, v)| EdgeRecord {
                    u,
                    v,
                    weight: weights.get(e),
                    client: false,
                    server: false,
                })
                .collect(),
        ),
        VariantInstance::ClientServer {
            graph,
            clients,
            servers,
        } => (
            graph.num_vertices(),
            graph
                .edges()
                .map(|(e, u, v)| EdgeRecord {
                    u,
                    v,
                    weight: 0,
                    client: clients.contains(e),
                    server: servers.contains(e),
                })
                .collect(),
        ),
    }
}

impl GraphRegistry {
    /// Opens the registry, replaying `dir/graphs.log` when a store
    /// directory is configured. Must be called *after* the result
    /// store takes the directory's advisory lock.
    pub fn open(
        dir: Option<&Path>,
        fault: Arc<FaultInjector>,
    ) -> std::io::Result<(GraphRegistry, ReplayReport)> {
        let mut registry = GraphRegistry {
            graphs: OrderedMutex::new("graphs_map", 10, HashMap::new()),
            log: None,
            log_ok: AtomicBool::new(true),
            fault,
        };
        let mut report = ReplayReport::default();
        if let Some(dir) = dir {
            let (log, payloads) = GraphLog::open(dir)?;
            report.dropped = log.dropped;
            for payload in &payloads {
                if registry.replay(payload) {
                    report.records += 1;
                } else {
                    report.skipped += 1;
                }
            }
            registry.log = Some(OrderedMutex::new("graph_log", 30, log));
        }
        report.graphs = registry.live();
        Ok((registry, report))
    }

    /// Applies one logged command. Replay never solves: covers start
    /// absent and the first post-restart patch or spanner read
    /// recomputes. Returns false when the record cannot be applied
    /// (un-decodable, unknown id, stale semantics) — such records are
    /// skipped, never fatal, mirroring store corruption recovery.
    fn replay(&mut self, payload: &[u8]) -> bool {
        let request = match wire::decode_request(payload) {
            Ok(r) => r,
            Err(_) => return false,
        };
        match request {
            wire::Request::GraphCreate(spec) => {
                let map = self.graphs.get_mut();
                if !valid_graph_id(&spec.id) || map.contains_key(&spec.id) {
                    return false;
                }
                let state = build_state(&spec);
                map.insert(
                    spec.id.clone(),
                    Arc::new(GraphEntry {
                        state: OrderedMutex::new("graph_state", 20, state),
                    }),
                );
                true
            }
            wire::Request::GraphPatch { id, ops } => {
                let map = self.graphs.get_mut();
                let Some(entry) = map.get(&id) else {
                    return false;
                };
                let mut st = entry.state.lock();
                if st.validate_ops(&ops).is_err() || st.apply_ops(&ops).is_err() {
                    return false;
                }
                st.cover = None;
                st.debt = 0;
                true
            }
            wire::Request::GraphDelete { id } => self.graphs.get_mut().remove(&id).is_some(),
            _ => false,
        }
    }

    /// Number of live graphs.
    pub fn live(&self) -> usize {
        self.graphs.lock().len()
    }

    /// Whether the delta log is still persisting (false after an
    /// append failure, or trivially true without a store directory).
    pub fn log_healthy(&self) -> bool {
        self.log_ok.load(Ordering::Relaxed)
    }

    fn entry(&self, id: &str) -> Result<Arc<GraphEntry>, GraphError> {
        self.graphs
            .lock()
            .get(id)
            .cloned()
            .ok_or_else(|| GraphError::NotFound(id.to_string()))
    }

    /// Appends one command to the delta log; an append failure demotes
    /// the registry to memory-only (returns whether the record was
    /// persisted, for the caller's degrade hook).
    fn append(&self, cmd: &str) -> bool {
        let Some(log) = &self.log else {
            return true;
        };
        if !self.log_ok.load(Ordering::Relaxed) {
            return false;
        }
        let result = match self.fault.io_error("graphs.append.err") {
            Some(e) => Err(e),
            None => log.lock().append(cmd.as_bytes()),
        };
        match result {
            Ok(()) => true,
            Err(e) => {
                self.log_ok.store(false, Ordering::Relaxed);
                obs::error(
                    "dsa-service",
                    "graph log append failed; graph persistence disabled",
                    &[("error", &e)],
                );
                false
            }
        }
    }

    /// Creates a named graph, solving it eagerly (the baseline cover).
    /// Re-creating an existing graph with the byte-identical create
    /// command is idempotent; a different definition is a conflict.
    pub fn create(
        &self,
        spec: GraphSpec,
        solve: impl Fn(JobSpec) -> Result<JobResponse, JobError>,
    ) -> Result<(GraphCreated, bool), GraphError> {
        if !valid_graph_id(&spec.id) {
            return Err(GraphError::Invalid(format!(
                "graph id `{}` must be 1-{MAX_GRAPH_ID_LEN} characters from [a-zA-Z0-9._-]",
                spec.id
            )));
        }
        let spec = GraphSpec {
            config: normalized_config(spec.config),
            ..spec
        };
        let cmd = wire::encode_graph_create(&spec);
        let idempotent = |st: &GraphState| -> Result<(GraphCreated, bool), GraphError> {
            if st.create_cmd == cmd {
                Ok((
                    GraphCreated {
                        id: spec.id.clone(),
                        version: st.version,
                        edges: st.edges.len(),
                        spanner_size: st.cover.as_ref().map_or(0, EdgeSet::len),
                        existed: true,
                    },
                    false,
                ))
            } else {
                Err(GraphError::Conflict(format!(
                    "graph `{}` already exists with a different definition",
                    spec.id
                )))
            }
        };
        if let Some(entry) = self.graphs.lock().get(&spec.id).cloned() {
            return idempotent(&entry.state.lock());
        }
        // Solve before registering: a graph only exists once its
        // baseline spanner does, so a failed solve leaves no trace.
        let mut state = build_state(&spec);
        let resp = solve(state.job_spec()).map_err(GraphError::Job)?;
        state.install_cover(&resp);
        let spanner_size = resp.spanner.len();
        let edges = state.edges.len();
        let mut map = self.graphs.lock();
        if let Some(entry) = map.get(&spec.id).cloned() {
            // Lost a concurrent create race; fall back to the
            // idempotency check against the winner.
            return idempotent(&entry.state.lock());
        }
        let persisted = self.append(&cmd);
        map.insert(
            spec.id.clone(),
            Arc::new(GraphEntry {
                state: OrderedMutex::new("graph_state", 20, state),
            }),
        );
        Ok((
            GraphCreated {
                id: spec.id,
                version: 0,
                edges,
                spanner_size,
                existed: false,
            },
            !persisted,
        ))
    }

    /// Applies one patch: validate, log, apply, classify. Returns the
    /// patch result plus whether the log degraded on this call.
    pub fn patch(
        &self,
        id: &str,
        ops: &[DeltaOp],
        solve: impl Fn(JobSpec) -> Result<JobResponse, JobError>,
    ) -> Result<(GraphPatched, bool), GraphError> {
        let entry = self.entry(id)?;
        let mut st = entry.state.lock();
        st.validate_ops(ops)?;
        // Classification basis is decided *before* applying: a cover
        // already past the debt threshold (or absent after a restart)
        // recomputes this whole patch.
        let trusted_cover = st.cover.is_some() && st.debt <= REPAIR_DEBT_THRESHOLD;
        let cmd = wire::encode_graph_patch(id, ops);
        let persisted = self.append(&cmd);
        let (new_ids, had_delete) = st.apply_ops(ops)?;
        let mut classes = DeltaClasses::default();
        if had_delete {
            // Coverage is not monotone under deletion: the cover is
            // untrustworthy. The solve is deferred to the next read.
            st.cover = None;
            st.debt = 0;
            classes.recomputed = ops.len() as u64;
        } else if !trusted_cover {
            classes.recomputed = ops.len() as u64;
            st.classes.add(&classes);
            match solve(st.job_spec()) {
                Ok(resp) => st.install_cover(&resp),
                Err(e) => {
                    // The ops are applied and logged; only the solve
                    // failed. The next patch or read re-solves.
                    st.cover = None;
                    st.debt = 0;
                    return Err(GraphError::Job(e));
                }
            }
            return Ok((
                GraphPatched {
                    id: id.to_string(),
                    version: st.version,
                    applied: ops.len(),
                    classes,
                    edges: st.edges.len(),
                },
                !persisted,
            ));
        } else {
            // Insert-only with a trusted cover: widen the cover to the
            // grown edge universe (ids are stable under insertion),
            // classify, repair the uncovered stragglers locally.
            let m = st.edges.len();
            let old = st.cover.take().expect("trusted cover present"); // dsa-lint: allow(DSA-P001, reason="branch is only entered when a trusted cover is present")
            let mut cover = EdgeSet::from_iter(m, old.iter());
            let instance = st.instance();
            let (commuted, repaired, added) = classify_inserts(&instance, &mut cover, &new_ids);
            st.cover = Some(cover);
            st.debt += added;
            classes.commuted = commuted as u64;
            classes.repaired = repaired as u64;
        }
        st.classes.add(&classes);
        Ok((
            GraphPatched {
                id: id.to_string(),
                version: st.version,
                applied: ops.len(),
                classes,
                edges: st.edges.len(),
            },
            !persisted,
        ))
    }

    /// Metadata/stats for one graph.
    pub fn meta(&self, id: &str) -> Result<GraphMeta, GraphError> {
        let entry = self.entry(id)?;
        let st = entry.state.lock();
        Ok(st.meta(id))
    }

    /// The maintained spanner: solves the current live edge set
    /// through `solve` (the service pipeline, so unchanged graphs are
    /// answered from cache) and refreshes the working cover.
    pub fn spanner(
        &self,
        id: &str,
        solve: impl Fn(JobSpec) -> Result<JobResponse, JobError>,
    ) -> Result<GraphSpannerResult, GraphError> {
        let entry = self.entry(id)?;
        let mut st = entry.state.lock();
        let resp = solve(st.job_spec()).map_err(GraphError::Job)?;
        st.install_cover(&resp);
        let edges = resp
            .spanner
            .iter()
            .map(|&e| (st.edges[e].u, st.edges[e].v)) // dsa-lint: allow(DSA-P003, reason="spanner indices come from the solver over this instance, in range by construction")
            .collect();
        Ok(GraphSpannerResult {
            id: id.to_string(),
            version: st.version,
            key: resp.key,
            kind: resp.kind,
            converged: resp.converged,
            iterations: resp.iterations,
            local_rounds: resp.local_rounds,
            star_fallbacks: resp.star_fallbacks,
            edges,
        })
    }

    /// Retires a graph. Returns whether the log degraded on this call.
    pub fn delete(&self, id: &str) -> Result<bool, GraphError> {
        let mut map = self.graphs.lock();
        if map.remove(id).is_none() {
            return Err(GraphError::NotFound(id.to_string()));
        }
        let persisted = self.append(&wire::encode_graph_delete(id));
        Ok(!persisted)
    }
}

fn build_state(spec: &GraphSpec) -> GraphState {
    let (n, edges) = records_of(&spec.instance);
    let index = edges
        .iter()
        .enumerate()
        .map(|(i, r)| ((r.u, r.v), i))
        .collect();
    GraphState {
        kind: spec.instance.kind(),
        config: normalized_config(spec.config.clone()),
        n,
        create_cmd: wire::encode_graph_create(spec),
        edges,
        index,
        version: 0,
        cover: None,
        debt: 0,
        classes: DeltaClasses::default(),
    }
}

// ---------------------------------------------------------------------
// The delta log
// ---------------------------------------------------------------------

/// The append-only graph command log. Framing mirrors the result
/// store; payloads are wire command text, so the log format is the
/// wire format.
struct GraphLog {
    /// `None` until the first append: a service that never touches
    /// named graphs leaves no `graphs.log` in its cache directory
    /// (and the result store's own recovery walk sees only its file).
    file: Option<File>,
    /// End of the last well-formed record; appends land here.
    end: u64,
    /// Corrupt records dropped while opening.
    dropped: u64,
    path: PathBuf,
}

impl GraphLog {
    /// Opens `dir/graphs.log` when present, returning the log plus
    /// every recoverable record payload in append order. Corrupt
    /// records are skipped; a ragged tail (crash mid-append) is
    /// truncated. Never fails on corruption — only on real IO errors.
    /// A missing log is an empty log; the file is created lazily on
    /// the first append.
    fn open(dir: &Path) -> std::io::Result<(GraphLog, Vec<Vec<u8>>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(GRAPH_LOG_FILE);
        if !path.exists() {
            return Ok((
                GraphLog {
                    file: None,
                    end: GRAPH_LOG_MAGIC.len() as u64,
                    dropped: 0,
                    path,
                },
                Vec::new(),
            ));
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .truncate(false)
            .open(&path)?;
        let mut log = GraphLog {
            file: Some(file),
            end: GRAPH_LOG_MAGIC.len() as u64,
            dropped: 0,
            path,
        };
        let file_len = log.file()?.metadata()?.len();
        if file_len == 0 {
            log.file()?.write_all(GRAPH_LOG_MAGIC)?;
            log.file()?.flush()?;
            return Ok((log, Vec::new()));
        }
        let mut reader = std::io::BufReader::new(log.file()?.try_clone()?);
        let mut magic = [0u8; 8];
        let magic_ok = file_len >= GRAPH_LOG_MAGIC.len() as u64 && {
            reader.read_exact(&mut magic)?;
            &magic == GRAPH_LOG_MAGIC
        };
        if !magic_ok {
            // Foreign or garbage header: start fresh.
            drop(reader);
            log.dropped += 1;
            log.file()?.set_len(0)?;
            log.file()?.seek(SeekFrom::Start(0))?;
            log.file()?.write_all(GRAPH_LOG_MAGIC)?;
            log.file()?.flush()?;
            return Ok((log, Vec::new()));
        }
        let mut payloads = Vec::new();
        let mut pos = GRAPH_LOG_MAGIC.len() as u64;
        loop {
            let remaining = file_len - pos;
            if remaining == 0 {
                break;
            }
            if remaining < 4 {
                log.dropped += 1; // trailing fragment of a length prefix
                break;
            }
            let mut len_bytes = [0u8; 4];
            reader.read_exact(&mut len_bytes)?;
            let payload_len = u32::from_be_bytes(len_bytes) as usize;
            if payload_len > MAX_GRAPH_RECORD || remaining < 4 + payload_len as u64 + 8 {
                // Garbage length prefix or truncated tail: no further
                // trustworthy boundary exists.
                log.dropped += 1;
                break;
            }
            let mut payload = vec![0u8; payload_len];
            reader.read_exact(&mut payload)?;
            let mut sum_bytes = [0u8; 8];
            reader.read_exact(&mut sum_bytes)?;
            let stored_sum = u64::from_be_bytes(sum_bytes);
            pos += 4 + payload_len as u64 + 8;
            if graph_checksum(&payload) != stored_sum {
                // Framing held, bytes are bad: skip just this record.
                log.dropped += 1;
                log.end = pos;
                continue;
            }
            payloads.push(payload);
            log.end = pos;
        }
        drop(reader);
        if log.end < file_len {
            let end = log.end;
            log.file()?.set_len(end)?;
        }
        Ok((log, payloads))
    }

    /// The backing file, created (with its magic header) on first use.
    fn file(&mut self) -> std::io::Result<&mut File> {
        if self.file.is_none() {
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&self.path)?;
            if file.metadata()?.len() == 0 {
                file.write_all(GRAPH_LOG_MAGIC)?;
                file.flush()?;
            }
            self.file = Some(file);
        }
        match self.file.as_mut() {
            Some(file) => Ok(file),
            // Unreachable (`file` was just ensured above); an IO error
            // keeps the degrade-to-memory-only path panic-free.
            None => Err(std::io::Error::other("graph log file missing after ensure")),
        }
    }

    /// Appends one record. On failure the log is truncated back to its
    /// previous end (best effort) so the tail stays well-formed, and
    /// the error is returned for the caller's degrade path.
    fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        if payload.len() > MAX_GRAPH_RECORD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "graph record of {} bytes exceeds limit {MAX_GRAPH_RECORD}",
                    payload.len()
                ),
            ));
        }
        let end = self.end;
        let result = (|| {
            let file = self.file()?;
            file.seek(SeekFrom::Start(end))?;
            let mut framed = Vec::with_capacity(12 + payload.len());
            framed.extend_from_slice(&(payload.len() as u32).to_be_bytes()); // dsa-lint: allow(DSA-C001, reason="payload.len() checked against MAX_GRAPH_RECORD above, far below u32::MAX")
            framed.extend_from_slice(payload);
            framed.extend_from_slice(&graph_checksum(payload).to_be_bytes());
            file.write_all(&framed)?;
            file.flush()
        })();
        match result {
            Ok(()) => {
                self.end += 4 + payload.len() as u64 + 8;
                Ok(())
            }
            Err(e) => {
                if let Some(file) = &self.file {
                    let _ = file.set_len(self.end);
                }
                obs::warn(
                    "dsa-service",
                    "graph log append failed",
                    &[("path", &self.path.display()), ("error", &e)],
                );
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::dist::run_variant;

    /// A direct-engine solver: what the service pipeline reduces to
    /// with the cache cold (same engine, same config normalization).
    fn direct_solve(spec: JobSpec) -> Result<JobResponse, JobError> {
        let run = run_variant(&spec.instance, &spec.config);
        Ok(JobResponse {
            key: 0,
            kind: spec.instance.kind(),
            spanner: run.spanner.iter().collect(),
            iterations: run.iterations,
            local_rounds: run.local_rounds(),
            converged: run.converged,
            star_fallbacks: run.star_fallbacks,
        })
    }

    fn registry() -> GraphRegistry {
        GraphRegistry::open(None, Arc::new(FaultInjector::disabled()))
            .expect("memory registry")
            .0
    }

    fn undirected_spec(id: &str, n: usize, edges: &[(usize, usize)]) -> GraphSpec {
        GraphSpec {
            id: id.to_string(),
            instance: VariantInstance::Undirected {
                graph: Graph::from_edges(n, edges.iter().copied()),
            },
            config: EngineConfig::seeded(7),
        }
    }

    #[test]
    fn graph_ids_are_validated() {
        assert!(valid_graph_id("a"));
        assert!(valid_graph_id("prod.web-42_x"));
        assert!(!valid_graph_id(""));
        assert!(!valid_graph_id("a/b"));
        assert!(!valid_graph_id("a b"));
        assert!(!valid_graph_id(&"x".repeat(MAX_GRAPH_ID_LEN + 1)));
        let r = registry();
        let err = r
            .create(undirected_spec("no/slash", 3, &[(0, 1)]), direct_solve)
            .unwrap_err();
        assert!(matches!(err, GraphError::Invalid(_)), "{err}");
    }

    #[test]
    fn create_is_idempotent_and_conflicts_on_redefinition() {
        let r = registry();
        let spec = undirected_spec("g", 4, &[(0, 1), (1, 2), (0, 2)]);
        let (created, _) = r.create(spec.clone(), direct_solve).unwrap();
        assert!(!created.existed);
        assert_eq!(created.version, 0);
        assert_eq!(created.edges, 3);
        let (again, _) = r.create(spec, direct_solve).unwrap();
        assert!(again.existed);
        let err = r
            .create(undirected_spec("g", 4, &[(0, 1)]), direct_solve)
            .unwrap_err();
        assert!(matches!(err, GraphError::Conflict(_)), "{err}");
        assert_eq!(r.live(), 1);
        r.delete("g").unwrap();
        assert_eq!(r.live(), 0);
        assert!(matches!(r.meta("g"), Err(GraphError::NotFound(_))));
    }

    #[test]
    fn patches_validate_transactionally() {
        let r = registry();
        r.create(undirected_spec("g", 4, &[(0, 1), (1, 2)]), direct_solve)
            .unwrap();
        // Second op is invalid (duplicate insert): nothing applies.
        let err = r
            .patch(
                "g",
                &[
                    DeltaOp::Insert {
                        u: 2,
                        v: 3,
                        weight: None,
                        role: None,
                    },
                    DeltaOp::Insert {
                        u: 1,
                        v: 0,
                        weight: None,
                        role: None,
                    },
                ],
                direct_solve,
            )
            .unwrap_err();
        assert!(matches!(err, GraphError::Invalid(_)), "{err}");
        assert_eq!(r.meta("g").unwrap().version, 0);
        assert_eq!(r.meta("g").unwrap().edges, 2);
        for (ops, why) in [
            (vec![DeltaOp::Delete { u: 0, v: 3 }], "missing delete"),
            (
                vec![DeltaOp::Insert {
                    u: 0,
                    v: 0,
                    weight: None,
                    role: None,
                }],
                "self-loop",
            ),
            (
                vec![DeltaOp::Insert {
                    u: 0,
                    v: 9,
                    weight: None,
                    role: None,
                }],
                "out of range",
            ),
            (
                vec![DeltaOp::Insert {
                    u: 0,
                    v: 3,
                    weight: Some(2),
                    role: None,
                }],
                "weight on unweighted",
            ),
            (
                vec![DeltaOp::Insert {
                    u: 0,
                    v: 3,
                    weight: None,
                    role: Some(EdgeRole::Both),
                }],
                "role on non-client-server",
            ),
            (vec![], "empty patch"),
        ] {
            assert!(
                matches!(
                    r.patch("g", &ops, direct_solve),
                    Err(GraphError::Invalid(_))
                ),
                "accepted: {why}"
            );
        }
        // Insert-then-delete of the same edge inside one patch is
        // legal and nets out.
        let (patched, _) = r
            .patch(
                "g",
                &[
                    DeltaOp::Insert {
                        u: 2,
                        v: 3,
                        weight: None,
                        role: None,
                    },
                    DeltaOp::Delete { u: 3, v: 2 },
                ],
                direct_solve,
            )
            .unwrap();
        assert_eq!(patched.version, 2);
        assert_eq!(patched.edges, 2);
    }

    #[test]
    fn covered_inserts_commute_and_uncovered_repair() {
        let r = registry();
        // A star around 0: every spoke is a bridge, so the baseline
        // spanner is the whole star and any spoke-to-spoke chord has a
        // 2-path through 0.
        let spokes: Vec<(usize, usize)> = (1..8).map(|v| (0, v)).collect();
        r.create(undirected_spec("star", 10, &spokes), direct_solve)
            .unwrap();
        let insert = |u, v| DeltaOp::Insert {
            u,
            v,
            weight: None,
            role: None,
        };
        let (p, _) = r
            .patch("star", &[insert(1, 2), insert(3, 4)], direct_solve)
            .unwrap();
        assert_eq!(p.classes.commuted, 2, "chords commute: {:?}", p.classes);
        assert_eq!(p.classes.repaired, 0);
        assert_eq!(p.classes.recomputed, 0);
        // Vertices 8 and 9 are isolated: (8, 9) has no 2-path and must
        // be repaired (the repair adds the edge itself to the cover).
        let (p, _) = r.patch("star", &[insert(8, 9)], direct_solve).unwrap();
        assert_eq!(p.classes.repaired, 1, "{:?}", p.classes);
        let meta = r.meta("star").unwrap();
        assert_eq!(meta.debt, 1);
        assert_eq!(meta.classes.commuted, 2);
        // A chord next to the repaired edge now commutes through it...
        // no 2-path exists, so instead verify a delete invalidates.
        let (p, _) = r
            .patch("star", &[DeltaOp::Delete { u: 8, v: 9 }], direct_solve)
            .unwrap();
        assert_eq!(p.classes.recomputed, 1);
        let meta = r.meta("star").unwrap();
        assert_eq!(meta.cover_size, None, "delete invalidates the cover");
        // The cover is absent, so the next insert patch recomputes.
        let (p, _) = r.patch("star", &[insert(5, 6)], direct_solve).unwrap();
        assert_eq!(p.classes.recomputed, 1);
        assert!(r.meta("star").unwrap().cover_size.is_some());
    }

    #[test]
    fn spanner_matches_from_scratch_solve() {
        let r = registry();
        r.create(
            undirected_spec("g", 6, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
            direct_solve,
        )
        .unwrap();
        let insert = |u, v| DeltaOp::Insert {
            u,
            v,
            weight: None,
            role: None,
        };
        r.patch("g", &[insert(0, 2), insert(4, 5)], direct_solve)
            .unwrap();
        r.patch("g", &[DeltaOp::Delete { u: 1, v: 2 }], direct_solve)
            .unwrap();
        let got = r.spanner("g", direct_solve).unwrap();
        // From scratch: the same final edge set, same config.
        let final_edges = [(0, 1), (2, 3), (3, 4), (0, 2), (4, 5)];
        let spec = undirected_spec("scratch", 6, &final_edges);
        let resp = direct_solve(JobSpec {
            instance: spec.instance.clone(),
            config: normalized_config(spec.config),
            timeout: None,
        })
        .unwrap();
        let want: Vec<(usize, usize)> = resp
            .spanner
            .iter()
            .map(|&e| {
                let (u, v) = final_edges[e];
                (u.min(v), u.max(v))
            })
            .collect();
        assert_eq!(got.edges, want);
        assert_eq!(got.version, 3);
        // Serving refreshed the cover.
        let meta = r.meta("g").unwrap();
        assert_eq!(meta.cover_size, Some(got.edges.len()));
        assert_eq!(meta.debt, 0);
    }

    #[test]
    fn log_replays_and_recovers_from_truncation() {
        let dir =
            std::env::temp_dir().join(format!("dsa-graphlog-unit-{}-replay", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fault = Arc::new(FaultInjector::disabled());
        {
            let (r, report) = GraphRegistry::open(Some(&dir), Arc::clone(&fault)).unwrap();
            assert_eq!(report.graphs, 0);
            r.create(undirected_spec("g", 5, &[(0, 1), (1, 2)]), direct_solve)
                .unwrap();
            r.patch(
                "g",
                &[DeltaOp::Insert {
                    u: 2,
                    v: 3,
                    weight: None,
                    role: None,
                }],
                direct_solve,
            )
            .unwrap();
            r.create(undirected_spec("gone", 3, &[(0, 1)]), direct_solve)
                .unwrap();
            r.delete("gone").unwrap();
        }
        // Clean replay: one live graph at version 1, cover absent
        // (replay never solves).
        {
            let (r, report) = GraphRegistry::open(Some(&dir), Arc::clone(&fault)).unwrap();
            assert_eq!(report.graphs, 1);
            assert_eq!(report.records, 4);
            assert_eq!(report.dropped, 0);
            let meta = r.meta("g").unwrap();
            assert_eq!(meta.version, 1);
            assert_eq!(meta.edges, 3);
            assert_eq!(meta.cover_size, None);
            // Append another patch, then simulate a crash mid-append.
            r.patch(
                "g",
                &[DeltaOp::Insert {
                    u: 3,
                    v: 4,
                    weight: None,
                    role: None,
                }],
                direct_solve,
            )
            .unwrap();
        }
        // Crash mid-append: a ragged half-record at the tail.
        {
            use std::fs::OpenOptions;
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(GRAPH_LOG_FILE))
                .unwrap();
            f.write_all(&(400u32).to_be_bytes()).unwrap();
            f.write_all(b"partial record torn by a crash").unwrap();
        }
        {
            let (r, report) = GraphRegistry::open(Some(&dir), Arc::clone(&fault)).unwrap();
            assert_eq!(report.dropped, 1, "the torn tail is dropped");
            let meta = r.meta("g").unwrap();
            assert_eq!(meta.version, 2, "recovered to the last applied delta");
            assert_eq!(meta.edges, 4);
        }
        // And the truncation left a clean tail: appends work again.
        {
            let (r, _) = GraphRegistry::open(Some(&dir), Arc::clone(&fault)).unwrap();
            r.patch("g", &[DeltaOp::Delete { u: 0, v: 1 }], direct_solve)
                .unwrap();
        }
        let (r, report) = GraphRegistry::open(Some(&dir), fault).unwrap();
        assert_eq!(report.dropped, 0);
        assert_eq!(r.meta("g").unwrap().version, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_failure_degrades_to_memory_only() {
        let dir =
            std::env::temp_dir().join(format!("dsa-graphlog-unit-{}-degrade", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (r, _) =
                GraphRegistry::open(Some(&dir), Arc::new(FaultInjector::disabled())).unwrap();
            r.create(undirected_spec("g", 4, &[(0, 1), (1, 2)]), direct_solve)
                .unwrap();
            assert!(r.log_healthy());
        }
        // Reopen with every graph append failing: replay is pure reads
        // and still works, but the first patch append degrades the
        // registry to memory-only. The patch itself still applies.
        let plan = dsa_runtime::FaultPlan::parse("seed=1;graphs.append.err=1.0").unwrap();
        let (r, report) =
            GraphRegistry::open(Some(&dir), Arc::new(FaultInjector::new(plan))).unwrap();
        assert_eq!(report.graphs, 1);
        let (patched, degraded) = r
            .patch(
                "g",
                &[DeltaOp::Insert {
                    u: 2,
                    v: 3,
                    weight: None,
                    role: None,
                }],
                direct_solve,
            )
            .unwrap();
        assert!(degraded);
        assert_eq!(patched.version, 1);
        assert!(!r.log_healthy());
        // Restart sees only the create: the patch was never persisted.
        drop(r);
        let (r, _) = GraphRegistry::open(Some(&dir), Arc::new(FaultInjector::disabled())).unwrap();
        assert_eq!(r.meta("g").unwrap().version, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
