//! The TCP frontend: one accept loop, one thread per connection, each
//! connection multiplexing any number of request frames against the
//! shared [`Service`].

use std::io::ErrorKind;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::service::{Service, ServiceConfig};
use crate::wire::{
    decode_request, encode_error_response, encode_pong_response, encode_run_response,
    encode_stats_response, read_frame, write_frame, Request,
};

/// A running `spanner-serve` frontend. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop, joins the connection
/// threads, and tears down the service workers.
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `cfg` in background threads.
    pub fn start<A: ToSocketAddrs>(addr: A, cfg: &ServiceConfig) -> std::io::Result<Server> {
        Server::with_service(addr, Arc::new(Service::new(cfg)))
    }

    /// Like [`Server::start`], over an existing service (so in-process
    /// callers and remote clients can share one cache).
    pub fn with_service<A: ToSocketAddrs>(
        addr: A,
        service: Arc<Service>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("spanner-serve-accept".into())
                .spawn(move || accept_loop(&listener, &service, &stop))?
        };
        Ok(Server {
            addr,
            service,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service behind this frontend.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops accepting, waits for live connections to finish their
    /// current frame, and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    // Joined on exit so shutdown leaves no detached threads behind;
    // finished handles are reaped as new connections arrive so the
    // list tracks live connections, not lifetime connection count.
    let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let spawned = std::thread::Builder::new()
                    .name("spanner-serve-conn".into())
                    .spawn(move || serve_connection(stream, &service, &stop));
                conn_threads.retain(|t| !t.is_finished());
                match spawned {
                    Ok(handle) => conn_threads.push(handle),
                    // Thread exhaustion is the same overload as an
                    // accept error: shed this connection (the stream
                    // was moved into the failed spawn and is already
                    // closed), back off, keep listening.
                    Err(_) => std::thread::sleep(Duration::from_millis(50)),
                }
            }
            Err(_) => {
                // Accept errors (aborted handshakes, EINTR, fd
                // exhaustion under load) are transient for a daemon:
                // back off briefly and keep listening. Shutdown is
                // signalled through `stop`, never through an error.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// Polling interval for the shutdown flag while a connection is idle.
const IDLE_POLL: Duration = Duration::from_millis(200);

fn serve_connection(stream: TcpStream, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    // A read timeout turns a blocked idle read into a periodic
    // shutdown-flag check. `read_with_shutdown` below retries cleanly,
    // so in-flight frames are never corrupted by the poll.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = ShutdownReader {
        stream: &stream,
        stop,
    };
    let mut writer = &stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break, // client closed, or shutdown while idle
            Err(_) => break,
        };
        let response = handle_request(&payload, service);
        if write_frame(&mut writer, response.as_bytes()).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Wraps the stream so timeout errors while *between* frames read as
/// clean EOF once shutdown is requested, and are retried otherwise.
struct ShutdownReader<'a> {
    stream: &'a TcpStream,
    stop: &'a AtomicBool,
}

impl std::io::Read for ShutdownReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match std::io::Read::read(&mut self.stream, buf) {
                Err(e)
                    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                        && !self.stop.load(Ordering::SeqCst) =>
                {
                    continue
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    // Shutdown requested: report EOF. read_frame maps
                    // EOF at a frame boundary to a clean close.
                    return Ok(0);
                }
                other => return other,
            }
        }
    }
}

fn handle_request(payload: &[u8], service: &Arc<Service>) -> String {
    match decode_request(payload) {
        Ok(Request::Ping) => encode_pong_response(),
        Ok(Request::Stats) => encode_stats_response(&service.metrics().to_json()),
        Ok(Request::Run(spec)) => match service.run(&spec) {
            Ok(resp) => encode_run_response(&resp),
            Err(e) => encode_error_response(&e.to_string()),
        },
        Err(e) => encode_error_response(&e.to_string()),
    }
}
