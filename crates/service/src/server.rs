//! The TCP frontend: one accept loop, one thread per connection, each
//! connection multiplexing any number of request frames against the
//! shared [`Service`]. The listener scaffolding (accept loop, thread
//! reaping, shutdown flag) lives in [`crate::net`] and is shared with
//! the HTTP facade ([`crate::http`]).

use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use crate::graphs::GraphError;
use crate::job::JobError;
use crate::net::{ListenerHandle, ShutdownReader, IDLE_POLL};
use crate::service::{Service, ServiceConfig};
use crate::wire::{
    decode_request, encode_busy_response, encode_error_response, encode_graph_created,
    encode_graph_deleted, encode_graph_meta, encode_graph_patched, encode_graph_spanner_response,
    encode_hello_response, encode_pong_response, encode_run_response, encode_stats_response,
    read_frame, write_frame, Request, PROTO_VERSION,
};

/// A running `spanner-serve` wire frontend. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop, joins the connection
/// threads, and tears down the service workers.
pub struct Server {
    listener: ListenerHandle,
    service: Arc<Service>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving `cfg` in background threads.
    pub fn start<A: ToSocketAddrs>(addr: A, cfg: &ServiceConfig) -> std::io::Result<Server> {
        Server::with_service(addr, Arc::new(Service::new(cfg)))
    }

    /// Like [`Server::start`], over an existing service (so in-process
    /// callers, HTTP clients, and wire clients can share one cache).
    pub fn with_service<A: ToSocketAddrs>(
        addr: A,
        service: Arc<Service>,
    ) -> std::io::Result<Server> {
        let listener = {
            let service = Arc::clone(&service);
            ListenerHandle::start(
                addr,
                "spanner-serve-accept",
                "spanner-serve-conn",
                move |stream, stop| serve_connection(stream, &service, stop),
            )?
        };
        Ok(Server { listener, service })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.listener.addr()
    }

    /// The shared service behind this frontend.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops accepting, waits for live connections to finish their
    /// current frame, and joins the accept loop.
    pub fn shutdown(mut self) {
        self.listener.shutdown();
    }
}

fn serve_connection(stream: TcpStream, service: &Arc<Service>, stop: &AtomicBool) {
    // A read timeout turns a blocked idle read into a periodic
    // shutdown-flag check. `ShutdownReader` retries cleanly, so
    // in-flight frames are never corrupted by the poll — and arms a
    // per-frame deadline once bytes start flowing (slow-loris
    // defense).
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = ShutdownReader::new(&stream, stop, service.read_budget());
    let mut writer = &stream;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => break, // client closed, or shutdown while idle
            Err(_) => {
                if reader.timed_out() {
                    service.on_connection_timed_out();
                }
                break;
            }
        };
        reader.finish_message();
        let response = handle_request(&payload, service);
        // Chaos hook: a dropped connection mid-response frame. The
        // client sees an unexpected EOF and (with retries enabled)
        // reconnects and resubmits — idempotent by the byte-identity
        // contract.
        if service.fault().fire("conn.drop") {
            use std::io::Write;
            let bytes = response.as_bytes();
            let _ = writer.write_all(&(bytes.len() as u32).to_be_bytes());
            let _ = writer.write_all(&bytes[..bytes.len() / 2]);
            let _ = writer.flush();
            break;
        }
        if write_frame(&mut writer, response.as_bytes()).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn handle_request(payload: &[u8], service: &Arc<Service>) -> String {
    // Shared shed path: an overloaded solve answers `busy` with a
    // retry hint whether it arrived as a one-shot job or a graph op.
    let graph_result = |result: Result<String, GraphError>| match result {
        Ok(response) => response,
        Err(GraphError::Job(JobError::Busy { retry_after_ms })) => {
            encode_busy_response(retry_after_ms)
        }
        Err(e) => encode_error_response(&e.to_string()),
    };
    match decode_request(payload) {
        Ok(Request::Ping) => encode_pong_response(),
        Ok(Request::Stats) => encode_stats_response(&service.metrics().to_json()),
        Ok(Request::Hello { proto }) => {
            // Serve the newest version both sides speak. A v1 peer
            // gets `proto 1` and no feature tokens — exactly the
            // pre-handshake protocol it already knows.
            let proto = proto.min(PROTO_VERSION);
            if proto >= 2 {
                encode_hello_response(proto, &["graphs"])
            } else {
                encode_hello_response(proto, &[])
            }
        }
        Ok(Request::Run(spec)) => match service.run(&spec) {
            Ok(resp) => encode_run_response(&resp),
            Err(JobError::Busy { retry_after_ms }) => encode_busy_response(retry_after_ms),
            Err(e) => encode_error_response(&e.to_string()),
        },
        Ok(Request::GraphCreate(spec)) => graph_result(
            service
                .graph_create(*spec)
                .map(|r| encode_graph_created(&r)),
        ),
        Ok(Request::GraphPatch { id, ops }) => graph_result(
            service
                .graph_patch(&id, &ops)
                .map(|r| encode_graph_patched(&r)),
        ),
        Ok(Request::GraphGet { id }) => {
            graph_result(service.graph_meta(&id).map(|r| encode_graph_meta(&r)))
        }
        Ok(Request::GraphSpanner { id }) => graph_result(
            service
                .graph_spanner(&id)
                .map(|r| encode_graph_spanner_response(&r)),
        ),
        Ok(Request::GraphDelete { id }) => graph_result(
            service
                .graph_delete(&id)
                .map(|()| encode_graph_deleted(&id)),
        ),
        Err(e) => encode_error_response(&e.to_string()),
    }
}
