//! Client-side retry policy: capped, jittered exponential backoff.
//!
//! Both clients ([`crate::client::Client`] over the wire protocol and
//! [`crate::http::HttpClient`]) retry *transient* failures — a shed
//! job (`busy` frame / HTTP 429), a cancelled run (HTTP 503), a dropped
//! connection — under one policy. Retrying is safe because a job
//! response is a pure function of its spec (the byte-identity
//! contract): a resubmission can only return the same bytes.
//!
//! The backoff schedule is `min(cap, base * 2^attempt)`, scaled by a
//! jitter factor in `[0.5, 1.0)` derived deterministically from the
//! policy seed and the attempt number — so a fleet of clients with
//! distinct seeds de-synchronizes (no thundering herd), while a test
//! replaying one seed sees one schedule. When the server supplied a
//! `Retry-After` hint, the sleep is at least that long: the hint
//! already accounts for queue depth and observed service time.

use std::time::Duration;

/// A capped, jittered exponential backoff schedule for client retries.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once, never retry).
    pub max_retries: u32,
    /// Backoff before the first retry (pre-jitter).
    pub base: Duration,
    /// Upper bound on any single backoff sleep (pre-hint).
    pub cap: Duration,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl RetryPolicy {
    /// A policy with `max_retries` retries and the default schedule:
    /// 50 ms base doubling up to a 5 s cap, seed 0.
    pub fn new(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
            seed: 0,
        }
    }

    /// The sleep before retry number `attempt` (0-based), given the
    /// server's `Retry-After` hint (milliseconds) when one was sent.
    pub fn backoff(&self, attempt: u32, server_hint_ms: Option<u64>) -> Duration {
        // min(cap, base << attempt), saturating: attempt 60+ must not
        // overflow, it just pins to the cap.
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .min(self.cap);
        // Jitter in [0.5, 1.0): half the schedule is always honored,
        // the rest is spread so concurrent clients de-synchronize.
        let h = splitmix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let jitter = 0.5 + (h >> 11) as f64 / (1u64 << 53) as f64 / 2.0;
        let jittered = exp.mul_f64(jitter);
        match server_hint_ms {
            Some(ms) => jittered.max(Duration::from_millis(ms)),
            None => jittered,
        }
    }
}

/// SplitMix64 finalizer — the same mixer the fault injector uses for
/// its per-site decision stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_stays_deterministic() {
        let p = RetryPolicy::new(8);
        // Deterministic: same (seed, attempt) -> same sleep.
        assert_eq!(p.backoff(3, None), p.backoff(3, None));
        // Jitter keeps every sleep within [half, full] of the schedule.
        for attempt in 0..10 {
            let exp = p
                .base
                .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
                .min(p.cap);
            let b = p.backoff(attempt, None);
            assert!(b >= exp / 2 && b <= exp, "attempt {attempt}: {b:?}");
        }
        // Deep attempts pin to the cap instead of overflowing.
        assert!(p.backoff(200, None) <= p.cap);
        // Distinct seeds de-synchronize.
        let q = RetryPolicy {
            seed: 1,
            ..p.clone()
        };
        assert_ne!(p.backoff(2, None), q.backoff(2, None));
    }

    #[test]
    fn server_hint_is_a_floor() {
        let p = RetryPolicy::new(3);
        assert!(p.backoff(0, Some(2_000)) >= Duration::from_secs(2));
        // A tiny hint never shrinks the schedule.
        assert!(p.backoff(0, Some(1)) >= p.base / 2);
    }
}
