//! The in-process serving core: canonicalize → cache → coalesce →
//! schedule on the worker pool.
//!
//! Life of a submission:
//!
//! 1. the [`JobSpec`] is validated and rewritten into canonical edge
//!    order, yielding the 64-bit job key ([`crate::job`]);
//! 2. under the cache lock, a key already computed is answered
//!    immediately (**cache hit** — no engine work, no queueing);
//! 3. still under the cache lock, a configured persistent store
//!    ([`ServiceConfig::cache_dir`]) is consulted: a record whose
//!    verification bytes equal the canonical job's is a **disk hit** —
//!    also a cache hit, additionally counted in
//!    [`MetricsSnapshot::disk_hits`] — and is promoted into the LRU;
//! 4. under the in-flight lock, a key currently executing is joined
//!    (**coalesced** — N concurrent identical submissions run the
//!    engine once and all receive the same run);
//! 5. otherwise admission control charges the run against the worker
//!    queue's depth and byte budgets: an exhausted budget **sheds**
//!    the job — [`JobError::Busy`] with a retry hint derived from the
//!    observed p95 latency, never a silently growing backlog — while
//!    an admitted run registers a fresh in-flight entry and enqueues
//!    on the bounded worker pool (**cache miss**). A completed (never
//!    aborted) run is appended to the store before its waiters are
//!    released; a *failed* append demotes the store to memory-only
//!    caching (`store_degraded` gauge) instead of failing the job.
//!
//! Persistence inherits the wire protocol's byte-identity contract: a
//! disk hit reconstructs the same canonical [`SpannerRun`] the cold
//! computation produced, so responses are byte-identical across
//! restarts; and since disk records are verified against the full
//! canonical instance (never trusted on the 64-bit hash alone), the
//! FNV-collision guard survives restarts too. On startup the store's
//! most recent records are replayed into the in-memory LRU (**warm
//! start**), with corrupt log tails dropped and counted rather than
//! failing the open.
//!
//! Determinism: the engine is deterministic per seed and every run
//! executes on the *canonical* instance, so the spanner a spec maps to
//! is a pure function of the spec — independent of worker count,
//! scheduling order, and whether the answer came from a cold run, the
//! cache, or coalescing.
//!
//! Cancellation and timeouts are waiter-side: a handle that cancels or
//! times out stops waiting immediately, and an engine run whose every
//! waiter left (cancelled *or* timed out) before a worker picked it up
//! is skipped entirely. Once a run has *started*, only explicit
//! cancellation interrupts it: when the last waiter cancels, the
//! in-engine cooperative flag
//! ([`dsa_core::dist::EngineConfig::cancel`]) is raised and the run
//! aborts between iterations — its partial result is discarded, never
//! cached. A started run whose last waiter merely *timed out* still
//! completes and populates the cache for future submissions (a
//! deadline is not a cancellation).
//!
//! Sharded execution: [`ServiceConfig::engine_shards`] lets the
//! operator override [`dsa_core::dist::EngineConfig::num_shards`] for
//! every executed run. This is legal precisely because the engine's
//! result is bit-identical for every shard count — execution policy
//! never leaks into cached bytes.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::time::{Duration, Instant};

use dsa_core::dist::{run_variant_timed, EngineConfig, SpannerRun, VariantInstance, VariantKind};
use dsa_graphs::EdgeId;
use dsa_runtime::obs;
use dsa_runtime::sync::OrderedMutex;
use dsa_runtime::{FaultInjector, FlightRecorder};

use crate::cache::LruCache;
use crate::graphs::{
    DeltaOp, GraphCreated, GraphError, GraphMeta, GraphPatched, GraphRegistry, GraphSpannerResult,
    GraphSpec,
};
use crate::job::{canonicalize_job, JobError, JobResponse, JobSpec};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::pool::Pool;
use crate::store::{verification_bytes, Store};

/// Tunables of a [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads executing engine runs.
    pub workers: usize,
    /// Bound on queued (not yet started) runs; a fresh submission that
    /// would exceed it is *shed* — rejected with
    /// [`JobError::Busy`] and a retry hint — never silently backlogged.
    pub queue_capacity: usize,
    /// Bound on the summed size estimates (bytes) of queued runs; a
    /// fresh submission that would exceed it is shed like a depth
    /// overflow. An empty queue always admits, so one oversized job
    /// is still servable.
    pub queue_byte_budget: usize,
    /// LRU result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Deadline applied by [`JobHandle::wait`] when the spec carries
    /// none; `None` waits indefinitely.
    pub default_timeout: Option<Duration>,
    /// When `Some(k)`, every executed run uses `k` engine shards
    /// (`0` = one per core), overriding whatever the spec requested —
    /// the operator's resource knob. `None` respects the per-job
    /// request. Either way the response bytes are unchanged: shard
    /// count cannot affect engine results.
    pub engine_shards: Option<usize>,
    /// Directory of the persistent result store ([`crate::store`]).
    /// `None` (the default) keeps results in memory only; `Some(dir)`
    /// appends every completed run to `dir/results.log`, consults the
    /// log on LRU misses, and replays its most recent records into
    /// the LRU at startup, so a restarted service answers prior
    /// instances byte-identically without re-running the engine.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic fault injector for chaos testing
    /// ([`dsa_runtime::fault`]). `None` (the default) never faults.
    /// Injection can delay or abort engine runs, fail store I/O, and
    /// drop connections — it can never change response bytes.
    pub fault: Option<Arc<FaultInjector>>,
    /// Per-connection read deadline applied by the TCP and HTTP
    /// frontends: once the first byte of a request (or frame) has
    /// arrived, the rest must arrive within this budget or the
    /// connection is closed and counted
    /// ([`MetricsSnapshot::connections_timed_out`]) — the slow-loris
    /// defense. Idle keep-alive connections are unaffected.
    pub read_budget: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            queue_byte_budget: 64 << 20,
            cache_capacity: 256,
            default_timeout: None,
            engine_shards: None,
            cache_dir: None,
            fault: None,
            read_budget: Duration::from_secs(30),
        }
    }
}

/// The result-relevant engine-config fields: (seed, accept
/// denominator, monotone stars, round densities, max iterations).
/// `num_shards` and `cancel` are deliberately absent — they control
/// *how* a run executes, never what it computes, so jobs differing
/// only in them share cache entries and coalesce.
type ConfigSig = (u64, u64, bool, bool, u64);

fn config_sig(cfg: &EngineConfig) -> ConfigSig {
    (
        cfg.seed,
        cfg.accept_denominator,
        cfg.monotone_stars,
        cfg.round_densities,
        cfg.max_iterations,
    )
}

/// Rough in-memory footprint of a queued run, charged against the
/// admission byte budget ([`ServiceConfig::queue_byte_budget`]): the
/// canonical instance (CSR adjacency + per-edge payload) dominates a
/// queued closure's retained memory.
fn job_cost(instance: &VariantInstance) -> usize {
    256 + instance.num_vertices() * 8 + instance.num_edges() * 24
}

/// One in-flight engine run, shared by every coalesced waiter.
///
/// The canonical instance and config signature live here both so the
/// worker can execute the run and so joins can *verify* identity: the
/// 64-bit key is a hash, and an (adversarially constructible) FNV
/// collision must degrade to a duplicate computation, never to
/// another job's result.
struct Inflight {
    instance: VariantInstance,
    config_sig: ConfigSig,
    state: OrderedMutex<InflightState>,
    done: Condvar,
    /// Handles still interested in the result; when it reaches zero
    /// before a worker starts the run, the run is skipped.
    waiters: AtomicUsize,
    /// Raised (under the in-flight lock) when the last waiter
    /// *cancels*; plumbed into the engine as its cooperative
    /// cancellation flag so a started run aborts between iterations.
    /// An aborted or abort-pending entry is never joined — a fresh
    /// submission of the same key displaces it instead.
    abort: Arc<AtomicBool>,
}

#[derive(Default)]
struct InflightState {
    result: Option<Arc<SpannerRun>>,
    skipped: bool,
}

/// A cached result together with the job identity it answers, checked
/// on every hit (see [`Inflight`] on why the hash alone is not
/// identity).
struct CachedResult {
    instance: VariantInstance,
    config_sig: ConfigSig,
    run: Arc<SpannerRun>,
}

struct Shared {
    cache: OrderedMutex<LruCache<CachedResult>>,
    /// The persistent tier behind the LRU; locked after `cache` and
    /// never while `inflight` is held.
    store: Option<OrderedMutex<Store>>,
    /// Cleared when a store append fails (real ENOSPC or injected
    /// fault): the service demotes itself to memory-only caching —
    /// the store is neither read nor written again — instead of
    /// failing requests or serving unverified bytes.
    store_ok: AtomicBool,
    inflight: OrderedMutex<HashMap<u64, Arc<Inflight>>>,
    metrics: ServiceMetrics,
    /// Lifecycle span/event ring: every submission gets a trace id and
    /// leaves a submitted → classified → executed → delivered trail
    /// here, exportable as JSONL (`spanner-serve --trace-dir`).
    flight: FlightRecorder,
}

/// The in-process spanner-serving subsystem. See the module docs for
/// the submission life cycle; [`crate::server`] exposes the same
/// object over TCP.
pub struct Service {
    shared: Arc<Shared>,
    default_timeout: Option<Duration>,
    engine_shards: Option<usize>,
    workers: usize,
    fault: Arc<FaultInjector>,
    read_budget: Duration,
    /// The named-graph registry ([`crate::graphs`]), shared by the TCP
    /// and HTTP frontends. Its solves go through [`Service::run`], so
    /// graph reads hit the same cache/store/coalescing as one-shot
    /// jobs.
    graphs: GraphRegistry,
    /// Dropped last (declaration order): pool teardown drains queued
    /// runs, and those workers still need `shared`.
    pool: Pool,
}

impl Service {
    /// Starts a service with the given tunables.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `queue_capacity` is zero, or if
    /// [`ServiceConfig::cache_dir`] is set and the store cannot be
    /// opened (use [`Service::open`] to handle that error instead; a
    /// *corrupt* store never fails — bad records are dropped and
    /// counted, only real IO errors do).
    pub fn new(cfg: &ServiceConfig) -> Self {
        Service::open(cfg).expect("open persistent store") // dsa-lint: allow(DSA-P001, reason="documented startup-only panic, Service::open is the non-panicking path")
    }

    /// Starts a service, propagating persistent-store IO errors (an
    /// unwritable `cache_dir`, say) instead of panicking. With
    /// `cache_dir: None` this never fails.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `queue_capacity` is zero.
    pub fn open(cfg: &ServiceConfig) -> std::io::Result<Self> {
        let mut cache = LruCache::new(cfg.cache_capacity);
        let metrics = ServiceMetrics::new();
        let fault = cfg
            .fault
            .clone()
            .unwrap_or_else(|| Arc::new(FaultInjector::disabled()));
        let store = match &cfg.cache_dir {
            None => None,
            Some(dir) => {
                let t_recovery = Instant::now();
                let mut store = Store::open_with(dir, Arc::clone(&fault))?;
                if store.dropped() > 0 {
                    let dropped = store.dropped();
                    let dir = dir.display();
                    obs::warn(
                        "dsa-service",
                        "store recovery dropped corrupt records",
                        &[("dropped", &dropped), ("dir", &dir)],
                    );
                }
                metrics.set_store_dropped(store.dropped());
                // Warm start: replay the most recent records into the
                // LRU (oldest first, so recency matches log order).
                for record in store.warm_records(cfg.cache_capacity) {
                    cache.insert(
                        record.key,
                        CachedResult {
                            instance: record.instance,
                            config_sig: config_sig(&record.config),
                            run: record.run,
                        },
                    );
                }
                metrics.set_store_records(store.records());
                metrics.set_store_recovery(t_recovery.elapsed());
                Some(OrderedMutex::new("store", 50, store))
            }
        };
        // The graph registry opens *after* the store: the store's
        // advisory single-writer lock covers the whole cache dir,
        // including the graph delta log.
        let (graphs, replay) = GraphRegistry::open(cfg.cache_dir.as_deref(), Arc::clone(&fault))?;
        if replay.dropped > 0 || replay.skipped > 0 {
            let (dropped, skipped) = (replay.dropped, replay.skipped);
            obs::warn(
                "dsa-service",
                "graph log replay dropped or skipped records",
                &[("dropped", &dropped), ("skipped", &skipped)],
            );
        }
        metrics.set_graphs_live(replay.graphs as u64);
        Ok(Service {
            shared: Arc::new(Shared {
                cache: OrderedMutex::new("cache", 40, cache),
                store,
                store_ok: AtomicBool::new(true),
                inflight: OrderedMutex::new("inflight", 60, HashMap::new()),
                metrics,
                flight: FlightRecorder::new(obs::DEFAULT_FLIGHT_CAPACITY),
            }),
            default_timeout: cfg.default_timeout,
            engine_shards: cfg.engine_shards,
            workers: cfg.workers,
            fault,
            read_budget: cfg.read_budget,
            graphs,
            pool: Pool::new(cfg.workers, cfg.queue_capacity, cfg.queue_byte_budget),
        })
    }

    /// Creates (or idempotently re-creates) a named graph, solving its
    /// baseline spanner eagerly. The `PUT /v1/graphs/{id}` and
    /// `graph-create v2` surface.
    pub fn graph_create(&self, spec: GraphSpec) -> Result<GraphCreated, GraphError> {
        let id = spec.id.clone();
        let (created, degraded) = self.graphs.create(spec, |s| self.run(&s))?;
        if degraded {
            self.shared.metrics.set_store_degraded();
        }
        if !created.existed {
            self.shared
                .metrics
                .set_graphs_live(self.graphs.live() as u64);
            self.shared.flight.event(
                obs::next_trace_id(),
                "graph.created",
                vec![
                    ("graph".to_string(), id),
                    ("edges".to_string(), created.edges.to_string()),
                    ("spanner_size".to_string(), created.spanner_size.to_string()),
                ],
            );
        }
        Ok(created)
    }

    /// Applies edge deltas to a named graph, classifying each batch as
    /// commuted / repaired / recomputed. The `PATCH /v1/graphs/{id}`
    /// and `graph-patch v2` surface.
    pub fn graph_patch(&self, id: &str, ops: &[DeltaOp]) -> Result<GraphPatched, GraphError> {
        let (patched, degraded) = self.graphs.patch(id, ops, |s| self.run(&s))?;
        if degraded {
            self.shared.metrics.set_store_degraded();
        }
        self.shared.metrics.on_graph_deltas(
            patched.classes.commuted,
            patched.classes.repaired,
            patched.classes.recomputed,
        );
        self.shared.flight.event(
            obs::next_trace_id(),
            "graph.patched",
            vec![
                ("graph".to_string(), id.to_string()),
                ("applied".to_string(), patched.applied.to_string()),
                ("commuted".to_string(), patched.classes.commuted.to_string()),
                ("repaired".to_string(), patched.classes.repaired.to_string()),
                (
                    "recomputed".to_string(),
                    patched.classes.recomputed.to_string(),
                ),
            ],
        );
        Ok(patched)
    }

    /// A named graph's metadata/stats. The `GET /v1/graphs/{id}` and
    /// `graph-get v2` surface.
    pub fn graph_meta(&self, id: &str) -> Result<GraphMeta, GraphError> {
        self.graphs.meta(id)
    }

    /// A named graph's maintained spanner: always the solve of the
    /// current live edge set (byte-deterministic for a given delta
    /// history), served through the same cache/store/coalescing
    /// pipeline as one-shot jobs. The `GET /v1/graphs/{id}/spanner`
    /// and `graph-spanner v2` surface.
    pub fn graph_spanner(&self, id: &str) -> Result<GraphSpannerResult, GraphError> {
        self.graphs.spanner(id, |s| self.run(&s))
    }

    /// Retires a named graph. The `DELETE /v1/graphs/{id}` and
    /// `graph-delete v2` surface.
    pub fn graph_delete(&self, id: &str) -> Result<(), GraphError> {
        let degraded = self.graphs.delete(id)?;
        if degraded {
            self.shared.metrics.set_store_degraded();
        }
        self.shared
            .metrics
            .set_graphs_live(self.graphs.live() as u64);
        self.shared.flight.event(
            obs::next_trace_id(),
            "graph.deleted",
            vec![("graph".to_string(), id.to_string())],
        );
        Ok(())
    }

    /// Number of live named graphs.
    pub fn graphs_live(&self) -> usize {
        self.graphs.live()
    }

    /// Whether the graph delta log is still persisting creates and
    /// patches (false after an append failure demoted the registry to
    /// memory-only serving; trivially true without a cache directory).
    pub fn graphs_log_healthy(&self) -> bool {
        self.graphs.log_healthy()
    }

    /// Submits a job and returns a handle to its (possibly shared)
    /// result.
    pub fn submit(&self, spec: &JobSpec) -> Result<JobHandle, JobError> {
        let job = match canonicalize_job(spec) {
            Ok(job) => job,
            Err(e) => {
                self.shared.metrics.on_invalid();
                return Err(e);
            }
        };
        let kind = job.instance.kind();
        let trace_id = obs::next_trace_id();
        self.shared.flight.event(
            trace_id,
            "job.submitted",
            vec![
                ("key".to_string(), format!("{:016x}", job.key)),
                ("kind".to_string(), kind.to_string()),
            ],
        );
        let handle_base = |source| JobHandle {
            key: job.key,
            kind,
            from_canonical: job.from_canonical.clone(),
            timeout: spec.timeout.or(self.default_timeout),
            shared: Arc::clone(&self.shared),
            trace_id,
            source,
        };

        // Classification happens with the cache lock held and the
        // in-flight lock nested inside it; the completion path takes
        // the two locks in the same order, so hit-or-join is atomic:
        // a key is never both evicted from in-flight and absent from
        // the cache. Every hash-keyed lookup is verified against the
        // canonical instance + config, so a 64-bit key collision costs
        // a duplicate computation instead of cross-serving results.
        let sig = config_sig(&job.config);
        let mut cache = self.shared.cache.lock();
        if let Some(v) = cache.get(job.key) {
            if v.instance == job.instance && v.config_sig == sig {
                self.shared.metrics.on_cache_hit();
                self.shared.flight.event(trace_id, "job.cache_hit", vec![]);
                return Ok(handle_base(HandleSource::Ready(Arc::clone(&v.run))));
            }
            // Collision: fall through and recompute; the completion
            // overwrites the slot and hits stay verified either way.
        }
        // Second tier: the persistent store. Looked up under the cache
        // lock (same atomicity argument as the LRU), verified against
        // the canonical identity bytes — a stale or colliding record
        // degrades to a recompute, never to another job's result. A
        // verified disk hit is promoted into the LRU so repeats stay
        // off the disk. The index is consulted *before* the identity
        // bytes are rendered, so a stream of novel jobs never pays an
        // O(instance) serialization for a guaranteed miss.
        if let Some(store) = self
            .shared
            .store
            .as_ref()
            .filter(|_| self.shared.store_ok.load(Ordering::SeqCst))
        {
            let mut store = store.lock();
            let hit = if store.contains(job.key) {
                let t_read = Instant::now();
                let verification = verification_bytes(&job.instance, &job.config);
                let hit = store.get(job.key, &verification);
                self.shared.metrics.on_store_read(t_read.elapsed());
                hit
            } else {
                None
            };
            drop(store);
            if let Some(run) = hit {
                let run = Arc::new(run);
                cache.insert(
                    job.key,
                    CachedResult {
                        instance: job.instance.clone(),
                        config_sig: sig,
                        run: Arc::clone(&run),
                    },
                );
                self.shared.metrics.on_disk_hit();
                self.shared.flight.event(trace_id, "job.disk_hit", vec![]);
                return Ok(handle_base(HandleSource::Ready(run)));
            }
        }
        let mut inflight = self.shared.inflight.lock();
        // A colliding in-flight entry cannot be joined *or* displaced;
        // the new run proceeds untracked (no dedup for the collider).
        // An *abort-pending* identical entry (last waiter cancelled,
        // run doomed) cannot be joined either — the fresh entry
        // displaces it in the map, and the doomed run's retirement is
        // pointer-checked so it never removes its successor.
        let mut tracked = true;
        if let Some(entry) = inflight.get(&job.key).cloned() {
            if entry.instance == job.instance && entry.config_sig == sig {
                if !entry.abort.load(Ordering::SeqCst) {
                    entry.waiters.fetch_add(1, Ordering::SeqCst);
                    self.shared.metrics.on_coalesced();
                    self.shared.flight.event(trace_id, "job.coalesced", vec![]);
                    return Ok(handle_base(HandleSource::Waiting(entry)));
                }
            } else {
                tracked = false;
            }
        }
        let entry = Arc::new(Inflight {
            instance: job.instance,
            config_sig: sig,
            state: OrderedMutex::new("inflight_state", 70, InflightState::default()),
            done: Condvar::new(),
            waiters: AtomicUsize::new(1),
            abort: Arc::new(AtomicBool::new(false)),
        });
        let shared = Arc::clone(&self.shared);
        let fault = Arc::clone(&self.fault);
        let key = job.key;
        let mut config = job.config;
        // Execution policy: the run aborts cooperatively when the
        // entry's abort flag is raised, and the operator's shard
        // override (if any) replaces the spec's request. Neither field
        // is result-relevant, so the cached bytes are unaffected.
        config.cancel = Some(Arc::clone(&entry.abort));
        if let Some(shards) = self.engine_shards {
            config.num_shards = shards;
        }
        // Retiring must be pointer-checked: an aborted entry may have
        // been displaced in the map by a fresh submission of the same
        // key, which this run must not remove.
        let retire = {
            let entry = Arc::clone(&entry);
            move |inflight: &mut HashMap<u64, Arc<Inflight>>| {
                if tracked
                    && inflight
                        .get(&key)
                        .is_some_and(|cur| Arc::ptr_eq(cur, &entry))
                {
                    inflight.remove(&key);
                }
            }
        };
        let worker = {
            let entry = Arc::clone(&entry);
            Box::new(move || {
                // Skip the run when every waiter gave up before it began.
                // The waiter count is read under the in-flight lock — the
                // same lock a coalescing submit increments it under — so a
                // submission can never join an entry this closure is about
                // to retire as skipped.
                {
                    let mut inflight = shared.inflight.lock();
                    if entry.waiters.load(Ordering::SeqCst) == 0 {
                        retire(&mut inflight);
                        drop(inflight);
                        let mut state = entry.state.lock();
                        state.skipped = true;
                        drop(state);
                        entry.done.notify_all();
                        shared.metrics.on_skipped();
                        shared.flight.event(trace_id, "job.skipped", vec![]);
                        return;
                    }
                }
                // Chaos hooks: injected latency perturbs scheduling, an
                // injected abort exercises the cooperative-cancellation
                // path (waiters see `Cancelled` and retry). Neither can
                // change the bytes a spec maps to.
                if let Some(delay) = fault.latency("engine.latency_ms") {
                    std::thread::sleep(delay);
                }
                if fault.fire("engine.abort") {
                    entry.abort.store(true, Ordering::SeqCst);
                }
                let t0 = Instant::now();
                let (run, phases) = run_variant_timed(&entry.instance, &config);
                let run = Arc::new(run);
                if run.cancelled {
                    // Mid-flight abort: every waiter is gone (the flag is
                    // only raised by the last cancel), and the partial
                    // spanner must never reach the cache.
                    let mut inflight = shared.inflight.lock();
                    retire(&mut inflight);
                    drop(inflight);
                    let mut state = entry.state.lock();
                    state.skipped = true;
                    drop(state);
                    entry.done.notify_all();
                    shared.metrics.on_aborted();
                    shared.flight.event(trace_id, "job.aborted", vec![]);
                    return;
                }
                let elapsed = t0.elapsed();
                shared
                    .metrics
                    .on_executed(run.iterations, run.local_rounds(), elapsed);
                shared.flight.span(
                    trace_id,
                    "engine.run",
                    elapsed,
                    vec![
                        ("iterations".to_string(), run.iterations.to_string()),
                        ("step1_us".to_string(), phases.step1.as_micros().to_string()),
                        ("step3_us".to_string(), phases.step3.as_micros().to_string()),
                        ("step4_us".to_string(), phases.step4.as_micros().to_string()),
                        (
                            "coverage_us".to_string(),
                            phases.coverage.as_micros().to_string(),
                        ),
                    ],
                );
                // Same lock order as classification: publish to the cache
                // *before* retiring the in-flight entry.
                let mut cache = shared.cache.lock();
                cache.insert(
                    key,
                    CachedResult {
                        instance: entry.instance.clone(),
                        config_sig: entry.config_sig,
                        run: Arc::clone(&run),
                    },
                );
                retire(&mut shared.inflight.lock());
                drop(cache);
                // Persist the completed run (aborted runs returned above
                // and never reach this point) — *outside* the cache lock:
                // the LRU insert above already guarantees a racing
                // submission finds the result, so the O(instance)
                // serialization and the disk write need not block other
                // submissions. (With the LRU disabled a racer landing in
                // this window recomputes once; duplicate work, never
                // wrong bytes.)
                if let Some(store) = shared
                    .store
                    .as_ref()
                    .filter(|_| shared.store_ok.load(Ordering::SeqCst))
                {
                    let t_write = Instant::now();
                    let verification = verification_bytes(&entry.instance, &config);
                    let mut store = store.lock();
                    match store.append(key, &verification, &run) {
                        Ok(()) => {
                            shared.metrics.set_store_records(store.records());
                            shared.metrics.on_store_write(t_write.elapsed());
                        }
                        Err(e) => {
                            // Degrade, never fail: the result was already
                            // published to the cache with verified bytes;
                            // only persistence is lost. Demote the store so
                            // no later submission reads from (or writes to)
                            // a file in an unknown state.
                            drop(store);
                            shared.store_ok.store(false, Ordering::SeqCst);
                            shared.metrics.set_store_degraded();
                            let err = e.to_string();
                            obs::error(
                                "dsa-service",
                                "store append failed; demoting to memory-only caching",
                                &[("error", &err)],
                            );
                        }
                    }
                }
                let mut state = entry.state.lock();
                state.result = Some(run);
                drop(state);
                entry.done.notify_all();
            })
        };
        // Admission control, decided with both locks still held (the
        // pool lock is a leaf): a fresh run must win a queue slot
        // before the entry is published to the in-flight map, so a
        // shed job leaves nothing behind for later submissions to
        // coalesce onto — and `shed` classification is as atomic as
        // the other three classes.
        if !self.pool.try_submit(worker, job_cost(&entry.instance)) {
            let retry_after_ms = self.retry_after_hint_ms();
            self.shared.metrics.on_shed();
            self.shared.flight.event(
                trace_id,
                "job.shed",
                vec![("retry_after_ms".to_string(), retry_after_ms.to_string())],
            );
            return Err(JobError::Busy { retry_after_ms });
        }
        if tracked {
            inflight.insert(job.key, Arc::clone(&entry));
        }
        self.shared.metrics.on_cache_miss();
        self.shared.flight.event(trace_id, "job.queued", vec![]);
        drop(inflight);
        drop(cache);
        Ok(handle_base(HandleSource::Waiting(entry)))
    }

    /// How long a shed caller should wait before retrying, derived
    /// from the observed p95 engine latency and the backlog per
    /// worker. Clamped to [10ms, 30s]; with no latency samples yet the
    /// floor applies.
    fn retry_after_hint_ms(&self) -> u64 {
        let p95_ms = (self.shared.metrics.p95_us() / 1_000).max(1);
        let pending = self.pool.queued() as u64 + 1;
        let per_worker = pending.div_ceil(self.workers.max(1) as u64);
        (p95_ms * per_worker).clamp(10, 30_000)
    }

    /// Submit-and-wait convenience.
    pub fn run(&self, spec: &JobSpec) -> Result<JobResponse, JobError> {
        self.submit(spec)?.wait()
    }

    /// A point-in-time view of the service counters, with the queue
    /// and in-flight gauges sampled at the same moment.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.shared.metrics.snapshot();
        snapshot.queue_depth = self.pool.queued() as u64;
        snapshot.in_flight = self.shared.inflight.lock().len() as u64;
        snapshot
    }

    /// The service's lifecycle span/event ring (`spanner-serve
    /// --trace-dir` drains it to JSONL).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.shared.flight
    }

    /// Entries currently in the result cache.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.lock().len()
    }

    /// Jobs waiting in the pool queue (diagnostic only).
    pub fn queued_jobs(&self) -> usize {
        self.pool.queued()
    }

    /// The service's fault injector (never fires unless
    /// [`ServiceConfig::fault`] was set); the TCP/HTTP frontends
    /// consult it for connection-level fault points.
    pub fn fault(&self) -> &Arc<FaultInjector> {
        &self.fault
    }

    /// The per-connection read budget the frontends enforce
    /// ([`ServiceConfig::read_budget`]).
    pub(crate) fn read_budget(&self) -> Duration {
        self.read_budget
    }

    /// Records a connection closed for exceeding its read budget.
    pub(crate) fn on_connection_timed_out(&self) {
        self.shared.metrics.on_connection_timed_out();
    }

    /// Waits until the worker queue and the in-flight table are both
    /// empty, or until `timeout` passes; returns whether the service
    /// fully drained. Graceful-shutdown callers stop accepting new
    /// submissions first, then drain, then drop the service (which
    /// joins the workers).
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let idle = self.pool.queued() == 0 && self.shared.inflight.lock().is_empty();
            if idle {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

enum HandleSource {
    /// Served from cache at submission time.
    Ready(Arc<SpannerRun>),
    /// Waiting on an in-flight (possibly shared) engine run.
    Waiting(Arc<Inflight>),
}

/// A claim on one submitted job's result.
///
/// Obtain the response with [`JobHandle::wait`] (or
/// [`JobHandle::wait_for`] with an explicit deadline), or abandon it
/// with [`JobHandle::cancel`].
pub struct JobHandle {
    key: u64,
    kind: VariantKind,
    from_canonical: Vec<EdgeId>,
    timeout: Option<Duration>,
    shared: Arc<Shared>,
    trace_id: u64,
    source: HandleSource,
}

impl JobHandle {
    /// The canonical job key (also the cache key).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Waits using the spec's timeout, or the service default, or
    /// forever.
    pub fn wait(self) -> Result<JobResponse, JobError> {
        let timeout = self.timeout;
        self.wait_for(timeout)
    }

    /// Waits at most `timeout` (`None` waits forever).
    pub fn wait_for(self, timeout: Option<Duration>) -> Result<JobResponse, JobError> {
        let run = match &self.source {
            HandleSource::Ready(run) => Arc::clone(run),
            HandleSource::Waiting(entry) => {
                let deadline = timeout.map(|t| Instant::now() + t);
                let mut state = entry.state.lock();
                loop {
                    if let Some(run) = &state.result {
                        break Arc::clone(run);
                    }
                    if state.skipped {
                        // Only reachable through cancel-then-wait
                        // misuse of a cloned key; a live waiter keeps
                        // the run scheduled.
                        return Err(JobError::Cancelled);
                    }
                    match deadline {
                        None => state = state.wait_on(&entry.done),
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                entry.waiters.fetch_sub(1, Ordering::SeqCst);
                                self.shared.metrics.on_timed_out();
                                self.shared
                                    .flight
                                    .event(self.trace_id, "job.timed_out", vec![]);
                                return Err(JobError::TimedOut);
                            }
                            let (s, _) = state.wait_timeout_on(&entry.done, d - now);
                            state = s;
                        }
                    }
                }
            }
        };
        self.shared.metrics.on_delivered();
        self.shared
            .flight
            .event(self.trace_id, "job.delivered", vec![]);
        Ok(JobResponse::from_run(
            self.key,
            self.kind,
            &run,
            &self.from_canonical,
        ))
    }

    /// Abandons the result. A run no handle is waiting on anymore is
    /// skipped if it has not started yet; if it already started, the
    /// last cancel raises the engine's cooperative flag and the run
    /// aborts between iterations (its partial result is discarded).
    pub fn cancel(self) {
        if let HandleSource::Waiting(entry) = &self.source {
            // The decrement-and-abort pair runs under the in-flight
            // lock — the lock coalescing joins hold — so a join can
            // never slip between "last waiter left" and "abort
            // raised" and latch onto a doomed run.
            let _inflight = self.shared.inflight.lock();
            if entry.waiters.fetch_sub(1, Ordering::SeqCst) == 1 {
                entry.abort.store(true, Ordering::SeqCst);
            }
        }
        self.shared.metrics.on_cancelled();
        self.shared
            .flight
            .event(self.trace_id, "job.cancelled", vec![]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::dist::VariantInstance;
    use dsa_graphs::gen;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn undirected_spec(n: usize, p: f64, graph_seed: u64, engine_seed: u64) -> JobSpec {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        JobSpec::new(
            VariantInstance::Undirected {
                graph: gen::gnp_connected(n, p, &mut rng),
            },
            engine_seed,
        )
    }

    #[test]
    fn hit_miss_and_coalesce_classification() {
        let service = Service::new(&ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let spec = undirected_spec(24, 0.25, 1, 7);
        let a = service.run(&spec).unwrap();
        let b = service.run(&spec).unwrap();
        assert_eq!(a, b);
        let m = service.metrics();
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(
            m.jobs_submitted,
            m.cache_hits + m.cache_misses + m.coalesced
        );
        assert_eq!(service.cache_len(), 1);
    }

    #[test]
    fn different_seeds_are_different_jobs() {
        let service = Service::new(&ServiceConfig::default());
        let a = service.run(&undirected_spec(20, 0.3, 2, 1)).unwrap();
        let b = service.run(&undirected_spec(20, 0.3, 2, 2)).unwrap();
        assert_ne!(a.key, b.key);
        assert_eq!(service.metrics().cache_misses, 2);
    }

    #[test]
    fn responses_are_in_submitted_id_space() {
        // Submit the same graph under two edge orders: the canonical
        // runs coincide (one cache entry), but each response speaks
        // its caller's ids.
        use dsa_core::verify::is_k_spanner;
        use dsa_graphs::{EdgeSet, Graph};
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)];
        let g1 = Graph::from_edges(4, edges);
        let mut rev = edges;
        rev.reverse();
        let g2 = Graph::from_edges(4, rev);
        let service = Service::new(&ServiceConfig::default());
        let r1 = service
            .run(&JobSpec::new(
                VariantInstance::Undirected { graph: g1.clone() },
                5,
            ))
            .unwrap();
        let r2 = service
            .run(&JobSpec::new(
                VariantInstance::Undirected { graph: g2.clone() },
                5,
            ))
            .unwrap();
        assert_eq!(r1.key, r2.key, "same edge set, same job");
        assert_eq!(service.metrics().cache_hits, 1);
        let s1 = EdgeSet::from_iter(g1.num_edges(), r1.spanner.iter().copied());
        let s2 = EdgeSet::from_iter(g2.num_edges(), r2.spanner.iter().copied());
        assert!(is_k_spanner(&g1, &s1, 2));
        assert!(is_k_spanner(&g2, &s2, 2));
        // Same spanner as an edge *pair* set, despite different ids.
        let pairs = |g: &Graph, ids: &[usize]| {
            let mut p: Vec<_> = ids.iter().map(|&e| g.endpoints(e)).collect();
            p.sort_unstable();
            p
        };
        assert_eq!(pairs(&g1, &r1.spanner), pairs(&g2, &r2.spanner));
    }

    #[test]
    fn invalid_spec_counts_and_rejects() {
        use dsa_graphs::{EdgeWeights, Graph};
        let service = Service::new(&ServiceConfig::default());
        let bad = JobSpec::new(
            VariantInstance::Weighted {
                graph: Graph::from_edges(3, [(0, 1), (1, 2)]),
                weights: EdgeWeights::constant(1, 1),
            },
            0,
        );
        assert!(matches!(service.submit(&bad), Err(JobError::Invalid(_))));
        assert_eq!(service.metrics().invalid, 1);
        assert_eq!(service.metrics().jobs_submitted, 0);
    }

    #[test]
    fn zero_timeout_times_out() {
        let service = Service::new(&ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut spec = undirected_spec(40, 0.2, 3, 1);
        spec.timeout = Some(Duration::from_nanos(0));
        // Either the worker wins the race (fine) or we time out; both
        // are legal, but the error must be TimedOut, never a hang.
        match service.submit(&spec).unwrap().wait() {
            Ok(resp) => assert!(resp.converged),
            Err(e) => assert_eq!(e, JobError::TimedOut),
        }
    }

    #[test]
    fn sharded_execution_serves_identical_bytes() {
        // The operator's shard override may never change a response:
        // the same spec through an unsharded and a 4-shard service
        // must produce equal JobResponses (and both still verify).
        let spec = undirected_spec(30, 0.25, 11, 5);
        let plain = Service::new(&ServiceConfig::default());
        let sharded = Service::new(&ServiceConfig {
            engine_shards: Some(4),
            ..ServiceConfig::default()
        });
        let a = plain.run(&spec).unwrap();
        let b = sharded.run(&spec).unwrap();
        assert_eq!(a, b);
        // A spec *requesting* shards maps to the same cache key, so it
        // is a hit on the sharded service's existing entry.
        let mut requesting = spec.clone();
        requesting.config.num_shards = 8;
        assert_eq!(sharded.run(&requesting).unwrap(), b);
        assert_eq!(sharded.metrics().cache_hits, 1);
    }

    #[test]
    fn cancel_after_start_aborts_the_engine_mid_flight() {
        let service = Service::new(&ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        // Big enough that the engine is still iterating long after the
        // cancel below lands (hundreds of ms even in release builds).
        let slow = undirected_spec(260, 0.08, 8, 1);
        let handle = service.submit(&slow).unwrap();
        // The queue drains the moment the worker dequeues the job;
        // give it a beat more so the engine loop is actually running.
        while service.queued_jobs() > 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(60));
        handle.cancel();
        // Quiescence: with one worker, this job completes only after
        // the aborted run returned.
        service.run(&undirected_spec(10, 0.5, 9, 1)).unwrap();
        let m = service.metrics();
        assert_eq!(m.cancelled, 1);
        assert_eq!(m.aborted, 1, "started run must abort, not complete");
        assert_eq!(m.skipped, 0);
        // The partial spanner never reached the cache; only the small
        // quiescence job is cached, and resubmitting the cancelled
        // spec classifies as a fresh miss.
        assert_eq!(service.cache_len(), 1);
        assert_eq!(m.jobs_completed, 1);
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dsa-service-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn restart_serves_byte_identical_results_from_disk() {
        let dir = store_dir("restart");
        let specs: Vec<JobSpec> = (0..4)
            .map(|i| undirected_spec(20, 0.3, 40 + i, i))
            .collect();
        let cold: Vec<JobResponse> = {
            let service = Service::new(&ServiceConfig {
                cache_dir: Some(dir.clone()),
                ..ServiceConfig::default()
            });
            let cold = specs.iter().map(|s| service.run(s).unwrap()).collect();
            assert_eq!(service.metrics().store_records, 4);
            cold
        };
        // Restart with an LRU too small to warm-hold everything: the
        // overflow must come back as verified *disk* hits, and every
        // response must equal its cold computation exactly.
        let service = Service::new(&ServiceConfig {
            cache_dir: Some(dir.clone()),
            cache_capacity: 2,
            ..ServiceConfig::default()
        });
        for (spec, cold) in specs.iter().zip(&cold) {
            assert_eq!(&service.run(spec).unwrap(), cold);
        }
        let m = service.metrics();
        assert_eq!(m.cache_misses, 0, "no engine re-runs after restart");
        assert_eq!(m.cache_hits, 4);
        assert!(m.disk_hits > 0, "small LRU must fall through to disk");
        assert_eq!(
            m.jobs_submitted,
            m.cache_hits + m.cache_misses + m.coalesced
        );
        assert_eq!(m.store_records, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_fills_the_lru() {
        let dir = store_dir("warm");
        let spec = undirected_spec(18, 0.3, 50, 1);
        {
            let service = Service::new(&ServiceConfig {
                cache_dir: Some(dir.clone()),
                ..ServiceConfig::default()
            });
            service.run(&spec).unwrap();
        }
        let service = Service::new(&ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        assert_eq!(service.cache_len(), 1, "warm start replays into the LRU");
        service.run(&spec).unwrap();
        let m = service.metrics();
        // Ample LRU: the replayed record answers from memory.
        assert_eq!((m.cache_hits, m.disk_hits, m.cache_misses), (1, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_disabled_lru_still_serves_disk() {
        // cache_capacity 0 disables the in-memory tier entirely; the
        // persistent tier must still dedup across and within runs.
        let dir = store_dir("no-lru");
        let spec = undirected_spec(16, 0.35, 60, 2);
        let cfg = ServiceConfig {
            cache_dir: Some(dir.clone()),
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let a = {
            let service = Service::new(&cfg);
            let a = service.run(&spec).unwrap();
            assert_eq!(service.run(&spec).unwrap(), a);
            let m = service.metrics();
            assert_eq!((m.cache_misses, m.disk_hits), (1, 1));
            a
        };
        let service = Service::new(&cfg);
        assert_eq!(service.run(&spec).unwrap(), a);
        assert_eq!(service.metrics().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aborted_runs_are_never_persisted() {
        let dir = store_dir("abort");
        let service = Service::new(&ServiceConfig {
            workers: 1,
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        let slow = undirected_spec(260, 0.08, 8, 1);
        let handle = service.submit(&slow).unwrap();
        while service.queued_jobs() > 0 {
            std::thread::yield_now();
        }
        std::thread::sleep(Duration::from_millis(60));
        handle.cancel();
        // Quiescence job: with one worker it runs after the abort.
        service.run(&undirected_spec(10, 0.5, 9, 1)).unwrap();
        let m = service.metrics();
        assert_eq!(m.aborted, 1);
        assert_eq!(m.store_records, 1, "only the completed run is on disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_propagates_store_io_errors() {
        // A cache_dir that collides with an existing *file* cannot be
        // created; Service::open reports it instead of panicking.
        let dir = store_dir("io-error");
        std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
        std::fs::write(&dir, b"in the way").unwrap();
        let result = Service::open(&ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        assert!(result.is_err());
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn cancel_before_start_skips_the_run() {
        // One worker pinned by a slow job; a second job cancelled
        // while queued must be skipped, not executed.
        let service = Service::new(&ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let slow = service.submit(&undirected_spec(70, 0.2, 4, 1)).unwrap();
        let doomed = service.submit(&undirected_spec(30, 0.3, 5, 1)).unwrap();
        doomed.cancel();
        slow.wait().unwrap();
        // Submit one more so the worker definitely reached the
        // cancelled entry before we read the counters.
        service.run(&undirected_spec(10, 0.5, 6, 1)).unwrap();
        let m = service.metrics();
        assert_eq!(m.cancelled, 1);
        assert_eq!(m.skipped, 1);
        // The skipped job never executed: only the two live runs did.
        assert_eq!(m.jobs_completed, 2);
    }

    #[test]
    fn overload_sheds_with_busy_and_exact_accounting() {
        // One worker held by an injected delay, a depth-1 queue: the
        // third concurrent distinct submission must shed.
        let plan = dsa_runtime::FaultPlan::parse("seed=1;engine.latency_ms=300@1.0").unwrap();
        let service = Service::new(&ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            fault: Some(Arc::new(FaultInjector::new(plan))),
            ..ServiceConfig::default()
        });
        let running = service.submit(&undirected_spec(20, 0.3, 10, 1)).unwrap();
        // Wait for the worker to dequeue the first job so the single
        // queue slot is free for the second — otherwise this test
        // races the worker thread's pickup.
        while service.metrics().queue_depth > 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let queued = service.submit(&undirected_spec(20, 0.3, 11, 1)).unwrap();
        let shed = service.submit(&undirected_spec(20, 0.3, 12, 1)).map(|_| ());
        let Err(JobError::Busy { retry_after_ms }) = shed else {
            panic!("expected Busy, got {shed:?}");
        };
        assert!((10..=30_000).contains(&retry_after_ms));
        running.wait().unwrap();
        queued.wait().unwrap();
        let m = service.metrics();
        assert_eq!(m.shed, 1);
        assert_eq!(
            m.jobs_submitted,
            m.cache_hits + m.cache_misses + m.coalesced + m.shed
        );
        // A shed job left nothing to coalesce onto: resubmitting it
        // now is a plain miss that runs to completion.
        service.run(&undirected_spec(20, 0.3, 12, 1)).unwrap();
        assert_eq!(service.metrics().coalesced, 0);
    }

    #[test]
    fn injected_store_failure_degrades_to_memory_only() {
        // Every append fails: the first completed run demotes the
        // store, yet every job still returns correct (byte-identical)
        // results from the in-memory path.
        let plan = dsa_runtime::FaultPlan::parse("seed=2;store.append.err=1.0").unwrap();
        let dir = store_dir("degrade");
        let _ = std::fs::remove_dir_all(&dir);
        let service = Service::open(&ServiceConfig {
            cache_dir: Some(dir.clone()),
            fault: Some(Arc::new(FaultInjector::new(plan))),
            ..ServiceConfig::default()
        })
        .unwrap();
        let spec = undirected_spec(24, 0.25, 20, 1);
        let a = service.run(&spec).unwrap();
        let b = service.run(&spec).unwrap();
        assert_eq!(a, b, "degraded service still serves identical bytes");
        service.run(&undirected_spec(24, 0.25, 21, 1)).unwrap();
        let m = service.metrics();
        assert_eq!(m.store_degraded, 1);
        assert_eq!(m.store_records, 0, "no record survived the failed appends");
        assert_eq!(
            m.jobs_submitted,
            m.cache_hits + m.cache_misses + m.coalesced + m.shed
        );
        drop(service);
        // The degraded store never poisoned the directory: a healthy
        // reopen starts clean.
        let reopened = Service::open(&ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        })
        .unwrap();
        reopened.run(&spec).unwrap();
        assert_eq!(reopened.metrics().store_records, 1);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
