//! A batched, cached, multi-worker serving subsystem for the Section-4
//! spanner engine.
//!
//! After PR 1 every caller invoked `dsa_core::dist::min_2_spanner*`
//! directly: single-threaded, one job at a time, no reuse across
//! identical requests. This crate is the scheduling/serving substrate
//! on top of the engine:
//!
//! * [`JobSpec`] describes one request over any of the four problem
//!   variants (via [`dsa_core::dist::VariantInstance`]), with engine
//!   seed, ablation toggles, and an optional deadline;
//! * [`Service`] canonicalizes each request
//!   ([`dsa_graphs::canon`]), answers repeats from an LRU result
//!   cache — optionally backed by a persistent on-disk store
//!   ([`ServiceConfig::cache_dir`]) that survives restarts, warm-fills
//!   the LRU at startup, and verifies every disk hit against the
//!   canonical instance — coalesces concurrent identical submissions
//!   into one engine run, and schedules the rest on a bounded
//!   `std::thread` worker pool — deterministically: the response to a
//!   spec is a pure function of the spec, whatever the worker count
//!   and whether the answer was computed in this process lifetime;
//! * [`MetricsSnapshot`] accounts for the serving work (throughput,
//!   p50/p95 latency via [`dsa_runtime::LatencyRecorder`], cache hit
//!   rate, engine iterations/rounds re-exported from
//!   [`dsa_core::dist::SpannerRun`]);
//! * [`server`] / [`client`] speak a length-prefixed request/response
//!   protocol over TCP ([`wire`]), packaged as the `spanner-serve`
//!   and `spanner-cli` binaries.
//!
//! # Example
//!
//! ```
//! use dsa_core::dist::VariantInstance;
//! use dsa_graphs::gen;
//! use dsa_service::{JobSpec, Service, ServiceConfig};
//!
//! let service = Service::new(&ServiceConfig::default());
//! let spec = JobSpec::new(
//!     VariantInstance::Undirected { graph: gen::complete(8) },
//!     42,
//! );
//! let cold = service.run(&spec).unwrap();
//! let cached = service.run(&spec).unwrap();
//! assert_eq!(cold, cached);
//! assert!(cold.converged);
//! let m = service.metrics();
//! assert_eq!((m.cache_misses, m.cache_hits), (1, 1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod client;
pub mod graphs;
pub mod http;
mod job;
mod metrics;
mod net;
mod pool;
pub mod retry;
pub mod server;
mod service;
mod store;
pub mod wire;

pub use client::Client;
pub use graphs::{
    DeltaClasses, DeltaOp, EdgeRole, GraphCreated, GraphError, GraphMeta, GraphPatched,
    GraphSpannerResult, GraphSpec,
};
pub use http::{HttpClient, HttpServer};
pub use job::{JobError, JobResponse, JobSpec};
pub use metrics::MetricsSnapshot;
pub use retry::RetryPolicy;
pub use server::Server;
pub use service::{JobHandle, Service, ServiceConfig};
