//! The persistent, disk-backed result store behind the in-memory LRU.
//!
//! One store is one directory holding a single append-only record log
//! (`results.log`). Each record maps a canonical 64-bit job key to the
//! encoded [`SpannerRun`] result *plus the verification bytes of the
//! canonical job* — the [`crate::wire::encode_request`] rendering of
//! the canonical instance and its result-relevant engine config. The
//! verification bytes are the whole point: the key is an FNV-1a hash,
//! and the service's collision guard (a hash hit is served only after
//! the stored identity is checked against the submitted job) must
//! survive restarts. A disk hit is therefore verified byte-for-byte
//! against the canonical instance before being served — never trusted
//! on the hash alone.
//!
//! # On-disk format
//!
//! ```text
//! file     := magic record*
//! magic    := "DSASTOR1"                      (8 bytes)
//! record   := len payload checksum
//! len      := u32 BE, length of payload
//! payload  := key spec_len spec run_len run
//! key      := u64 BE canonical job key
//! spec_len := u32 BE   spec := verification bytes (wire run request)
//! run_len  := u32 BE   run  := encoded SpannerRun (see below)
//! checksum := u64 BE FNV-1a over payload
//! ```
//!
//! The run encoding is a flat big-endian integer layout: iterations,
//! converged flag, star-fallback count, the spanner's edge-id universe
//! and sorted id list, and the per-iteration stats — everything needed
//! to reconstruct a [`SpannerRun`] whose responses are byte-identical
//! to the cold computation's (a run is only ever appended *complete*;
//! aborted runs never reach the log, so `cancelled` is always false).
//!
//! # Corruption recovery
//!
//! The log is append-only, so damage concentrates at the tail (a crash
//! mid-append) but the reader assumes nothing: on open it walks the
//! records and
//!
//! * a record whose checksum or internal structure is wrong is
//!   **skipped** (its framing still locates the next record);
//! * a tail too short to contain the record its length prefix claims —
//!   or a length prefix that is itself garbage — ends the walk and the
//!   file is **truncated** back to the last well-formed boundary, so
//!   future appends land on a clean frame;
//! * a missing or foreign magic header drops the whole file and starts
//!   it fresh.
//!
//! Every dropped record is counted ([`Store::dropped`]); recovery
//! never fails the open and never serves bytes that fail verification.
//! Within one log, the *latest* record for a key wins (a key is
//! re-appended only after hash collisions), which the index and
//! [`Store::warm_records`] both respect.
//!
//! **Single writer.** A store directory belongs to one process at a
//! time (the standard one-daemon deployment): opening the store takes
//! an advisory lock — a `lock` file created with `create_new`
//! holding the owner's PID — and a second open fails fast with an
//! error naming that PID instead of interleaving frames into the log.
//! A lock left behind by a crashed process (its PID no longer alive)
//! is detected as stale and reclaimed; the lock file is removed when
//! the store is dropped.
//!
//! **Fault injection.** The store threads every write and point read
//! through [`dsa_runtime::fault`] points (`store.append.err`,
//! `store.append.short`, `store.append.corrupt`, `store.read.err`) so
//! chaos runs can exercise ENOSPC-style failures, crash-shaped short
//! writes, and silent corruption deterministically. An injected (or
//! real) append failure surfaces as an `Err` the service uses to
//! demote itself to memory-only caching; injected corruption is
//! caught by the same checksum-plus-verification reads that guard
//! against real disk rot — wrong bytes are never served.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dsa_core::dist::{EngineConfig, IterationStats, SpannerRun, VariantInstance};
use dsa_graphs::canon::Fnv1a;
use dsa_graphs::EdgeSet;
use dsa_runtime::{obs, FaultInjector};

use crate::job::{canonicalize_job, JobSpec};
use crate::wire;

/// File-format magic: identifies a v1 result log.
const MAGIC: &[u8; 8] = b"DSASTOR1";

/// Name of the record log inside a store directory.
pub(crate) const LOG_FILE: &str = "results.log";

/// Name of the advisory single-writer lock file inside a store
/// directory; holds the owning PID for diagnostics.
pub(crate) const LOCK_FILE: &str = "lock";

/// Upper bound on one record payload. A record carries the wire
/// encoding of the job (bounded by [`wire::MAX_FRAME`] for anything
/// that arrived remotely) plus the encoded run, which is smaller than
/// the instance it came from; twice the frame cap leaves margin while
/// keeping a corrupt length prefix from directing an absurd read.
const MAX_PAYLOAD: usize = 2 * wire::MAX_FRAME;

/// The canonical identity bytes a record is verified against: the wire
/// rendering of the canonical instance plus the result-relevant engine
/// config, with execution policy (shard count, cancel flag) and the
/// timeout normalized away so equal cache identities map to equal
/// bytes.
pub(crate) fn verification_bytes(instance: &VariantInstance, config: &EngineConfig) -> Vec<u8> {
    let mut config = config.clone();
    config.num_shards = 1;
    config.cancel = None;
    let spec = JobSpec {
        instance: instance.clone(),
        config,
        timeout: None,
    };
    wire::encode_request(&spec).into_bytes()
}

/// One record decoded far enough to warm the in-memory cache.
pub(crate) struct WarmRecord {
    /// The canonical job key (verified against the re-canonicalized
    /// spec at decode time).
    pub key: u64,
    /// The canonical instance the result answers.
    pub instance: VariantInstance,
    /// The result-relevant engine config.
    pub config: EngineConfig,
    /// The stored run.
    pub run: Arc<SpannerRun>,
}

/// Where a key's latest record lives in the log.
#[derive(Clone, Copy)]
struct IndexEntry {
    /// Offset of the record's length prefix.
    offset: u64,
    /// Payload length (so a lookup reads exactly one record).
    payload_len: u32,
}

/// An open result store: the log file plus an in-memory key index.
/// All record payloads stay on disk; memory is O(records) index
/// entries, not O(bytes).
pub(crate) struct Store {
    file: File,
    path: PathBuf,
    /// The advisory lock file this store holds; removed on drop.
    lock_path: PathBuf,
    /// Fault-injection points threaded through appends and reads.
    fault: Arc<FaultInjector>,
    /// `key -> latest record` for point lookups.
    index: HashMap<u64, IndexEntry>,
    /// Keys in append order (latest position per key), for warm
    /// replay: later entries are more recent and should survive LRU
    /// eviction during refill.
    order: Vec<u64>,
    /// End of the last well-formed record; appends land here.
    end: u64,
    /// Corrupt or unreadable records dropped while opening.
    dropped: u64,
}

/// Whether `pid` names a live process. Probed via procfs; where
/// procfs is absent the holder is assumed alive — never risking a
/// second writer is worth a manual `rm` after an unclean shutdown on
/// such platforms.
fn pid_alive(pid: u32) -> bool {
    let proc_root = Path::new("/proc");
    if !proc_root.exists() {
        return true;
    }
    proc_root.join(pid.to_string()).exists()
}

/// Takes the advisory single-writer lock: creates `path` exclusively
/// with this process's PID inside. A lock held by a live process is a
/// hard error naming that PID; a lock whose owner is dead (or whose
/// contents are garbage) is reclaimed once.
fn acquire_lock(path: &Path) -> std::io::Result<()> {
    for attempt in 0..2 {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut f) => {
                // The PID is diagnostic; a lock that exists but cannot
                // be written still excludes other writers.
                let _ = writeln!(f, "{}", std::process::id());
                let _ = f.flush();
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists && attempt == 0 => {
                let holder = std::fs::read_to_string(path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                match holder {
                    Some(pid) if pid_alive(pid) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WouldBlock,
                            format!(
                                "store is locked by pid {pid} ({}); \
                                 a store directory has one writer at a time — \
                                 remove the lock file only if that process is gone",
                                path.display()
                            ),
                        ));
                    }
                    _ => {
                        // Dead owner or unreadable contents: the lock
                        // is stale. Reclaim it and retry once (a loser
                        // of the reclaim race sees AlreadyExists again
                        // on attempt 1 and errors out below).
                        let lock = path.display();
                        obs::warn(
                            "dsa-service",
                            "reclaiming stale store lock",
                            &[("path", &lock), ("holder", &format_args!("{holder:?}"))],
                        );
                        std::fs::remove_file(path)?;
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::WouldBlock,
        format!(
            "store lock {} was re-taken while reclaiming it",
            path.display()
        ),
    ))
}

impl Store {
    /// Opens (creating if necessary) the store in `dir` with fault
    /// injection disabled. See [`Store::open_with`].
    #[cfg(test)]
    pub fn open(dir: &Path) -> std::io::Result<Store> {
        Store::open_with(dir, Arc::new(FaultInjector::disabled()))
    }

    /// Opens (creating if necessary) the store in `dir`, recovering
    /// from a corrupt or truncated log as described in the module
    /// docs, and threading `fault` through subsequent IO. Takes the
    /// single-writer lock first: a directory already owned by a live
    /// process fails fast. IO errors other than corruption — an
    /// unwritable directory, say — are real errors and fail the open.
    pub fn open_with(dir: &Path, fault: Arc<FaultInjector>) -> std::io::Result<Store> {
        std::fs::create_dir_all(dir)?;
        let lock_path = dir.join(LOCK_FILE);
        acquire_lock(&lock_path)?;
        let path = dir.join(LOG_FILE);
        let file = match OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
        {
            Ok(file) => file,
            Err(e) => {
                // The lock was taken but no Store exists to drop it.
                let _ = std::fs::remove_file(&lock_path);
                return Err(e);
            }
        };
        // From here on `store` owns the lock: any early `?` return
        // drops it, which removes the lock file.
        let mut store = Store {
            file,
            path,
            lock_path,
            fault,
            index: HashMap::new(),
            order: Vec::new(),
            end: MAGIC.len() as u64,
            dropped: 0,
        };
        let file_len = store.file.metadata()?.len();

        if file_len == 0 {
            store.file.write_all(MAGIC)?;
            store.file.flush()?;
            return Ok(store);
        }
        // The walk streams the log (peak memory is one record, not the
        // file): a buffered reader over a cloned handle, with explicit
        // positions so recovery can truncate precisely.
        let mut reader = std::io::BufReader::new(store.file.try_clone()?);
        let mut magic = [0u8; 8];
        let magic_ok = file_len >= MAGIC.len() as u64 && {
            reader.read_exact(&mut magic)?;
            &magic == MAGIC
        };
        if !magic_ok {
            // Foreign or garbage header: nothing in the file can be
            // trusted. Count it as one dropped record and start fresh.
            drop(reader);
            store.dropped += 1;
            store.file.set_len(0)?;
            store.file.seek(SeekFrom::Start(0))?;
            store.file.write_all(MAGIC)?;
            store.file.flush()?;
            return Ok(store);
        }

        // Walk the records, remembering the last well-formed boundary.
        let mut pos = MAGIC.len() as u64;
        let mut payload = Vec::new();
        loop {
            let remaining = file_len - pos;
            if remaining == 0 {
                break;
            }
            if remaining < 4 {
                store.dropped += 1; // trailing fragment of a length prefix
                break;
            }
            let mut len_bytes = [0u8; 4];
            reader.read_exact(&mut len_bytes)?;
            let payload_len = u32::from_be_bytes(len_bytes) as usize;
            if payload_len > MAX_PAYLOAD || remaining < 4 + payload_len as u64 + 8 {
                // A garbage length prefix and a truncated tail are
                // indistinguishable; either way the walk cannot find
                // another trustworthy boundary.
                store.dropped += 1;
                break;
            }
            payload.resize(payload_len, 0);
            reader.read_exact(&mut payload)?;
            let mut sum_bytes = [0u8; 8];
            reader.read_exact(&mut sum_bytes)?;
            let stored_sum = u64::from_be_bytes(sum_bytes);
            let offset = pos;
            pos += 4 + payload_len as u64 + 8;
            if checksum(&payload) != stored_sum || decode_payload(&payload).is_none() {
                // The framing held (the next record starts right
                // after), only this record's bytes are bad: skip it.
                store.dropped += 1;
                store.end = pos;
                continue;
            }
            let key = u64::from_be_bytes(payload[..8].try_into().expect("8 bytes"));
            store.note_record(
                key,
                IndexEntry {
                    offset,
                    payload_len: payload_len as u32, // dsa-lint: allow(DSA-C001, reason="replay path, payload_len already bounded by the MAX_PAYLOAD read check")
                },
            );
            store.end = pos;
        }
        drop(reader);
        // Drop any unparseable tail so the next append starts on a
        // clean frame.
        if store.end < file_len {
            store.file.set_len(store.end)?;
        }
        Ok(store)
    }

    /// Whether the index holds a record for `key` — cheap (no IO, no
    /// serialization), so callers can skip rendering verification
    /// bytes on a guaranteed miss.
    pub fn contains(&self, key: u64) -> bool {
        self.index.contains_key(&key)
    }

    fn note_record(&mut self, key: u64, entry: IndexEntry) {
        if self.index.insert(key, entry).is_some() {
            // Re-appended key (collision overwrite): its recency moves
            // to the new position.
            self.order.retain(|&k| k != key);
        }
        self.order.push(key);
    }

    /// Number of distinct keys the store can serve.
    pub fn records(&self) -> u64 {
        self.index.len() as u64
    }

    /// Corrupt records dropped while opening.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Looks up `key`, serving the stored run only when the record's
    /// verification bytes equal `verification` — the restart-surviving
    /// form of the service's hash-collision guard. Any mismatch, read
    /// failure, or decode failure is a miss.
    pub fn get(&mut self, key: u64, verification: &[u8]) -> Option<SpannerRun> {
        if self.fault.fire("store.read.err") {
            return None; // an unreadable record is a miss, never an error
        }
        let entry = *self.index.get(&key)?;
        let payload = self.read_payload(entry)?;
        let record = decode_payload(&payload)?;
        if record.spec != verification {
            return None;
        }
        Some(record.run)
    }

    /// Appends one completed run. The caller guarantees the run is
    /// complete (never cancelled). On error the record is not
    /// persisted: a real write failure leaves the log truncated back
    /// to its previous end (best effort) so the tail stays
    /// well-formed, and the error is returned for the caller to act
    /// on — the service demotes itself to memory-only caching.
    pub fn append(
        &mut self,
        key: u64,
        verification: &[u8],
        run: &SpannerRun,
    ) -> std::io::Result<()> {
        debug_assert!(!run.cancelled, "aborted runs must never be persisted");
        if let Some(e) = self.fault.io_error("store.append.err") {
            return Err(e); // ENOSPC-shaped: fails before touching disk
        }
        let mut payload = Vec::with_capacity(verification.len() + 64);
        payload.extend_from_slice(&key.to_be_bytes());
        payload.extend_from_slice(&(verification.len() as u32).to_be_bytes()); // dsa-lint: allow(DSA-C001, reason="a wrapping length implies payload > MAX_PAYLOAD, skipped below before disk")
        payload.extend_from_slice(verification);
        let run_bytes = encode_run(run);
        payload.extend_from_slice(&(run_bytes.len() as u32).to_be_bytes()); // dsa-lint: allow(DSA-C001, reason="a wrapping length implies payload > MAX_PAYLOAD, skipped below before disk")
        payload.extend_from_slice(&run_bytes);
        if payload.len() > MAX_PAYLOAD {
            return Ok(()); // cannot be replayed within the read bound; skip
        }
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes()); // dsa-lint: allow(DSA-C001, reason="payload.len() <= MAX_PAYLOAD, far below u32::MAX, checked above")
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&checksum(&payload).to_be_bytes());
        if self.fault.fire("store.append.short") {
            // Crash-shaped: half the frame reaches disk and stays
            // there (no truncation — the next open's recovery walk has
            // to cope with the ragged tail, exactly as after a real
            // crash).
            let cut = frame.len() / 2;
            let _ = self.file.seek(SeekFrom::Start(self.end));
            let _ = self.file.write_all(&frame[..cut]);
            let _ = self.file.flush();
            return Err(std::io::Error::other("injected fault: store.append.short"));
        }
        if self.fault.fire("store.append.corrupt") {
            // Silent-rot-shaped: the write "succeeds" but a checksum
            // byte is flipped. Reads catch it (checksum mismatch =>
            // miss) and the next open counts it dropped; wrong bytes
            // are never served.
            let last = frame.len() - 1;
            frame[last] ^= 0xff;
        }
        let write = (|| -> std::io::Result<()> {
            self.file.seek(SeekFrom::Start(self.end))?;
            self.file.write_all(&frame)?;
            self.file.flush()
        })();
        match write {
            Ok(()) => {
                self.note_record(
                    key,
                    IndexEntry {
                        offset: self.end,
                        payload_len: payload.len() as u32, // dsa-lint: allow(DSA-C001, reason="payload.len() <= MAX_PAYLOAD, far below u32::MAX, checked above")
                    },
                );
                self.end += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Best effort: drop any partial frame.
                let _ = self.file.set_len(self.end);
                Err(std::io::Error::new(
                    e.kind(),
                    format!("{}: {e}", self.path.display()),
                ))
            }
        }
    }

    /// Decodes the most recent `limit` records into warm-cache entries
    /// (oldest first, so inserting them in order leaves the newest
    /// ones freshest in an LRU). Records whose spec no longer
    /// canonicalizes to their stored key are skipped, never served.
    pub fn warm_records(&mut self, limit: usize) -> Vec<WarmRecord> {
        let skip = self.order.len().saturating_sub(limit);
        let keys: Vec<u64> = self.order[skip..].to_vec();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let Some(entry) = self.index.get(&key).copied() else {
                continue;
            };
            let Some(payload) = self.read_payload(entry) else {
                continue;
            };
            let Some(record) = decode_payload(&payload) else {
                continue;
            };
            // Re-canonicalize the stored spec instead of trusting it:
            // this re-runs validation and proves key and identity
            // still agree (a record that fails is skipped, exactly
            // like a corrupt one).
            let Ok(wire::Request::Run(spec)) = wire::decode_request(&record.spec) else {
                continue;
            };
            let Ok(job) = canonicalize_job(&spec) else {
                continue;
            };
            if job.key != key {
                continue;
            }
            out.push(WarmRecord {
                key,
                instance: job.instance,
                config: job.config,
                run: Arc::new(record.run),
            });
        }
        out
    }

    fn read_payload(&mut self, entry: IndexEntry) -> Option<Vec<u8>> {
        let plen = usize::try_from(entry.payload_len).ok()?;
        let mut buf = vec![0u8; plen + 8];
        self.file.seek(SeekFrom::Start(entry.offset + 4)).ok()?;
        self.file.read_exact(&mut buf).ok()?;
        let stored_sum = u64::from_be_bytes(buf[plen..].try_into().ok()?);
        if checksum(&buf[..plen]) != stored_sum {
            return None;
        }
        buf.truncate(plen);
        Some(buf)
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Release the single-writer lock. Best effort: a failure here
        // leaves a stale lock that the next open reclaims (our PID is
        // gone by then, or the operator removes it by hand).
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(b"dsa-store-record-v1");
    h.write_bytes(payload);
    h.finish()
}

/// A payload split into its parts (spec bytes still encoded, run
/// decoded).
struct Record {
    spec: Vec<u8>,
    run: SpannerRun,
}

/// Decodes a checksum-verified payload; `None` means the internal
/// structure is inconsistent (the record is treated as corrupt).
fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut r = Cursor { buf: payload };
    let _key = r.u64()?;
    let spec_len = r.u32()? as usize; // u32 -> usize: widening on every supported target
    let spec = r.bytes(spec_len)?.to_vec();
    let run_len = r.u32()? as usize; // u32 -> usize: widening on every supported target
    if r.buf.len() != run_len {
        return None; // trailing junk (or shortfall) inside the frame
    }
    let run = decode_run(r.buf)?;
    Some(Record { spec, run })
}

/// Flat big-endian encoding of a completed [`SpannerRun`].
fn encode_run(run: &SpannerRun) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 8 * run.spanner.len() + 32 * run.stats.len());
    out.extend_from_slice(&run.iterations.to_be_bytes());
    out.push(u8::from(run.converged));
    out.extend_from_slice(&run.star_fallbacks.to_be_bytes());
    out.extend_from_slice(&(run.spanner.universe() as u64).to_be_bytes());
    out.extend_from_slice(&(run.spanner.len() as u64).to_be_bytes());
    for e in run.spanner.iter() {
        out.extend_from_slice(&(e as u64).to_be_bytes());
    }
    out.extend_from_slice(&(run.stats.len() as u64).to_be_bytes());
    for s in &run.stats {
        for v in [s.candidates, s.accepted, s.added_edges, s.uncovered] {
            out.extend_from_slice(&(v as u64).to_be_bytes());
        }
    }
    out
}

fn decode_run(bytes: &[u8]) -> Option<SpannerRun> {
    let mut r = Cursor { buf: bytes };
    let iterations = r.u64()?;
    let converged = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let star_fallbacks = r.u64()?;
    let universe = usize::try_from(r.u64()?).ok()?;
    // `EdgeSet::new` allocates a bit per universe id; bound it by the
    // record size (one stored id is 8 bytes, and a graph with m edges
    // encodes in far more than m/64 bytes of spec) so a hostile edit
    // cannot demand an absurd allocation.
    if universe > bytes.len().saturating_mul(64) + 1024 {
        return None;
    }
    let count = usize::try_from(r.u64()?).ok()?;
    if count > r.buf.len() / 8 {
        return None;
    }
    let mut spanner = EdgeSet::new(universe);
    for _ in 0..count {
        let e = usize::try_from(r.u64()?).ok()?;
        if e >= universe {
            return None;
        }
        spanner.insert(e);
    }
    let stats_len = usize::try_from(r.u64()?).ok()?;
    if stats_len > r.buf.len() / 32 {
        return None;
    }
    let mut stats = Vec::with_capacity(stats_len);
    for _ in 0..stats_len {
        stats.push(IterationStats {
            candidates: usize::try_from(r.u64()?).ok()?,
            accepted: usize::try_from(r.u64()?).ok()?,
            added_edges: usize::try_from(r.u64()?).ok()?,
            uncovered: usize::try_from(r.u64()?).ok()?,
        });
    }
    if !r.buf.is_empty() {
        return None;
    }
    Some(SpannerRun {
        spanner,
        iterations,
        converged,
        cancelled: false,
        star_fallbacks,
        stats,
        // Timing traces are observational and never persisted; a
        // decoded run is identical to a fresh untraced run.
        trace: None,
    })
}

/// A bounds-checked reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl Cursor<'_> {
    fn bytes(&mut self, n: usize) -> Option<&[u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_core::dist::run_variant;
    use dsa_graphs::Graph;

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsa-store-unit-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_job(seed: u64) -> (u64, Vec<u8>, SpannerRun) {
        let spec = JobSpec::new(
            VariantInstance::Undirected {
                graph: Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 2), (1, 4)]),
            },
            seed,
        );
        let job = canonicalize_job(&spec).unwrap();
        let run = run_variant(&job.instance, &job.config);
        let verification = verification_bytes(&job.instance, &job.config);
        (job.key, verification, run)
    }

    fn runs_equal(a: &SpannerRun, b: &SpannerRun) -> bool {
        a.spanner == b.spanner
            && a.iterations == b.iterations
            && a.converged == b.converged
            && a.star_fallbacks == b.star_fallbacks
            && a.stats.len() == b.stats.len()
    }

    #[test]
    fn run_encoding_roundtrips() {
        let (_, _, run) = sample_job(3);
        let back = decode_run(&encode_run(&run)).expect("decodes");
        assert!(runs_equal(&run, &back));
        assert_eq!(back.stats[0].candidates, run.stats[0].candidates);
        assert_eq!(back.stats[0].uncovered, run.stats[0].uncovered);
        assert!(!back.cancelled);
    }

    #[test]
    fn append_then_reopen_serves_verified_records() {
        let dir = test_dir("reopen");
        let (key, verification, run) = sample_job(7);
        {
            let mut store = Store::open(&dir).unwrap();
            assert_eq!(store.records(), 0);
            store.append(key, &verification, &run).unwrap();
            assert_eq!(store.records(), 1);
            let hit = store.get(key, &verification).expect("hit");
            assert!(runs_equal(&hit, &run));
        }
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.records(), 1);
        assert_eq!(store.dropped(), 0);
        let hit = store.get(key, &verification).expect("warm hit");
        assert!(runs_equal(&hit, &run));
        // The collision guard: same key, different identity bytes.
        assert!(store.get(key, b"someone else's job").is_none());
        assert!(store.get(key ^ 1, &verification).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_records_decode_and_match_keys() {
        let dir = test_dir("warm");
        let (k1, v1, r1) = sample_job(1);
        let (k2, v2, r2) = sample_job(2);
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(k1, &v1, &r1).unwrap();
            store.append(k2, &v2, &r2).unwrap();
        }
        let mut store = Store::open(&dir).unwrap();
        let warm = store.warm_records(usize::MAX);
        assert_eq!(warm.len(), 2);
        assert_eq!(warm[0].key, k1);
        assert_eq!(warm[1].key, k2);
        assert!(runs_equal(&warm[0].run, &r1));
        assert!(runs_equal(&warm[1].run, &r2));
        // A limit keeps the most recent records.
        assert_eq!(store.warm_records(1)[0].key, k2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped_and_log_recovers() {
        let dir = test_dir("truncated");
        let (k1, v1, r1) = sample_job(1);
        let (k2, v2, r2) = sample_job(2);
        let full_len;
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(k1, &v1, &r1).unwrap();
            full_len = store.end;
            store.append(k2, &v2, &r2).unwrap();
        }
        // Cut the second record short (mid-payload).
        let path = dir.join(LOG_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..full_len as usize + 10]).unwrap();
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.records(), 1);
        assert_eq!(store.dropped(), 1);
        assert!(store.get(k1, &v1).is_some());
        assert!(store.get(k2, &v2).is_none());
        // The tail was truncated to a clean boundary: appending and
        // reopening works.
        store.append(k2, &v2, &r2).unwrap();
        drop(store);
        let mut store = Store::open(&dir).unwrap();
        assert_eq!((store.records(), store.dropped()), (2, 0));
        assert!(store.get(k2, &v2).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_checksum_skips_only_that_record() {
        let dir = test_dir("checksum");
        let (k1, v1, r1) = sample_job(1);
        let (k2, v2, r2) = sample_job(2);
        let first_end;
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(k1, &v1, &r1).unwrap();
            first_end = store.end;
            store.append(k2, &v2, &r2).unwrap();
        }
        // Flip a byte of the FIRST record's checksum; the second
        // record must survive the skip.
        let path = dir.join(LOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let sum_pos = first_end as usize - 1;
        bytes[sum_pos] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.records(), 1);
        assert_eq!(store.dropped(), 1);
        assert!(store.get(k1, &v1).is_none(), "corrupt record must miss");
        assert!(store.get(k2, &v2).is_some(), "later record must survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_header_starts_fresh() {
        let dir = test_dir("header");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(LOG_FILE), b"not a store at all").unwrap();
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.records(), 0);
        assert_eq!(store.dropped(), 1);
        // And the rewritten file is a working store.
        let (k, v, r) = sample_job(5);
        store.append(k, &v, &r).unwrap();
        drop(store);
        let mut store = Store::open(&dir).unwrap();
        assert_eq!((store.records(), store.dropped()), (1, 0));
        assert!(store.get(k, &v).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_length_prefix_truncates_to_last_good_record() {
        let dir = test_dir("length");
        let (k1, v1, r1) = sample_job(1);
        {
            let mut store = Store::open(&dir).unwrap();
            store.append(k1, &v1, &r1).unwrap();
        }
        // Append a frame whose length prefix claims more than the cap.
        let path = dir.join(LOG_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        let mut store = Store::open(&dir).unwrap();
        assert_eq!((store.records(), store.dropped()), (1, 1));
        assert!(store.get(k1, &v1).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_writer_fails_fast_and_stale_locks_are_reclaimed() {
        let dir = test_dir("lock");
        let store = Store::open(&dir).unwrap();
        // A live lock (our own PID) excludes a second writer, and the
        // error names the holder.
        let Err(err) = Store::open(&dir).map(|_| ()) else {
            panic!("second open must fail");
        };
        let msg = err.to_string();
        assert!(msg.contains("locked by pid"), "got: {msg}");
        assert!(msg.contains(&std::process::id().to_string()), "got: {msg}");
        // Drop releases the lock; the next open succeeds.
        drop(store);
        assert!(!dir.join(LOCK_FILE).exists());
        let store = Store::open(&dir).unwrap();
        drop(store);
        // A stale lock (dead PID, or garbage contents) is reclaimed.
        std::fs::write(dir.join(LOCK_FILE), b"999999999\n").unwrap();
        let store = Store::open(&dir).unwrap();
        drop(store);
        std::fs::write(dir.join(LOCK_FILE), b"not a pid\n").unwrap();
        let store = Store::open(&dir).unwrap();
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_append_faults_fail_without_corrupting_the_log() {
        use dsa_runtime::FaultPlan;
        let dir = test_dir("fault-append");
        let (k, v, r) = sample_job(1);
        {
            // Every append fails up front; the log stays clean.
            let plan = FaultPlan::parse("seed=1;store.append.err=1.0").unwrap();
            let fault = Arc::new(FaultInjector::new(plan));
            let mut store = Store::open_with(&dir, fault).unwrap();
            assert!(store.append(k, &v, &r).is_err());
            assert_eq!(store.records(), 0);
        }
        {
            // A short write leaves a ragged tail on disk...
            let plan = FaultPlan::parse("seed=1;store.append.short=1.0").unwrap();
            let fault = Arc::new(FaultInjector::new(plan));
            let mut store = Store::open_with(&dir, fault).unwrap();
            assert!(store.append(k, &v, &r).is_err());
        }
        {
            // ...which the next open recovers from, exactly like a
            // crash mid-append.
            let mut store = Store::open(&dir).unwrap();
            assert_eq!(store.records(), 0);
            assert_eq!(store.dropped(), 1);
            store.append(k, &v, &r).unwrap();
            assert!(store.get(k, &v).is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_is_caught_by_reads_never_served() {
        use dsa_runtime::FaultPlan;
        let dir = test_dir("fault-corrupt");
        let (k, v, r) = sample_job(1);
        {
            let plan = FaultPlan::parse("seed=1;store.append.corrupt=1.0").unwrap();
            let fault = Arc::new(FaultInjector::new(plan));
            let mut store = Store::open_with(&dir, fault).unwrap();
            // The corrupted append reports success (silent rot)...
            store.append(k, &v, &r).unwrap();
            // ...but the point read's checksum catches it: a miss.
            assert!(store.get(k, &v).is_none());
        }
        let mut store = Store::open(&dir).unwrap();
        assert_eq!((store.records(), store.dropped()), (0, 1));
        // Injected read faults are also just misses.
        store.append(k, &v, &r).unwrap();
        drop(store);
        let plan = FaultPlan::parse("seed=1;store.read.err=1.0").unwrap();
        let fault = Arc::new(FaultInjector::new(plan));
        let mut store = Store::open_with(&dir, fault).unwrap();
        assert_eq!(store.records(), 1);
        assert!(store.get(k, &v).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewritten_key_prefers_the_latest_record() {
        let dir = test_dir("rewrite");
        let (k, v, r) = sample_job(1);
        // A different identity colliding on the key would overwrite;
        // simulate by appending the same key twice (second wins).
        let mut store = Store::open(&dir).unwrap();
        store.append(k, b"old identity", &r).unwrap();
        store.append(k, &v, &r).unwrap();
        assert_eq!(store.records(), 1);
        assert!(store.get(k, &v).is_some());
        assert!(store.get(k, b"old identity").is_none());
        drop(store);
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.records(), 1);
        assert!(store.get(k, &v).is_some());
        assert_eq!(store.warm_records(usize::MAX).len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
