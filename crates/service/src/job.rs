//! Job specifications, canonicalization, and responses.
//!
//! A [`JobSpec`] is one spanner-computation request: a
//! [`VariantInstance`] in whatever edge order the caller submitted,
//! plus the [`EngineConfig`] (seed and ablation toggles) and an
//! optional per-job timeout. Before execution the service rewrites the
//! spec into *canonical* form — the graph rebuilt with edges in
//! [`dsa_graphs::canon`] order, weights and client/server sets
//! permuted to match — and derives the [`CanonicalJob::key`] hash the
//! cache, the in-flight coalescing table, *and the persistent result
//! store* ([`crate::store`]) are keyed by. Two submissions of the same
//! edge set in different orders therefore collapse to one engine run
//! — in this process lifetime or a previous one — and each caller
//! still receives spanner edge ids in *its own* id space via
//! [`JobResponse`]. The key is a hash, never an identity: every
//! consumer (LRU, coalescing map, disk store) re-verifies the full
//! canonical instance before serving across it.

use std::sync::Arc;
use std::time::Duration;

use dsa_core::dist::{EngineConfig, SpannerRun, VariantInstance, VariantKind};
use dsa_graphs::canon::{self, Fnv1a};
use dsa_graphs::{EdgeId, EdgeSet, EdgeWeights};

/// One spanner-computation request.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The problem instance, in the caller's edge order.
    pub instance: VariantInstance,
    /// Engine seed and ablation toggles. The seed, denominator,
    /// toggles, and iteration cap are result-relevant and thus part of
    /// the cache key; `num_shards` and `cancel` are execution policy
    /// (the engine's result is bit-identical for every shard count)
    /// and deliberately excluded, so jobs differing only in them
    /// dedup.
    pub config: EngineConfig,
    /// Optional deadline for [`crate::JobHandle::wait`]; `None` falls
    /// back to the service default. The timeout does not affect the
    /// computed result and is not part of the cache key.
    pub timeout: Option<Duration>,
}

impl JobSpec {
    /// A spec with the paper's engine defaults and the given seed.
    pub fn new(instance: VariantInstance, seed: u64) -> Self {
        JobSpec {
            instance,
            config: EngineConfig::seeded(seed),
            timeout: None,
        }
    }
}

/// A [`JobSpec`] rewritten into canonical edge order, plus what it
/// takes to answer the original caller.
pub(crate) struct CanonicalJob {
    /// Cache/coalescing key: hash of the canonical instance + config.
    pub key: u64,
    /// The instance with edges in canonical order.
    pub instance: VariantInstance,
    /// Result-relevant engine configuration.
    pub config: EngineConfig,
    /// `from_canonical[canonical_edge_id] = submitted_edge_id`.
    pub from_canonical: Vec<EdgeId>,
}

/// Why a job failed. Execution itself cannot fail (the engine is
/// total); failures are rejections, cancellations, deadlines, and —
/// for remote submissions — transport problems.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The spec failed validation before being queued.
    Invalid(String),
    /// The handle was cancelled before a result was available.
    Cancelled,
    /// The deadline passed before a result was available. The engine
    /// run, if already started, still completes and populates the
    /// cache; only this wait gives up.
    TimedOut,
    /// The service shed the job at admission (queue depth or byte
    /// budget exhausted). Safe to retry after the hinted delay:
    /// responses are byte-deterministic, so a retried job returns
    /// exactly what the shed attempt would have.
    Busy {
        /// Suggested client wait before retrying, in milliseconds
        /// (derived from the observed p95 service time and backlog).
        retry_after_ms: u64,
    },
    /// A wire-protocol violation (client side).
    Protocol(String),
    /// A transport error (client side).
    Io(String),
    /// The server rejected or failed the request.
    Remote(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Invalid(m) => write!(f, "invalid job: {m}"),
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::TimedOut => write!(f, "job timed out"),
            JobError::Busy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms}ms")
            }
            JobError::Protocol(m) => write!(f, "protocol error: {m}"),
            JobError::Io(m) => write!(f, "transport error: {m}"),
            JobError::Remote(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The answer to one [`JobSpec`], in the caller's edge-id space.
///
/// Deliberately free of serving-side incidentals (no cached/coalesced
/// flag, no timing): the same spec always yields the same response
/// bytes whether it was computed cold, coalesced, or served from
/// cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobResponse {
    /// The canonical job key (also the cache key).
    pub key: u64,
    /// Which variant ran.
    pub kind: VariantKind,
    /// Spanner edge ids in the *submitted* graph's id space, ascending.
    pub spanner: Vec<EdgeId>,
    /// Engine iterations executed.
    pub iterations: u64,
    /// LOCAL protocol rounds this run corresponds to
    /// ([`SpannerRun::local_rounds`]).
    pub local_rounds: u64,
    /// Whether every target item was covered.
    pub converged: bool,
    /// Claim-4.4 fallback count (0 in every observed run).
    pub star_fallbacks: u64,
}

impl JobResponse {
    /// Assembles the caller-facing response from a canonical-space run.
    pub(crate) fn from_run(
        key: u64,
        kind: VariantKind,
        run: &Arc<SpannerRun>,
        from_canonical: &[EdgeId],
    ) -> Self {
        let mut spanner: Vec<EdgeId> = run.spanner.iter().map(|e| from_canonical[e]).collect();
        spanner.sort_unstable();
        JobResponse {
            key,
            kind,
            spanner,
            iterations: run.iterations,
            local_rounds: run.local_rounds(),
            converged: run.converged,
            star_fallbacks: run.star_fallbacks,
        }
    }
}

/// Permutes an id-indexed edge set into canonical id space.
fn remap_set(set: &EdgeSet, to_canonical: &[EdgeId]) -> EdgeSet {
    EdgeSet::from_iter(set.universe(), set.iter().map(|e| to_canonical[e]))
}

/// Validates `spec` and rewrites it into canonical form.
pub(crate) fn canonicalize_job(spec: &JobSpec) -> Result<CanonicalJob, JobError> {
    spec.instance.validate().map_err(JobError::Invalid)?;
    if spec.config.accept_denominator == 0 {
        return Err(JobError::Invalid(
            "accept denominator must be positive".into(),
        ));
    }

    let mut hasher = Fnv1a::new();
    hasher.write_bytes(b"dsa-service-job-v1");
    let (instance, from_canonical) = match &spec.instance {
        VariantInstance::Undirected { graph } => {
            let c = canon::canonicalize(graph);
            hasher.write_u64(canon::graph_hash(&c.graph));
            (
                VariantInstance::Undirected { graph: c.graph },
                c.from_canonical,
            )
        }
        VariantInstance::Directed { graph } => {
            let c = canon::canonicalize_digraph(graph);
            hasher.write_u64(canon::digraph_hash(&c.graph));
            (
                VariantInstance::Directed { graph: c.graph },
                c.from_canonical,
            )
        }
        VariantInstance::Weighted { graph, weights } => {
            let c = canon::canonicalize(graph);
            let weights = EdgeWeights::from_fn(graph.num_edges(), |canonical| {
                weights.get(c.from_canonical[canonical])
            });
            hasher.write_u64(canon::weighted_graph_hash(&c.graph, &weights));
            (
                VariantInstance::Weighted {
                    graph: c.graph,
                    weights,
                },
                c.from_canonical,
            )
        }
        VariantInstance::ClientServer {
            graph,
            clients,
            servers,
        } => {
            let c = canon::canonicalize(graph);
            let clients = remap_set(clients, &c.to_canonical);
            let servers = remap_set(servers, &c.to_canonical);
            hasher.write_u64(canon::graph_hash(&c.graph));
            for set in [&clients, &servers] {
                hasher.write_usize(set.len());
                for e in set.iter() {
                    hasher.write_usize(e);
                }
            }
            (
                VariantInstance::ClientServer {
                    graph: c.graph,
                    clients,
                    servers,
                },
                c.from_canonical,
            )
        }
    };

    // Variant discriminant and result-relevant engine configuration
    // (num_shards and cancel stay out: execution policy, not result).
    hasher.write_u64(match instance.kind() {
        VariantKind::Undirected => 1,
        VariantKind::Directed => 2,
        VariantKind::Weighted => 3,
        VariantKind::ClientServer => 4,
    });
    hasher.write_u64(spec.config.seed);
    hasher.write_u64(spec.config.accept_denominator);
    hasher.write_u64(u64::from(spec.config.monotone_stars));
    hasher.write_u64(u64::from(spec.config.round_densities));
    hasher.write_u64(spec.config.max_iterations);

    Ok(CanonicalJob {
        key: hasher.finish(),
        instance,
        config: spec.config.clone(),
        from_canonical,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsa_graphs::Graph;

    fn spec_of(edges: &[(usize, usize)], seed: u64) -> JobSpec {
        JobSpec::new(
            VariantInstance::Undirected {
                graph: Graph::from_edges(5, edges.iter().copied()),
            },
            seed,
        )
    }

    #[test]
    fn key_ignores_submission_order() {
        let a = canonicalize_job(&spec_of(&[(0, 1), (1, 2), (2, 3), (0, 4)], 3)).unwrap();
        let b = canonicalize_job(&spec_of(&[(0, 4), (2, 1), (3, 2), (1, 0)], 3)).unwrap();
        assert_eq!(a.key, b.key);
        let other_seed = canonicalize_job(&spec_of(&[(0, 1), (1, 2), (2, 3), (0, 4)], 4)).unwrap();
        assert_ne!(a.key, other_seed.key);
        let other_graph = canonicalize_job(&spec_of(&[(0, 1), (1, 2), (2, 3), (1, 4)], 3)).unwrap();
        assert_ne!(a.key, other_graph.key);
    }

    #[test]
    fn key_sees_ablation_toggles() {
        let base = spec_of(&[(0, 1), (1, 2)], 0);
        let a = canonicalize_job(&base).unwrap();
        let mut ablated = base.clone();
        ablated.config.monotone_stars = false;
        assert_ne!(a.key, canonicalize_job(&ablated).unwrap().key);
        let mut denom = base.clone();
        denom.config.accept_denominator = 4;
        assert_ne!(a.key, canonicalize_job(&denom).unwrap().key);
    }

    #[test]
    fn shards_and_cancel_are_not_result_relevant() {
        use std::sync::atomic::AtomicBool;
        let base = spec_of(&[(0, 1), (1, 2)], 0);
        let mut tuned = base.clone();
        tuned.config.num_shards = 8;
        tuned.config.cancel = Some(Arc::new(AtomicBool::new(false)));
        assert_eq!(
            canonicalize_job(&base).unwrap().key,
            canonicalize_job(&tuned).unwrap().key,
            "execution policy must not split the cache key space"
        );
    }

    #[test]
    fn timeout_is_not_result_relevant() {
        let mut a = spec_of(&[(0, 1), (1, 2)], 0);
        a.timeout = Some(Duration::from_secs(1));
        let b = spec_of(&[(0, 1), (1, 2)], 0);
        assert_eq!(
            canonicalize_job(&a).unwrap().key,
            canonicalize_job(&b).unwrap().key
        );
    }

    #[test]
    fn from_canonical_translates_ids() {
        let spec = spec_of(&[(2, 3), (0, 1), (1, 2)], 0);
        let job = canonicalize_job(&spec).unwrap();
        let VariantInstance::Undirected { graph: c } = &job.instance else {
            panic!("kind changed");
        };
        let VariantInstance::Undirected { graph: g } = &spec.instance else {
            unreachable!();
        };
        for canonical in 0..c.num_edges() {
            assert_eq!(
                c.endpoints(canonical),
                g.endpoints(job.from_canonical[canonical])
            );
        }
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let bad = JobSpec::new(
            VariantInstance::Weighted {
                graph: g,
                weights: EdgeWeights::constant(1, 1),
            },
            0,
        );
        assert!(matches!(canonicalize_job(&bad), Err(JobError::Invalid(_))));
    }
}
