//! The HTTP/JSON facade over [`Service`] — same cache, worker pool,
//! and coalescing map as the TCP wire frontend, reachable by browsers,
//! `curl`, and standard load-testing tools.
//!
//! Like [`crate::wire`], the protocol layer is hand-rolled (the build
//! environment is offline): a deliberately small HTTP/1.1 subset —
//! request line + headers + `Content-Length` bodies, keep-alive,
//! `Expect: 100-continue` — with every request and response body in
//! JSON via [`dsa_runtime::json`].
//!
//! # Routes
//!
//! | Method & path                  | Body              | Response                     |
//! |--------------------------------|-------------------|------------------------------|
//! | `POST /v1/jobs`                | job spec (JSON)   | job result (JSON)            |
//! | `PUT /v1/graphs/{id}`          | graph spec (JSON) | created graph (201/200)      |
//! | `PATCH /v1/graphs/{id}`        | edge deltas (JSON)| applied patch + classes      |
//! | `GET /v1/graphs/{id}`          | —                 | metadata + maintenance stats |
//! | `GET /v1/graphs/{id}/spanner`  | —                 | the maintained spanner       |
//! | `DELETE /v1/graphs/{id}`       | —                 | `{"id":...,"deleted":true}`  |
//! | `GET /v1/metrics`              | —                 | coherent counters + p50/p95  |
//! | `GET /healthz`                 | —                 | `{"status":"ok"}`            |
//!
//! The graph routes are the resource-oriented face of
//! [`crate::graphs`]: a `PUT` body is a job spec without `timeout_ms`
//! (and single-shard), a `PATCH` body is
//! `{"insert": [[u, v], [u, v, w], [u, v, "server"]], "delete": [[u, v]]}`
//! (inserts apply before deletes, each list in order), and
//! `GET .../spanner` returns the maintained spanner as `[u, v]`
//! endpoint pairs — byte-deterministic for a given create + delta
//! history, equal to a from-scratch solve of the live edge set.
//!
//! `GET /v1/metrics` additionally accepts `?format=prometheus`, which
//! returns the same snapshot in the Prometheus text exposition format
//! (version 0.0.4, `Content-Type: text/plain`) with a fixed metric and
//! label order — see [`crate::metrics::MetricsSnapshot::to_prometheus`].
//! `?format=json` (and no query at all) select the JSON body; any
//! other `format` value is a 400.
//!
//! # Job spec schema (`POST /v1/jobs`)
//!
//! ```json
//! {
//!   "variant": "weighted",
//!   "seed": 42,
//!   "graph": {"n": 4, "edges": [[0, 1, 3], [1, 2, 5], [2, 3, 1]]},
//!   "clients": [0, 2],          // client-server only: edge ids
//!   "servers": [1],             // client-server only: edge ids
//!   "accept_denominator": 8,    // optional, default 8
//!   "monotone": true,           // optional, default true
//!   "round_densities": true,    // optional, default true
//!   "max_iterations": 1000000,  // optional
//!   "shards": 4,                // optional, default 1; 0 = one per core;
//!                               // capped at 65536 at decode time
//!   "timeout_ms": 2000          // optional
//! }
//! ```
//!
//! Edges are `[u, v]` pairs (`[u, v, w]` with a weight for the
//! `weighted` variant); the graph is normalized exactly as the wire
//! protocol's text edge lists are (self-loops dropped, duplicate edges
//! keep their first occurrence — the same [`dsa_graphs::io`] builder
//! runs under both), so a JSON submission and a wire submission of the
//! same edge set map to the same canonical job and share one cache
//! entry. Unknown keys are rejected, mirroring the wire decoder's
//! unknown-header errors.
//!
//! # Job result schema
//!
//! ```json
//! {
//!   "key": "1f2e3d4c5b6a7988",
//!   "variant": "weighted",
//!   "converged": true,
//!   "iterations": 12,
//!   "local_rounds": 84,
//!   "star_fallbacks": 0,
//!   "spanner_size": 3,
//!   "spanner": [0, 4, 7]
//! }
//! ```
//!
//! The `key` is the canonical 64-bit job/cache key in hex (a string,
//! so 53-bit JSON consumers keep it exact); `spanner` lists edge ids
//! in the *submitted* graph's id space, ascending. A result carries no
//! serving incidentals (no timing, no cached/coalesced flag), so
//! repeated submissions of one spec return **byte-identical** bodies
//! whether computed cold, coalesced, or served from cache.
//!
//! # Status codes
//!
//! The status/code table lives in [`STATUS_TABLE`] — one source of
//! truth rendered into the README by [`status_table_markdown`] and
//! into every error body's `code` field. A 429 carries a
//! `Retry-After` header (integer seconds, rounded up from the
//! service's millisecond hint) derived from the observed p95 engine
//! latency and the queue backlog; [`HttpClient::run_with_retry`]
//! honors it.
//!
//! Every error response body is
//! `{"error": "<message>", "code": "<slug>"}` — `error` is
//! human-readable prose that may change between releases, `code` is a
//! stable machine-readable slug (mirroring the [`JobError`] variants
//! for job routes). Clients written against the pre-`code` bodies
//! keep working: the `error` field is unchanged. Errors that
//! leave the byte stream well-defined (routing, JSON, validation) keep
//! the connection open; errors that desynchronize it (oversized or
//! truncated requests) close it. A request whose bytes stall mid-flight
//! longer than the read budget ([`ServiceConfig::read_budget`]) also
//! closes the connection (slow-loris defense, counted in
//! `connections_timed_out`).

use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use dsa_core::dist::{EngineConfig, VariantInstance, VariantKind};
use dsa_graphs::{io as gio, EdgeSet, Graph};
use dsa_runtime::json::Json;

use crate::graphs::{
    DeltaOp, EdgeRole, GraphCreated, GraphError, GraphMeta, GraphPatched, GraphSpannerResult,
    GraphSpec,
};
use crate::job::{JobError, JobResponse, JobSpec};
use crate::net::{ListenerHandle, ShutdownReader, IDLE_POLL};
use crate::retry::RetryPolicy;
use crate::service::{Service, ServiceConfig};
use crate::wire::{narrow_usize, MIN_VERTEX_ALLOWANCE};

/// Upper bound on a request body (matches [`crate::wire::MAX_FRAME`]):
/// a million-edge graph as JSON fits, while a hostile `Content-Length`
/// cannot trigger an absurd allocation.
pub const MAX_BODY: usize = 64 << 20;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 32 << 10;

/// A running HTTP frontend. Dropping it (or calling
/// [`HttpServer::shutdown`]) stops the accept loop and joins the
/// connection threads.
pub struct HttpServer {
    listener: ListenerHandle,
    service: Arc<Service>,
}

impl HttpServer {
    /// Binds `addr` (port 0 for ephemeral) and serves a fresh
    /// [`Service`] built from `cfg`.
    pub fn start<A: ToSocketAddrs>(addr: A, cfg: &ServiceConfig) -> std::io::Result<HttpServer> {
        HttpServer::with_service(addr, Arc::new(Service::new(cfg)))
    }

    /// Like [`HttpServer::start`], over an existing service — the way
    /// `spanner-serve` runs it, so HTTP and TCP clients share one
    /// cache, worker pool, and coalescing map.
    pub fn with_service<A: ToSocketAddrs>(
        addr: A,
        service: Arc<Service>,
    ) -> std::io::Result<HttpServer> {
        let listener = {
            let service = Arc::clone(&service);
            ListenerHandle::start(
                addr,
                "spanner-http-accept",
                "spanner-http-conn",
                move |stream, stop| serve_http_connection(stream, &service, stop),
            )?
        };
        Ok(HttpServer { listener, service })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.listener.addr()
    }

    /// The shared service behind this frontend.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops accepting, waits for live connections to finish their
    /// current request, and joins the accept loop.
    pub fn shutdown(mut self) {
        self.listener.shutdown();
    }
}

/// One parsed request head.
struct Head {
    method: String,
    path: String,
    /// Raw query string (without the `?`), empty when absent.
    query: String,
    keep_alive: bool,
    content_length: usize,
    expect_continue: bool,
}

/// What became of an attempt to read one request.
enum ReadOutcome {
    /// A complete request (head + body).
    Request(Head, Vec<u8>),
    /// Clean EOF, shutdown, or a truncated request: close silently.
    Close,
    /// Protocol-level rejection: respond with this status and close.
    Reject(u16, String),
}

fn serve_http_connection(stream: TcpStream, service: &Arc<Service>, stop: &AtomicBool) {
    // Same idle-poll pattern as the wire frontend: a read timeout
    // turns a blocked read into a periodic shutdown-flag check, and
    // `ShutdownReader` retries so in-flight requests are unaffected —
    // while a per-request deadline armed by the first byte defends
    // against slow-loris reads.
    let _ = stream.set_read_timeout(Some(IDLE_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = ShutdownReader::new(&stream, stop, service.read_budget());
    let mut writer = &stream;
    let mut pending: Vec<u8> = Vec::new();
    loop {
        match read_request(&mut pending, &mut reader, &stream) {
            ReadOutcome::Close => {
                if reader.timed_out() {
                    service.on_connection_timed_out();
                }
                break;
            }
            ReadOutcome::Reject(status, message) => {
                // The byte stream is no longer trustworthy after a
                // rejected head: answer and close.
                let _ = write_response(
                    &mut writer,
                    status,
                    None,
                    None,
                    CT_JSON,
                    &error_body(reject_code(status), &message),
                    false,
                );
                break;
            }
            ReadOutcome::Request(head, body) => {
                reader.finish_message();
                let (status, allow, retry_after_ms, content_type, resp_body) =
                    route(&head.method, &head.path, &head.query, &body, service);
                // Chaos hook: the connection drops mid-response — head
                // promising a full body, only half of it written. A
                // retrying client reconnects and resubmits.
                if service.fault().fire("conn.drop") {
                    use std::io::Write;
                    let head_text = format!(
                        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
                        status_reason(status),
                        resp_body.len(),
                    );
                    let _ = writer.write_all(head_text.as_bytes());
                    let _ = writer.write_all(&resp_body.as_bytes()[..resp_body.len() / 2]);
                    let _ = writer.flush();
                    break;
                }
                if write_response(
                    &mut writer,
                    status,
                    allow,
                    retry_after_ms,
                    content_type,
                    &resp_body,
                    head.keep_alive,
                )
                .is_err()
                {
                    break;
                }
                if !head.keep_alive {
                    break;
                }
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads one full request (head + body) from `pending` + `reader`.
/// `stream` is borrowed only to emit `100 Continue` interim responses.
fn read_request(
    pending: &mut Vec<u8>,
    reader: &mut ShutdownReader<'_>,
    mut stream: &TcpStream,
) -> ReadOutcome {
    use std::io::{Read, Write};
    // 1. Accumulate bytes until the head terminator (CRLFCRLF, or
    //    bare LFLF from lenient clients) is in the buffer.
    let (head_len, term_len) = loop {
        if let Some(found) = head_end(pending) {
            break found;
        }
        if pending.len() > MAX_HEAD {
            return ReadOutcome::Reject(431, "request head too large".into());
        }
        let mut chunk = [0u8; 4096];
        match reader.read(&mut chunk) {
            // EOF with a partial head is a truncated request; EOF on
            // an empty buffer is a clean close. Either way: close.
            Ok(0) => return ReadOutcome::Close,
            Ok(k) => pending.extend_from_slice(&chunk[..k]),
            Err(_) => return ReadOutcome::Close,
        }
    };
    let head_bytes: Vec<u8> = pending.drain(..head_len + term_len).collect();
    let head = match parse_head(&head_bytes[..head_len]) {
        Ok(head) => head,
        Err(reject) => return reject,
    };
    if head.content_length > MAX_BODY {
        return ReadOutcome::Reject(
            413,
            format!(
                "body of {} bytes exceeds limit {MAX_BODY}",
                head.content_length
            ),
        );
    }
    // 2. `curl` sends bodies above ~1 KiB only after the server
    //    acknowledges the Expect header.
    if head.expect_continue && head.content_length > 0 {
        let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        let _ = stream.flush();
    }
    // 3. Read the body (some of it may already be buffered).
    while pending.len() < head.content_length {
        let mut chunk = [0u8; 4096];
        match reader.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Close, // truncated body
            Ok(k) => pending.extend_from_slice(&chunk[..k]),
            Err(_) => return ReadOutcome::Close,
        }
    }
    let body: Vec<u8> = pending.drain(..head.content_length).collect();
    ReadOutcome::Request(head, body)
}

/// Finds the end of the request head: returns (head length, terminator
/// length). Accepts `\r\n\r\n` and the bare-`\n\n` form.
fn head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some((i, 4));
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some((i, 2));
        }
    }
    None
}

fn parse_head(bytes: &[u8]) -> Result<Head, ReadOutcome> {
    let reject = |status: u16, msg: &str| Err(ReadOutcome::Reject(status, msg.to_string()));
    let Ok(text) = std::str::from_utf8(bytes) else {
        return reject(400, "request head is not UTF-8");
    };
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return reject(400, "malformed request line");
    };
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return reject(505, "only HTTP/1.0 and HTTP/1.1 are supported"),
    };
    // Routes are matched on the path alone so `/healthz?probe=1`
    // still resolves; the query is kept for handlers that accept
    // options (e.g. `/v1/metrics?format=prometheus`).
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut head = Head {
        method: method.to_string(),
        path: path.to_string(),
        query: query.to_string(),
        keep_alive: keep_alive_default,
        content_length: 0,
        expect_continue: false,
    };
    let mut seen_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return reject(400, "malformed header line");
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let Ok(len) = value.parse::<usize>() else {
                    return reject(400, "invalid Content-Length");
                };
                if seen_length.is_some_and(|prev| prev != len) {
                    return reject(400, "conflicting Content-Length headers");
                }
                seen_length = Some(len);
                head.content_length = len;
            }
            "transfer-encoding" => {
                return reject(
                    501,
                    "Transfer-Encoding is not supported; send Content-Length",
                );
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    head.keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    head.keep_alive = true;
                }
            }
            "expect" => {
                if value.eq_ignore_ascii_case("100-continue") {
                    head.expect_continue = true;
                } else {
                    return reject(400, "unsupported Expect header");
                }
            }
            // Every other header (Host, User-Agent, Accept, ...) is
            // irrelevant to the facade and ignored.
            _ => {}
        }
    }
    Ok(head)
}

/// Content type of every JSON response body.
const CT_JSON: &str = "application/json";
/// Content type of the Prometheus text exposition format.
const CT_PROMETHEUS: &str = "text/plain; version=0.0.4";

/// Dispatches one request: returns (status, Allow header for 405,
/// Retry-After hint in ms for 429, Content-Type, response body).
fn route(
    method: &str,
    path: &str,
    query: &str,
    body: &[u8],
    service: &Service,
) -> (u16, Option<&'static str>, Option<u64>, &'static str, String) {
    // Every route except the Prometheus exposition answers JSON; fold
    // the shorter tuple shape back in so the match arms stay readable.
    let json = |(status, allow, retry, body): (u16, Option<&'static str>, Option<u64>, String)| {
        (status, allow, retry, CT_JSON, body)
    };
    if (path, method) == ("/v1/metrics", "GET") {
        // `format` selects the representation; anything else in the
        // query is ignored, mirroring how unknown headers are ignored.
        return match query_param(query, "format") {
            None | Some("json") => (200, None, None, CT_JSON, service.metrics().to_json()),
            Some("prometheus") => (
                200,
                None,
                None,
                CT_PROMETHEUS,
                service.metrics().to_prometheus(),
            ),
            Some(other) => json((
                400,
                None,
                None,
                error_body(
                    "bad_request",
                    &format!("unknown metrics format `{other}` (expected `json` or `prometheus`)"),
                ),
            )),
        };
    }
    if let Some(rest) = path.strip_prefix("/v1/graphs/") {
        return json(route_graph(method, rest, body, service));
    }
    json(match (path, method) {
        ("/v1/jobs", "POST") => match decode_job_spec(body) {
            Err(e) => (400, None, None, error_body("bad_request", &e.to_string())),
            Ok(spec) => match service.run(&spec) {
                Ok(resp) => (200, None, None, encode_job_response(&resp)),
                Err(e @ JobError::Busy { retry_after_ms }) => {
                    let (status, code) = job_error_status_code(&e);
                    (
                        status,
                        None,
                        Some(retry_after_ms),
                        error_body(code, &e.to_string()),
                    )
                }
                Err(e) => {
                    let (status, code) = job_error_status_code(&e);
                    (status, None, None, error_body(code, &e.to_string()))
                }
            },
        },
        ("/v1/jobs", _) => (
            405,
            Some("POST"),
            None,
            error_body("method_not_allowed", "use POST for /v1/jobs"),
        ),
        ("/v1/metrics", _) => (
            405,
            Some("GET"),
            None,
            error_body("method_not_allowed", "use GET for /v1/metrics"),
        ),
        ("/healthz", "GET") => (200, None, None, "{\"status\":\"ok\"}".to_string()),
        ("/healthz", _) => (
            405,
            Some("GET"),
            None,
            error_body("method_not_allowed", "use GET for /healthz"),
        ),
        _ => (
            404,
            None,
            None,
            error_body(
                "not_found",
                &format!(
                    "no route for `{path}` (try POST /v1/jobs, PUT /v1/graphs/{{id}}, \
                     GET /v1/metrics, GET /healthz)"
                ),
            ),
        ),
    })
}

/// Dispatches one `/v1/graphs/{id}[/spanner]` request; `rest` is the
/// path after the prefix.
fn route_graph(
    method: &str,
    rest: &str,
    body: &[u8],
    service: &Service,
) -> (u16, Option<&'static str>, Option<u64>, String) {
    let graph_err = |e: GraphError| {
        let (status, code) = graph_error_status_code(&e);
        let retry = match &e {
            GraphError::Job(JobError::Busy { retry_after_ms }) => Some(*retry_after_ms),
            _ => None,
        };
        (status, None, retry, error_body(code, &e.to_string()))
    };
    let (id, sub) = match rest.split_once('/') {
        None => (rest, None),
        Some((id, "spanner")) => (id, Some("spanner")),
        Some((_, other)) => {
            return (
                404,
                None,
                None,
                error_body(
                    "not_found",
                    &format!("no graph subresource `{other}` (try /spanner)"),
                ),
            )
        }
    };
    match (sub, method) {
        (None, "PUT") => match decode_graph_create_body(id, body) {
            Err(e) => (400, None, None, error_body("bad_request", &e.to_string())),
            Ok(spec) => match service.graph_create(spec) {
                Ok(created) => {
                    let status = if created.existed { 200 } else { 201 };
                    (status, None, None, encode_graph_created_body(&created))
                }
                Err(e) => graph_err(e),
            },
        },
        (None, "PATCH") => match decode_graph_patch_body(body) {
            Err(e) => (400, None, None, error_body("bad_request", &e.to_string())),
            Ok(ops) => match service.graph_patch(id, &ops) {
                Ok(patched) => (200, None, None, encode_graph_patched_body(&patched)),
                Err(e) => graph_err(e),
            },
        },
        (None, "GET") => match service.graph_meta(id) {
            Ok(meta) => (200, None, None, encode_graph_meta_body(&meta)),
            Err(e) => graph_err(e),
        },
        (None, "DELETE") => match service.graph_delete(id) {
            Ok(()) => (200, None, None, encode_graph_deleted_body(id)),
            Err(e) => graph_err(e),
        },
        (None, _) => (
            405,
            Some("GET, PUT, PATCH, DELETE"),
            None,
            error_body(
                "method_not_allowed",
                "use PUT/PATCH/GET/DELETE for /v1/graphs/{id}",
            ),
        ),
        (Some(_), "GET") => match service.graph_spanner(id) {
            Ok(spanner) => (200, None, None, encode_graph_spanner_body(&spanner)),
            Err(e) => graph_err(e),
        },
        (Some(_), _) => (
            405,
            Some("GET"),
            None,
            error_body("method_not_allowed", "use GET for /v1/graphs/{id}/spanner"),
        ),
    }
}

/// The HTTP status and stable machine-readable `code` slug for a
/// [`JobError`] — the single mapping behind `POST /v1/jobs` error
/// bodies (and, via [`graph_error_status_code`], the graph routes).
pub fn job_error_status_code(e: &JobError) -> (u16, &'static str) {
    match e {
        JobError::Invalid(_) => (422, "invalid"),
        JobError::Cancelled => (503, "cancelled"),
        JobError::TimedOut => (504, "timed_out"),
        JobError::Busy { .. } => (429, "busy"),
        JobError::Protocol(_) => (400, "bad_request"),
        JobError::Io(_) => (500, "io"),
        JobError::Remote(_) => (500, "internal"),
    }
}

/// The HTTP status and `code` slug for a [`GraphError`].
pub fn graph_error_status_code(e: &GraphError) -> (u16, &'static str) {
    match e {
        GraphError::NotFound(_) => (404, "not_found"),
        GraphError::Conflict(_) => (409, "conflict"),
        GraphError::Invalid(_) => (422, "invalid"),
        GraphError::Job(job) => job_error_status_code(job),
    }
}

/// The `code` slug of a protocol-level rejection emitted before
/// routing (the [`ReadOutcome::Reject`] path).
fn reject_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        413 => "payload_too_large",
        431 => "head_too_large",
        501 => "not_implemented",
        505 => "http_version",
        _ => "error",
    }
}

/// The status/code table — the one source of truth behind error-body
/// `code` fields and the README's status table
/// ([`status_table_markdown`]). Rows: status, `code` slug(s) the
/// facade emits with it (`—` for successes), meaning.
pub const STATUS_TABLE: &[(u16, &str, &str)] = &[
    (
        200,
        "—",
        "request served (job ran, was cached, or the graph op applied)",
    ),
    (201, "—", "`PUT /v1/graphs/{id}` created a new named graph"),
    (
        400,
        "`bad_request`",
        "body is not valid JSON / schema violation / bad graph / malformed head",
    ),
    (
        404,
        "`not_found`",
        "unknown route, or no graph with that id",
    ),
    (
        405,
        "`method_not_allowed`",
        "wrong method for a known route (`Allow` header set)",
    ),
    (
        409,
        "`conflict`",
        "`PUT /v1/graphs/{id}` with a different definition than the live graph",
    ),
    (
        413,
        "`payload_too_large`",
        "body larger than the request-body bound",
    ),
    (
        422,
        "`invalid`",
        "well-formed spec or delta rejected by validation",
    ),
    (
        429,
        "`busy`",
        "shed by admission control; `Retry-After` set",
    ),
    (
        431,
        "`head_too_large`",
        "header section larger than the request-head bound",
    ),
    (500, "`internal`, `io`", "unexpected server-side failure"),
    (
        501,
        "`not_implemented`",
        "`Transfer-Encoding` (chunked bodies are not supported)",
    ),
    (
        503,
        "`cancelled`",
        "job cancelled before a result was available",
    ),
    (504, "`timed_out`", "job deadline passed"),
    (505, "`http_version`", "HTTP version other than 1.0/1.1"),
];

/// Renders [`STATUS_TABLE`] as the GitHub-flavored markdown table the
/// README embeds between its `status-table` markers — regenerating the
/// docs from the same constant the server answers with.
pub fn status_table_markdown() -> String {
    let mut out = String::from("| Status | Code | Meaning |\n|--------|------|---------|\n");
    for (status, code, meaning) in STATUS_TABLE {
        out.push_str(&format!("| {status} | {code} | {meaning} |\n"));
    }
    out
}

/// Looks up one `key=value` pair in a raw query string. No percent
/// decoding: the only recognised values (`json`, `prometheus`) need
/// none, and undecodable inputs fall through to the 400 path.
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Encodes one error body: `error` (prose, first for pre-`code`
/// consumers that pattern-match the prefix) then `code` (stable slug).
fn error_body(code: &str, message: &str) -> String {
    Json::Obj(vec![
        ("error".to_string(), Json::Str(message.to_string())),
        ("code".to_string(), Json::Str(code.to_string())),
    ])
    .encode()
}

fn status_reason(status: u16) -> &'static str {
    match status {
        100 => "Continue",
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

fn write_response(
    w: &mut impl std::io::Write,
    status: u16,
    allow: Option<&str>,
    retry_after_ms: Option<u64>,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status_reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some(allow) = allow {
        out.push_str("Allow: ");
        out.push_str(allow);
        out.push_str("\r\n");
    }
    if let Some(ms) = retry_after_ms {
        // Retry-After is integer seconds; round the millisecond hint
        // up so "retry after 50ms" never becomes "retry immediately".
        out.push_str(&format!("Retry-After: {}\r\n", ms.div_ceil(1000).max(1)));
    }
    out.push_str("\r\n");
    out.push_str(body);
    w.write_all(out.as_bytes())?;
    w.flush()
}

// ---------------------------------------------------------------------
// JSON codecs
// ---------------------------------------------------------------------

fn proto(message: impl Into<String>) -> JobError {
    JobError::Protocol(message.into())
}

/// Encodes a job spec as the `POST /v1/jobs` body documented in the
/// module docs. Deterministic: key order is fixed, defaults that the
/// wire encoder omits (`shards 1`, absent timeout) are omitted here
/// too.
pub fn encode_job_spec(spec: &JobSpec) -> String {
    let edge_rows = |g: &Graph| -> Json {
        Json::Arr(
            g.edges()
                .map(|(_, u, v)| Json::Arr(vec![Json::U64(u as u64), Json::U64(v as u64)]))
                .collect(),
        )
    };
    let id_list = |s: &EdgeSet| Json::Arr(s.iter().map(|e| Json::U64(e as u64)).collect());
    let mut pairs: Vec<(String, Json)> = vec![(
        "variant".to_string(),
        Json::Str(spec.instance.kind().to_string()),
    )];
    let mut push = |k: &str, v: Json| pairs.push((k.to_string(), v));
    push("seed", Json::U64(spec.config.seed));
    let (n, edges) = match &spec.instance {
        VariantInstance::Undirected { graph } => (graph.num_vertices(), edge_rows(graph)),
        VariantInstance::Directed { graph } => (
            graph.num_vertices(),
            Json::Arr(
                graph
                    .edges()
                    .map(|(_, u, v)| Json::Arr(vec![Json::U64(u as u64), Json::U64(v as u64)]))
                    .collect(),
            ),
        ),
        VariantInstance::Weighted { graph, weights } => (
            graph.num_vertices(),
            Json::Arr(
                graph
                    .edges()
                    .map(|(e, u, v)| {
                        Json::Arr(vec![
                            Json::U64(u as u64),
                            Json::U64(v as u64),
                            Json::U64(weights.get(e)),
                        ])
                    })
                    .collect(),
            ),
        ),
        VariantInstance::ClientServer { graph, .. } => (graph.num_vertices(), edge_rows(graph)),
    };
    push(
        "graph",
        Json::Obj(vec![
            ("n".to_string(), Json::U64(n as u64)),
            ("edges".to_string(), edges),
        ]),
    );
    if let VariantInstance::ClientServer {
        clients, servers, ..
    } = &spec.instance
    {
        push("clients", id_list(clients));
        push("servers", id_list(servers));
    }
    push(
        "accept_denominator",
        Json::U64(spec.config.accept_denominator),
    );
    push("monotone", Json::Bool(spec.config.monotone_stars));
    push("round_densities", Json::Bool(spec.config.round_densities));
    push("max_iterations", Json::U64(spec.config.max_iterations));
    if spec.config.num_shards != 1 {
        push("shards", Json::U64(spec.config.num_shards as u64));
    }
    if let Some(t) = spec.timeout {
        // Saturating, not wrapping: a pathological Duration must not
        // come back as a short deadline (see the wire encoder).
        push("timeout_ms", Json::U64(crate::wire::saturating_millis(t)));
    }
    Json::Obj(pairs).encode()
}

/// Decodes a `POST /v1/jobs` body into a job spec. Errors are
/// [`JobError::Protocol`] and map to HTTP 400; semantic validation
/// (e.g. a zero accept denominator) stays with the service and maps
/// to 422.
pub fn decode_job_spec(body: &[u8]) -> Result<JobSpec, JobError> {
    let text = std::str::from_utf8(body).map_err(|_| proto("body is not UTF-8"))?;
    let v = Json::parse(text).map_err(|e| proto(format!("bad JSON: {e}")))?;
    let pairs = v
        .as_obj()
        .ok_or_else(|| proto("job spec must be a JSON object"))?;
    for (key, _) in pairs {
        match key.as_str() {
            "variant" | "seed" | "graph" | "clients" | "servers" | "accept_denominator"
            | "monotone" | "round_densities" | "max_iterations" | "shards" | "timeout_ms" => {}
            other => return Err(proto(format!("unknown key `{other}`"))),
        }
    }
    let variant: VariantKind = v
        .get("variant")
        .and_then(Json::as_str)
        .ok_or_else(|| proto("missing `variant` (string)"))?
        .parse()
        .map_err(JobError::Protocol)?;
    let seed = v
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or_else(|| proto("missing `seed` (non-negative integer)"))?;

    let graph = v.get("graph").ok_or_else(|| proto("missing `graph`"))?;
    let graph_pairs = graph
        .as_obj()
        .ok_or_else(|| proto("`graph` must be an object"))?;
    for (key, _) in graph_pairs {
        if key != "n" && key != "edges" {
            return Err(proto(format!("unknown key `graph.{key}`")));
        }
    }
    let n = graph
        .get("n")
        .and_then(Json::as_u64)
        .ok_or_else(|| proto("missing `graph.n` (non-negative integer)"))?;
    // Same request-size bound as the wire protocol's `# n` check: the
    // body caps *bytes*, but `Graph::new(n)` allocates per declared
    // vertex, so a ~60-byte body must not demand gigabytes.
    let limit = (2 * body.len() as u64 + 1024).max(MIN_VERTEX_ALLOWANCE);
    if n > limit {
        return Err(proto(format!(
            "declared vertex count {n} exceeds the request-size bound {limit}"
        )));
    }
    let n = narrow_usize(n, "vertex count")?;
    let edges = graph
        .get("edges")
        .and_then(Json::as_arr)
        .ok_or_else(|| proto("missing `graph.edges` (array of arrays)"))?;
    let mut rows: Vec<Vec<u64>> = Vec::with_capacity(edges.len());
    for (i, edge) in edges.iter().enumerate() {
        let fields = edge
            .as_arr()
            .ok_or_else(|| proto(format!("edge {i} must be an array")))?;
        let row = fields
            .iter()
            .map(Json::as_u64)
            .collect::<Option<Vec<u64>>>()
            .ok_or_else(|| proto(format!("edge {i}: fields must be non-negative integers")))?;
        rows.push(row);
    }
    let bad_graph = |e: gio::ParseGraphError| proto(format!("bad graph: {e}"));

    let id_set = |key: &str, universe: usize| -> Result<EdgeSet, JobError> {
        let ids = v
            .get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| proto(format!("missing `{key}` (array of edge ids)")))?;
        let mut set = EdgeSet::new(universe);
        for id in ids {
            let id = id
                .as_u64()
                .and_then(|x| usize::try_from(x).ok())
                .ok_or_else(|| proto(format!("`{key}` ids must be non-negative integers")))?;
            if id >= universe {
                return Err(proto(format!(
                    "{key} id {id} out of range for {universe} edges"
                )));
            }
            set.insert(id);
        }
        Ok(set)
    };

    if !matches!(variant, VariantKind::ClientServer)
        && (v.get("clients").is_some() || v.get("servers").is_some())
    {
        return Err(proto(
            "`clients`/`servers` only apply to the client-server variant",
        ));
    }

    let instance = match variant {
        VariantKind::Undirected => {
            let (graph, w) = gio::edge_rows_to_graph(n, &rows).map_err(bad_graph)?;
            if w.is_some() {
                return Err(proto("undirected variant takes [u, v] edges"));
            }
            VariantInstance::Undirected { graph }
        }
        VariantKind::Weighted => {
            let (graph, w) = gio::edge_rows_to_graph(n, &rows).map_err(bad_graph)?;
            let weights = w.ok_or_else(|| proto("weighted variant needs [u, v, w] edges"))?;
            VariantInstance::Weighted { graph, weights }
        }
        VariantKind::Directed => {
            let graph = gio::edge_rows_to_digraph(n, &rows).map_err(bad_graph)?;
            VariantInstance::Directed { graph }
        }
        VariantKind::ClientServer => {
            let (graph, w) = gio::edge_rows_to_graph(n, &rows).map_err(bad_graph)?;
            if w.is_some() {
                return Err(proto("client-server variant takes [u, v] edges"));
            }
            let m = graph.num_edges();
            let clients = id_set("clients", m)?;
            let servers = id_set("servers", m)?;
            VariantInstance::ClientServer {
                graph,
                clients,
                servers,
            }
        }
    };

    let mut config = EngineConfig::seeded(seed);
    let opt_u64 = |key: &str| -> Result<Option<u64>, JobError> {
        match v.get(key) {
            None => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or_else(|| proto(format!("`{key}` must be a non-negative integer"))),
        }
    };
    let opt_bool = |key: &str| -> Result<Option<bool>, JobError> {
        match v.get(key) {
            None => Ok(None),
            Some(x) => x
                .as_bool()
                .map(Some)
                .ok_or_else(|| proto(format!("`{key}` must be a boolean"))),
        }
    };
    if let Some(d) = opt_u64("accept_denominator")? {
        config.accept_denominator = d;
    }
    if let Some(m) = opt_bool("monotone")? {
        config.monotone_stars = m;
    }
    if let Some(r) = opt_bool("round_densities")? {
        config.round_densities = r;
    }
    if let Some(m) = opt_u64("max_iterations")? {
        config.max_iterations = m;
    }
    if let Some(s) = opt_u64("shards")? {
        // Capped exactly like the wire decoder: a hostile
        // `"shards": 2^63` must not truncate on 32-bit targets.
        config.num_shards = crate::wire::decode_shards(s);
    }
    let timeout = opt_u64("timeout_ms")?.map(Duration::from_millis);

    Ok(JobSpec {
        instance,
        config,
        timeout,
    })
}

/// Encodes a job result as the `POST /v1/jobs` 200 body. Pure function
/// of the response, so a cache hit is byte-identical to the cold
/// computation.
pub fn encode_job_response(resp: &JobResponse) -> String {
    Json::Obj(vec![
        ("key".to_string(), Json::Str(format!("{:016x}", resp.key))),
        ("variant".to_string(), Json::Str(resp.kind.to_string())),
        ("converged".to_string(), Json::Bool(resp.converged)),
        ("iterations".to_string(), Json::U64(resp.iterations)),
        ("local_rounds".to_string(), Json::U64(resp.local_rounds)),
        ("star_fallbacks".to_string(), Json::U64(resp.star_fallbacks)),
        (
            "spanner_size".to_string(),
            Json::U64(resp.spanner.len() as u64),
        ),
        (
            "spanner".to_string(),
            Json::Arr(resp.spanner.iter().map(|&e| Json::U64(e as u64)).collect()),
        ),
    ])
    .encode()
}

/// Decodes a `POST /v1/jobs` 200 body back into a [`JobResponse`].
pub fn decode_job_response(body: &[u8]) -> Result<JobResponse, JobError> {
    let text = std::str::from_utf8(body).map_err(|_| proto("response is not UTF-8"))?;
    let v = Json::parse(text).map_err(|e| proto(format!("bad JSON: {e}")))?;
    let missing = |what: &str| proto(format!("missing `{what}` field"));
    let key_hex = v
        .get("key")
        .and_then(Json::as_str)
        .ok_or_else(|| missing("key"))?;
    let key =
        u64::from_str_radix(key_hex, 16).map_err(|_| proto(format!("invalid key `{key_hex}`")))?;
    let kind: VariantKind = v
        .get("variant")
        .and_then(Json::as_str)
        .ok_or_else(|| missing("variant"))?
        .parse()
        .map_err(JobError::Protocol)?;
    let spanner = v
        .get("spanner")
        .and_then(Json::as_arr)
        .ok_or_else(|| missing("spanner"))?
        .iter()
        .map(|x| x.as_u64().and_then(|x| usize::try_from(x).ok()))
        .collect::<Option<Vec<usize>>>()
        .ok_or_else(|| proto("spanner ids must be non-negative integers"))?;
    let size = narrow_usize(
        v.get("spanner_size")
            .and_then(Json::as_u64)
            .ok_or_else(|| missing("spanner_size"))?,
        "spanner_size",
    )?;
    if spanner.len() != size {
        return Err(proto(format!(
            "spanner_size {size} does not match {} listed ids",
            spanner.len()
        )));
    }
    let field_u64 = |what: &str| {
        v.get(what)
            .and_then(Json::as_u64)
            .ok_or_else(|| missing(what))
    };
    Ok(JobResponse {
        key,
        kind,
        spanner,
        iterations: field_u64("iterations")?,
        local_rounds: field_u64("local_rounds")?,
        converged: v
            .get("converged")
            .and_then(Json::as_bool)
            .ok_or_else(|| missing("converged"))?,
        star_fallbacks: field_u64("star_fallbacks")?,
    })
}

// ---------------------------------------------------------------------
// Graph JSON codecs
// ---------------------------------------------------------------------

/// Encodes the `PUT /v1/graphs/{id}` body for `spec` — exactly the
/// job-spec schema without `timeout_ms` (the id travels in the path,
/// not the body, so the body is the *definition* the conflict check
/// compares).
pub fn encode_graph_create_body(spec: &GraphSpec) -> String {
    encode_job_spec(&JobSpec {
        instance: spec.instance.clone(),
        config: spec.config.clone(),
        timeout: None,
    })
}

/// Decodes a `PUT /v1/graphs/{id}` body: a job spec whose execution
/// policy must be absent (`timeout_ms`) or trivial (`shards`), because
/// a named graph's bytes are a pure function of its definition and
/// delta history — mirroring the wire decoder's `graph-create` checks.
pub fn decode_graph_create_body(id: &str, body: &[u8]) -> Result<GraphSpec, JobError> {
    let spec = decode_job_spec(body)?;
    if spec.timeout.is_some() {
        return Err(proto(
            "graph create takes no `timeout_ms`; deadlines apply to reads, not definitions",
        ));
    }
    if spec.config.num_shards != 1 {
        return Err(proto(
            "graphs are maintained single-shard; omit `shards` or set it to 1",
        ));
    }
    Ok(GraphSpec {
        id: id.to_string(),
        instance: spec.instance,
        config: spec.config,
    })
}

/// Encodes a `PATCH /v1/graphs/{id}` body. Inserts render as
/// `[u, v]` / `[u, v, w]` / `[u, v, "role"]` rows under `insert`,
/// deletes as `[u, v]` rows under `delete`; the server applies the
/// insert list (in order) before the delete list, matching this
/// function's op order on decode.
pub fn encode_graph_patch_body(ops: &[DeltaOp]) -> String {
    let pair = |u: usize, v: usize| vec![Json::U64(u as u64), Json::U64(v as u64)];
    let mut insert = Vec::new();
    let mut delete = Vec::new();
    for op in ops {
        match op {
            DeltaOp::Insert { u, v, weight, role } => {
                let mut row = pair(*u, *v);
                if let Some(w) = weight {
                    row.push(Json::U64(*w));
                }
                if let Some(r) = role {
                    row.push(Json::Str(r.as_str().to_string()));
                }
                insert.push(Json::Arr(row));
            }
            DeltaOp::Delete { u, v } => delete.push(Json::Arr(pair(*u, *v))),
        }
    }
    let mut pairs = Vec::new();
    if !insert.is_empty() {
        pairs.push(("insert".to_string(), Json::Arr(insert)));
    }
    if !delete.is_empty() {
        pairs.push(("delete".to_string(), Json::Arr(delete)));
    }
    Json::Obj(pairs).encode()
}

/// Decodes a `PATCH /v1/graphs/{id}` body into delta ops (inserts
/// first, then deletes, each list in order).
pub fn decode_graph_patch_body(body: &[u8]) -> Result<Vec<DeltaOp>, JobError> {
    let text = std::str::from_utf8(body).map_err(|_| proto("body is not UTF-8"))?;
    let v = Json::parse(text).map_err(|e| proto(format!("bad JSON: {e}")))?;
    let pairs = v
        .as_obj()
        .ok_or_else(|| proto("patch must be a JSON object"))?;
    for (key, _) in pairs {
        if key != "insert" && key != "delete" {
            return Err(proto(format!("unknown key `{key}`")));
        }
    }
    let endpoint = |x: &Json, what: &str, i: usize| -> Result<usize, JobError> {
        x.as_u64()
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(|| {
                proto(format!(
                    "{what} {i}: endpoints must be non-negative integers"
                ))
            })
    };
    let mut ops = Vec::new();
    if let Some(rows) = v.get("insert") {
        let rows = rows
            .as_arr()
            .ok_or_else(|| proto("`insert` must be an array of edges"))?;
        for (i, row) in rows.iter().enumerate() {
            let fields = row
                .as_arr()
                .ok_or_else(|| proto(format!("insert {i} must be an array")))?;
            if fields.len() < 2 || fields.len() > 3 {
                return Err(proto(format!(
                    "insert {i}: expected [u, v], [u, v, w], or [u, v, \"role\"]"
                )));
            }
            let u = endpoint(&fields[0], "insert", i)?; // dsa-lint: allow(DSA-P003, reason="arity checked just above, fields has at least 2 elements")
            let v = endpoint(&fields[1], "insert", i)?; // dsa-lint: allow(DSA-P003, reason="arity checked just above, fields has at least 2 elements")
            let (weight, role) = match fields.get(2) {
                None => (None, None),
                Some(Json::U64(w)) => (Some(*w), None),
                Some(Json::Str(s)) => match EdgeRole::parse(s) {
                    Some(role) => (None, Some(role)),
                    None => {
                        return Err(proto(format!(
                            "insert {i}: unknown role `{s}` (expected client/server/both)"
                        )))
                    }
                },
                Some(_) => {
                    return Err(proto(format!(
                        "insert {i}: third field must be a weight or a role string"
                    )))
                }
            };
            ops.push(DeltaOp::Insert { u, v, weight, role });
        }
    }
    if let Some(rows) = v.get("delete") {
        let rows = rows
            .as_arr()
            .ok_or_else(|| proto("`delete` must be an array of edges"))?;
        for (i, row) in rows.iter().enumerate() {
            let fields = row
                .as_arr()
                .ok_or_else(|| proto(format!("delete {i} must be an array")))?;
            if fields.len() != 2 {
                return Err(proto(format!("delete {i}: expected [u, v]")));
            }
            ops.push(DeltaOp::Delete {
                u: endpoint(&fields[0], "delete", i)?, // dsa-lint: allow(DSA-P003, reason="arity checked just above, fields.len() == 2")
                v: endpoint(&fields[1], "delete", i)?, // dsa-lint: allow(DSA-P003, reason="arity checked just above, fields.len() == 2")
            });
        }
    }
    Ok(ops)
}

/// Encodes the `PUT /v1/graphs/{id}` success body.
pub fn encode_graph_created_body(r: &GraphCreated) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(r.id.clone())),
        ("version".to_string(), Json::U64(r.version)),
        ("edges".to_string(), Json::U64(r.edges as u64)),
        ("spanner_size".to_string(), Json::U64(r.spanner_size as u64)),
        ("existed".to_string(), Json::Bool(r.existed)),
    ])
    .encode()
}

/// Decodes the `PUT /v1/graphs/{id}` success body.
pub fn decode_graph_created_body(body: &[u8]) -> Result<GraphCreated, JobError> {
    let (v, field) = parse_graph_body(body)?;
    Ok(GraphCreated {
        id: field_str(&v, "id")?,
        version: field("version")?,
        edges: narrow_usize(field("edges")?, "edges")?,
        spanner_size: narrow_usize(field("spanner_size")?, "spanner_size")?,
        existed: v
            .get("existed")
            .and_then(Json::as_bool)
            .ok_or_else(|| proto("missing `existed` field"))?,
    })
}

/// Encodes the `PATCH /v1/graphs/{id}` success body.
pub fn encode_graph_patched_body(r: &GraphPatched) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(r.id.clone())),
        ("version".to_string(), Json::U64(r.version)),
        ("applied".to_string(), Json::U64(r.applied as u64)),
        ("commuted".to_string(), Json::U64(r.classes.commuted)),
        ("repaired".to_string(), Json::U64(r.classes.repaired)),
        ("recomputed".to_string(), Json::U64(r.classes.recomputed)),
        ("edges".to_string(), Json::U64(r.edges as u64)),
    ])
    .encode()
}

/// Decodes the `PATCH /v1/graphs/{id}` success body.
pub fn decode_graph_patched_body(body: &[u8]) -> Result<GraphPatched, JobError> {
    let (v, field) = parse_graph_body(body)?;
    Ok(GraphPatched {
        id: field_str(&v, "id")?,
        version: field("version")?,
        applied: narrow_usize(field("applied")?, "applied")?,
        classes: crate::graphs::DeltaClasses {
            commuted: field("commuted")?,
            repaired: field("repaired")?,
            recomputed: field("recomputed")?,
        },
        edges: narrow_usize(field("edges")?, "edges")?,
    })
}

/// Encodes the `GET /v1/graphs/{id}` success body. `cover_size` is
/// `null` while the working cover is invalidated (after a delete or a
/// restart, before the next solve).
pub fn encode_graph_meta_body(r: &GraphMeta) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(r.id.clone())),
        ("variant".to_string(), Json::Str(r.kind.to_string())),
        ("version".to_string(), Json::U64(r.version)),
        ("vertices".to_string(), Json::U64(r.vertices as u64)),
        ("edges".to_string(), Json::U64(r.edges as u64)),
        ("seed".to_string(), Json::U64(r.seed)),
        (
            "cover_size".to_string(),
            match r.cover_size {
                Some(size) => Json::U64(size as u64),
                None => Json::Null,
            },
        ),
        ("debt".to_string(), Json::U64(r.debt as u64)),
        ("commuted".to_string(), Json::U64(r.classes.commuted)),
        ("repaired".to_string(), Json::U64(r.classes.repaired)),
        ("recomputed".to_string(), Json::U64(r.classes.recomputed)),
    ])
    .encode()
}

/// Decodes the `GET /v1/graphs/{id}` success body.
pub fn decode_graph_meta_body(body: &[u8]) -> Result<GraphMeta, JobError> {
    let (v, field) = parse_graph_body(body)?;
    let kind: VariantKind = field_str(&v, "variant")?
        .parse()
        .map_err(JobError::Protocol)?;
    let cover_size = match v.get("cover_size") {
        None => return Err(proto("missing `cover_size` field")),
        Some(Json::Null) => None,
        Some(x) => Some(
            x.as_u64()
                .and_then(|x| usize::try_from(x).ok())
                .ok_or_else(|| proto("`cover_size` must be an integer or null"))?,
        ),
    };
    Ok(GraphMeta {
        id: field_str(&v, "id")?,
        kind,
        version: field("version")?,
        vertices: narrow_usize(field("vertices")?, "vertices")?,
        edges: narrow_usize(field("edges")?, "edges")?,
        seed: field("seed")?,
        cover_size,
        debt: narrow_usize(field("debt")?, "debt")?,
        classes: crate::graphs::DeltaClasses {
            commuted: field("commuted")?,
            repaired: field("repaired")?,
            recomputed: field("recomputed")?,
        },
    })
}

/// Encodes the `GET /v1/graphs/{id}/spanner` success body — the JSON
/// face of the per-graph byte-identity guarantee (a pure function of
/// the graph's create + delta history).
pub fn encode_graph_spanner_body(r: &GraphSpannerResult) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(r.id.clone())),
        ("version".to_string(), Json::U64(r.version)),
        ("key".to_string(), Json::Str(format!("{:016x}", r.key))),
        ("variant".to_string(), Json::Str(r.kind.to_string())),
        ("converged".to_string(), Json::Bool(r.converged)),
        ("iterations".to_string(), Json::U64(r.iterations)),
        ("local_rounds".to_string(), Json::U64(r.local_rounds)),
        ("star_fallbacks".to_string(), Json::U64(r.star_fallbacks)),
        ("spanner_size".to_string(), Json::U64(r.edges.len() as u64)),
        (
            "spanner".to_string(),
            Json::Arr(
                r.edges
                    .iter()
                    .map(|&(u, v)| Json::Arr(vec![Json::U64(u as u64), Json::U64(v as u64)]))
                    .collect(),
            ),
        ),
    ])
    .encode()
}

/// Decodes the `GET /v1/graphs/{id}/spanner` success body.
pub fn decode_graph_spanner_body(body: &[u8]) -> Result<GraphSpannerResult, JobError> {
    let (v, field) = parse_graph_body(body)?;
    let key_hex = field_str(&v, "key")?;
    let key =
        u64::from_str_radix(&key_hex, 16).map_err(|_| proto(format!("invalid key `{key_hex}`")))?;
    let kind: VariantKind = field_str(&v, "variant")?
        .parse()
        .map_err(JobError::Protocol)?;
    let rows = v
        .get("spanner")
        .and_then(Json::as_arr)
        .ok_or_else(|| proto("missing `spanner` (array of [u, v] pairs)"))?;
    let mut edges = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let fields = row
            .as_arr()
            .filter(|f| f.len() == 2)
            .ok_or_else(|| proto(format!("spanner edge {i} must be [u, v]")))?;
        let endpoints = fields[0] // dsa-lint: allow(DSA-P003, reason="rows filtered to len() == 2 above")
            .as_u64()
            .and_then(|x| usize::try_from(x).ok())
            .zip(fields[1].as_u64().and_then(|x| usize::try_from(x).ok())); // dsa-lint: allow(DSA-P003, reason="rows filtered to len() == 2 above")
        match endpoints {
            Some((u, v)) => edges.push((u, v)),
            None => return Err(proto(format!("spanner edge {i}: bad endpoints"))),
        }
    }
    let size = narrow_usize(field("spanner_size")?, "spanner_size")?;
    if edges.len() != size {
        return Err(proto(format!(
            "spanner_size {size} does not match {} listed edges",
            edges.len()
        )));
    }
    Ok(GraphSpannerResult {
        id: field_str(&v, "id")?,
        version: field("version")?,
        key,
        kind,
        converged: v
            .get("converged")
            .and_then(Json::as_bool)
            .ok_or_else(|| proto("missing `converged` field"))?,
        iterations: field("iterations")?,
        local_rounds: field("local_rounds")?,
        star_fallbacks: field("star_fallbacks")?,
        edges,
    })
}

/// Encodes the `DELETE /v1/graphs/{id}` success body.
pub fn encode_graph_deleted_body(id: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::Str(id.to_string())),
        ("deleted".to_string(), Json::Bool(true)),
    ])
    .encode()
}

/// Parses a graph response body, returning the JSON value and a
/// u64-field accessor over it.
#[allow(clippy::type_complexity)]
fn parse_graph_body(
    body: &[u8],
) -> Result<(Json, impl Fn(&'static str) -> Result<u64, JobError> + '_), JobError> {
    let text = std::str::from_utf8(body).map_err(|_| proto("response is not UTF-8"))?;
    let v = Json::parse(text).map_err(|e| proto(format!("bad JSON: {e}")))?;
    let owned = v.clone();
    let field = move |what: &'static str| {
        owned
            .get(what)
            .and_then(Json::as_u64)
            .ok_or_else(|| proto(format!("missing `{what}` field")))
    };
    Ok((v, field))
}

fn field_str(v: &Json, what: &str) -> Result<String, JobError> {
    v.get(what)
        .and_then(Json::as_str)
        .map(String::from)
        .ok_or_else(|| proto(format!("missing `{what}` field")))
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A blocking keep-alive client for the HTTP facade, used by
/// `spanner-cli --http`, the `exp_http` bench, the HTTP self-check,
/// and the integration tests.
pub struct HttpClient {
    stream: TcpStream,
    /// The resolved peer address, kept so retries can reconnect after
    /// the server (or a chaos hook) drops the connection mid-response.
    addr: SocketAddr,
    pending: Vec<u8>,
    /// The `Retry-After` header of the most recent response, converted
    /// to milliseconds; `None` when the response carried none.
    last_retry_after_ms: Option<u64>,
}

impl HttpClient {
    /// Connects to a running [`HttpServer`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let addr = stream.peer_addr()?;
        Ok(HttpClient {
            stream,
            addr,
            pending: Vec::new(),
            last_retry_after_ms: None,
        })
    }

    /// Drops the current connection and dials the same peer again,
    /// discarding any half-read response bytes.
    fn reconnect(&mut self) -> Result<(), JobError> {
        let stream = TcpStream::connect(self.addr).map_err(|e| JobError::Io(e.to_string()))?;
        let _ = stream.set_nodelay(true);
        self.stream = stream;
        self.pending.clear();
        Ok(())
    }

    /// Sends one request and returns `(status, body)`. The connection
    /// is reused across calls (keep-alive).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Vec<u8>), JobError> {
        use std::io::Write;
        let io_err = |e: std::io::Error| JobError::Io(e.to_string());
        let mut req = format!("{method} {path} HTTP/1.1\r\nHost: spanner-serve\r\n");
        if let Some(body) = body {
            req.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        req.push_str("\r\n");
        if let Some(body) = body {
            req.push_str(body);
        }
        self.stream.write_all(req.as_bytes()).map_err(io_err)?;
        self.stream.flush().map_err(io_err)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<(u16, Vec<u8>), JobError> {
        use std::io::Read;
        let io_err = |e: std::io::Error| JobError::Io(e.to_string());
        loop {
            let (head_len, term_len) = loop {
                if let Some(found) = head_end(&self.pending) {
                    break found;
                }
                if self.pending.len() > MAX_HEAD {
                    return Err(proto("response head too large"));
                }
                let mut chunk = [0u8; 4096];
                match self.stream.read(&mut chunk).map_err(io_err)? {
                    0 => return Err(JobError::Io("server closed the connection".into())),
                    k => self.pending.extend_from_slice(&chunk[..k]),
                }
            };
            let head_bytes: Vec<u8> = self.pending.drain(..head_len + term_len).collect();
            let head =
                String::from_utf8(head_bytes).map_err(|_| proto("response head is not UTF-8"))?;
            let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
            let status_line = lines.next().unwrap_or("");
            let status: u16 = status_line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| proto(format!("malformed status line `{status_line}`")))?;
            // Interim responses (100 Continue) carry no body; wait for
            // the final response.
            if status == 100 {
                continue;
            }
            let mut content_length = 0usize;
            self.last_retry_after_ms = None;
            for line in lines {
                if let Some((name, value)) = line.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value
                            .trim()
                            .parse()
                            .map_err(|_| proto("invalid Content-Length in response"))?;
                    } else if name.trim().eq_ignore_ascii_case("retry-after") {
                        // Integer seconds on the wire (the only form
                        // the facade emits); unparseable values are
                        // treated as absent, not as errors.
                        self.last_retry_after_ms =
                            value.trim().parse::<u64>().ok().map(|s| s * 1000);
                    }
                }
            }
            if content_length > MAX_BODY {
                return Err(proto("response body exceeds limit"));
            }
            while self.pending.len() < content_length {
                let mut chunk = [0u8; 4096];
                match self.stream.read(&mut chunk).map_err(io_err)? {
                    0 => return Err(JobError::Io("server closed mid-response".into())),
                    k => self.pending.extend_from_slice(&chunk[..k]),
                }
            }
            let body: Vec<u8> = self.pending.drain(..content_length).collect();
            return Ok((status, body));
        }
    }

    /// Runs one job via `POST /v1/jobs` and decodes the response.
    pub fn run(&mut self, spec: &JobSpec) -> Result<JobResponse, JobError> {
        let (status, body) = self.run_raw(spec)?;
        if status == 200 {
            return decode_job_response(&body);
        }
        Err(JobError::Remote(format!(
            "HTTP {status}: {}",
            error_message(&body)
        )))
    }

    /// Runs one job and returns the raw `(status, body bytes)` — what
    /// the facade's byte-identity guarantee is stated over.
    pub fn run_raw(&mut self, spec: &JobSpec) -> Result<(u16, Vec<u8>), JobError> {
        self.request("POST", "/v1/jobs", Some(&encode_job_spec(spec)))
    }

    /// Like [`HttpClient::run`], but retries shed (429, honoring the
    /// server's `Retry-After`), cancelled (503), and transport-level
    /// failures (reconnecting first) under `policy`'s capped jittered
    /// exponential backoff. Safe because a job response is a pure
    /// function of the spec: a resubmission can only return the same
    /// bytes.
    pub fn run_with_retry(
        &mut self,
        spec: &JobSpec,
        policy: &RetryPolicy,
    ) -> Result<JobResponse, JobError> {
        let mut attempt = 0u32;
        loop {
            let (hint, err) = match self.run_raw(spec) {
                Ok((200, body)) => return decode_job_response(&body),
                Ok((status @ (429 | 503), body)) => (
                    self.last_retry_after_ms,
                    JobError::Remote(format!("HTTP {status}: {}", error_message(&body))),
                ),
                Ok((status, body)) => {
                    // Validation and routing errors (4xx/5xx outside
                    // the two transient codes) repeat identically on
                    // resubmission; fail fast.
                    return Err(JobError::Remote(format!(
                        "HTTP {status}: {}",
                        error_message(&body)
                    )));
                }
                Err(e @ JobError::Io(_)) => {
                    // The connection is gone or desynchronized (e.g. a
                    // mid-response drop); replace it before retrying.
                    // A failed reconnect (server restarting) is itself
                    // retried: the dead stream just errors again.
                    match self.reconnect() {
                        Ok(()) => (None, e),
                        Err(re) => (None, re),
                    }
                }
                Err(e) => return Err(e),
            };
            if attempt >= policy.max_retries {
                return Err(err);
            }
            std::thread::sleep(policy.backoff(attempt, hint));
            attempt += 1;
        }
    }

    /// Fetches `/v1/metrics` as one JSON line.
    pub fn metrics_json(&mut self) -> Result<String, JobError> {
        let (status, body) = self.request("GET", "/v1/metrics", None)?;
        if status != 200 {
            return Err(JobError::Remote(format!(
                "HTTP {status}: {}",
                error_message(&body)
            )));
        }
        String::from_utf8(body).map_err(|_| proto("metrics body is not UTF-8"))
    }

    /// Fetches `/v1/metrics?format=prometheus` as text exposition.
    pub fn metrics_prometheus(&mut self) -> Result<String, JobError> {
        let (status, body) = self.request("GET", "/v1/metrics?format=prometheus", None)?;
        if status != 200 {
            return Err(JobError::Remote(format!(
                "HTTP {status}: {}",
                error_message(&body)
            )));
        }
        String::from_utf8(body).map_err(|_| proto("metrics body is not UTF-8"))
    }

    /// Liveness probe via `GET /healthz`.
    pub fn healthz(&mut self) -> Result<(), JobError> {
        let (status, body) = self.request("GET", "/healthz", None)?;
        if status != 200 {
            return Err(JobError::Remote(format!(
                "HTTP {status}: {}",
                error_message(&body)
            )));
        }
        Ok(())
    }

    /// Creates (or idempotently re-creates) a named graph via
    /// `PUT /v1/graphs/{id}`.
    pub fn graph_create(&mut self, spec: &GraphSpec) -> Result<GraphCreated, JobError> {
        let path = format!("/v1/graphs/{}", spec.id);
        let body = encode_graph_create_body(spec);
        let (status, resp) = self.request("PUT", &path, Some(&body))?;
        match status {
            200 | 201 => decode_graph_created_body(&resp),
            _ => Err(remote_status(status, &resp)),
        }
    }

    /// Applies edge deltas via `PATCH /v1/graphs/{id}`.
    pub fn graph_patch(&mut self, id: &str, ops: &[DeltaOp]) -> Result<GraphPatched, JobError> {
        let path = format!("/v1/graphs/{id}");
        let body = encode_graph_patch_body(ops);
        let (status, resp) = self.request("PATCH", &path, Some(&body))?;
        match status {
            200 => decode_graph_patched_body(&resp),
            _ => Err(remote_status(status, &resp)),
        }
    }

    /// Fetches graph metadata via `GET /v1/graphs/{id}`.
    pub fn graph_get(&mut self, id: &str) -> Result<GraphMeta, JobError> {
        let (status, resp) = self.request("GET", &format!("/v1/graphs/{id}"), None)?;
        match status {
            200 => decode_graph_meta_body(&resp),
            _ => Err(remote_status(status, &resp)),
        }
    }

    /// Fetches the maintained spanner via `GET /v1/graphs/{id}/spanner`.
    pub fn graph_spanner(&mut self, id: &str) -> Result<GraphSpannerResult, JobError> {
        let (status, resp) = self.graph_spanner_raw(id)?;
        match status {
            200 => decode_graph_spanner_body(&resp),
            _ => Err(remote_status(status, &resp)),
        }
    }

    /// Fetches the maintained spanner as raw `(status, body bytes)` —
    /// what the per-graph byte-identity guarantee is stated over.
    pub fn graph_spanner_raw(&mut self, id: &str) -> Result<(u16, Vec<u8>), JobError> {
        self.request("GET", &format!("/v1/graphs/{id}/spanner"), None)
    }

    /// Deletes a named graph via `DELETE /v1/graphs/{id}`.
    pub fn graph_delete(&mut self, id: &str) -> Result<(), JobError> {
        let (status, resp) = self.request("DELETE", &format!("/v1/graphs/{id}"), None)?;
        match status {
            200 => Ok(()),
            _ => Err(remote_status(status, &resp)),
        }
    }
}

/// A non-2xx response folded into [`JobError::Remote`].
fn remote_status(status: u16, body: &[u8]) -> JobError {
    JobError::Remote(format!("HTTP {status}: {}", error_message(body)))
}

/// Extracts the `error` field of an error body, or shows the raw body.
fn error_message(body: &[u8]) -> String {
    std::str::from_utf8(body)
        .ok()
        .and_then(|text| {
            Json::parse(text)
                .ok()
                .and_then(|v| v.get("error").and_then(Json::as_str).map(String::from))
        })
        .unwrap_or_else(|| String::from_utf8_lossy(body).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::canonicalize_job;
    use dsa_graphs::EdgeWeights;

    fn roundtrip(spec: &JobSpec) -> JobSpec {
        decode_job_spec(encode_job_spec(spec).as_bytes()).unwrap()
    }

    #[test]
    fn spec_roundtrips_all_variants() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 2)]);
        let d = dsa_graphs::DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let specs = [
            JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 3),
            JobSpec::new(VariantInstance::Directed { graph: d }, 4),
            JobSpec::new(
                VariantInstance::Weighted {
                    graph: g.clone(),
                    weights: EdgeWeights::from_vec(vec![2, 0, 5, 7]),
                },
                5,
            ),
            JobSpec::new(
                VariantInstance::ClientServer {
                    graph: g.clone(),
                    clients: EdgeSet::from_iter(4, [0, 1, 3]),
                    servers: EdgeSet::from_iter(4, [1, 2, 3]),
                },
                6,
            ),
        ];
        for spec in &specs {
            let back = roundtrip(spec);
            assert_eq!(back.instance.kind(), spec.instance.kind());
            assert_eq!(back.config.seed, spec.config.seed);
            // Canonical-key agreement is the identity the cache uses —
            // and it also proves a JSON submission shares the cache
            // entry of the equivalent wire submission.
            assert_eq!(
                canonicalize_job(&back).unwrap().key,
                canonicalize_job(spec).unwrap().key,
            );
        }
    }

    #[test]
    fn spec_carries_config_and_timeout() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut spec = JobSpec::new(VariantInstance::Undirected { graph: g }, u64::MAX);
        spec.config.accept_denominator = 16;
        spec.config.monotone_stars = false;
        spec.config.round_densities = false;
        spec.config.max_iterations = 12_345;
        spec.config.num_shards = 4;
        spec.timeout = Some(Duration::from_millis(1500));
        let back = roundtrip(&spec);
        assert_eq!(back.config.seed, u64::MAX, "u64 seeds stay exact");
        assert_eq!(back.config.accept_denominator, 16);
        assert!(!back.config.monotone_stars);
        assert!(!back.config.round_densities);
        assert_eq!(back.config.max_iterations, 12_345);
        assert_eq!(back.config.num_shards, 4);
        assert_eq!(back.timeout, Some(Duration::from_millis(1500)));
    }

    #[test]
    fn absurd_shards_and_timeouts_are_defanged() {
        // `"shards": 2^63` is capped at decode (never truncated), and
        // a pathological timeout saturates instead of wrapping.
        let spec = decode_job_spec(
            br#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,1]]},"shards":9223372036854775808}"#,
        )
        .unwrap();
        assert_eq!(spec.config.num_shards as u64, crate::wire::MAX_SHARDS);
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut pathological = JobSpec::new(VariantInstance::Undirected { graph: g }, 1);
        pathological.timeout = Some(Duration::MAX);
        let encoded = encode_job_spec(&pathological);
        assert!(
            encoded.contains(&format!("\"timeout_ms\":{}", u64::MAX)),
            "expected saturated timeout in {encoded}"
        );
        let back = roundtrip(&pathological);
        assert_eq!(back.timeout, Some(Duration::from_millis(u64::MAX)));
        assert_eq!(roundtrip(&back).timeout, back.timeout);
    }

    #[test]
    fn malformed_specs_error_cleanly() {
        for bad in [
            "not json at all",
            "[1,2,3]",
            r#"{"variant":"undirected"}"#,
            r#"{"variant":"undirected","seed":1}"#,
            r#"{"variant":"bogus","seed":1,"graph":{"n":2,"edges":[[0,1]]}}"#,
            r#"{"variant":"undirected","seed":-1,"graph":{"n":2,"edges":[[0,1]]}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,1]]},"bogus":1}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,1]],"x":1}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,1,2,3]]}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,5]]}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,1,7]]}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[0,1]}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[["a","b"]]}}"#,
            r#"{"variant":"weighted","seed":1,"graph":{"n":2,"edges":[[0,1]]}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,1]]},"clients":[0]}"#,
            r#"{"variant":"client-server","seed":1,"graph":{"n":2,"edges":[[0,1]]},"clients":[9],"servers":[0]}"#,
            r#"{"variant":"client-server","seed":1,"graph":{"n":2,"edges":[[0,1]]}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":99999999999999,"edges":[[0,1]]}}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,1]]},"shards":true}"#,
            r#"{"variant":"undirected","seed":1,"graph":{"n":2,"edges":[[0,1]]},"monotone":1}"#,
        ] {
            assert!(
                matches!(decode_job_spec(bad.as_bytes()), Err(JobError::Protocol(_))),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn json_and_wire_submissions_share_a_cache_key() {
        // The same edge set through the JSON decoder and the wire
        // decoder canonicalizes to the same job key, including when
        // the JSON spelling carries self-loops and duplicates.
        let via_json = decode_job_spec(
            br#"{"variant":"undirected","seed":9,"graph":{"n":3,"edges":[[0,1],[1,1],[1,0],[1,2]]}}"#,
        )
        .unwrap();
        let via_wire = match crate::wire::decode_request(
            b"run v1\nvariant undirected\nseed 9\ngraph\n# n 3\n1 2\n0 1\n",
        )
        .unwrap()
        {
            crate::wire::Request::Run(spec) => *spec,
            other => panic!("expected run request, got {other:?}"),
        };
        assert_eq!(
            canonicalize_job(&via_json).unwrap().key,
            canonicalize_job(&via_wire).unwrap().key
        );
    }

    #[test]
    fn response_roundtrips() {
        let resp = JobResponse {
            key: 0xdead_beef_0123_4567,
            kind: VariantKind::ClientServer,
            spanner: vec![0, 3, 9],
            iterations: 7,
            local_rounds: 49,
            converged: true,
            star_fallbacks: 0,
        };
        let encoded = encode_job_response(&resp);
        assert_eq!(decode_job_response(encoded.as_bytes()).unwrap(), resp);
        let empty = JobResponse {
            spanner: vec![],
            ..resp
        };
        assert_eq!(
            decode_job_response(encode_job_response(&empty).as_bytes()).unwrap(),
            empty
        );
        // A size/list mismatch is rejected like the wire decoder does.
        let lying = encoded.replace("\"spanner_size\":3", "\"spanner_size\":2");
        assert!(decode_job_response(lying.as_bytes()).is_err());
    }

    #[test]
    fn head_parsing_basics() {
        let head = parse_head(
            b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 12\r\nExpect: 100-continue\r\n",
        )
        .unwrap_or_else(|_| panic!("valid head rejected"));
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/v1/jobs");
        assert_eq!(head.query, "");
        assert_eq!(head.content_length, 12);
        assert!(head.keep_alive);
        assert!(head.expect_continue);
        let head = parse_head(b"GET /healthz?probe=1 HTTP/1.0\r\n")
            .unwrap_or_else(|_| panic!("valid head rejected"));
        assert_eq!(head.path, "/healthz", "query is not part of the path");
        assert_eq!(head.query, "probe=1");
        assert!(!head.keep_alive, "HTTP/1.0 defaults to close");
        for bad in [
            &b"GARBAGE\r\n"[..],
            b"GET /x HTTP/2\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n",
            b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n",
            b"GET /x HTTP/1.1\r\nnocolon\r\n",
        ] {
            assert!(parse_head(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn head_end_finds_both_terminators() {
        assert_eq!(head_end(b"a\r\n\r\nbody"), Some((1, 4)));
        assert_eq!(head_end(b"a\n\nbody"), Some((1, 2)));
        assert_eq!(head_end(b"a\r\nb"), None);
        assert_eq!(head_end(b""), None);
    }

    #[test]
    fn patch_body_roundtrips_all_op_shapes() {
        let ops = vec![
            DeltaOp::Insert {
                u: 0,
                v: 1,
                weight: None,
                role: None,
            },
            DeltaOp::Insert {
                u: 1,
                v: 2,
                weight: Some(9),
                role: None,
            },
            DeltaOp::Insert {
                u: 2,
                v: 3,
                weight: None,
                role: Some(EdgeRole::Server),
            },
            DeltaOp::Delete { u: 0, v: 1 },
        ];
        let body = encode_graph_patch_body(&ops);
        assert_eq!(
            body, r#"{"insert":[[0,1],[1,2,9],[2,3,"server"]],"delete":[[0,1]]}"#,
            "the PATCH body encoding is part of the API"
        );
        assert_eq!(decode_graph_patch_body(body.as_bytes()).unwrap(), ops);
        for bad in [
            "nope",
            "[1]",
            r#"{"bogus":[]}"#,
            r#"{"insert":[[0]]}"#,
            r#"{"insert":[[0,1,2,3]]}"#,
            r#"{"insert":[[0,1,"maybe"]]}"#,
            r#"{"insert":[[0,1,true]]}"#,
            r#"{"delete":[[0,1,2]]}"#,
            r#"{"delete":[0,1]}"#,
        ] {
            assert!(
                decode_graph_patch_body(bad.as_bytes()).is_err(),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn graph_create_body_reuses_the_job_spec_schema() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let spec = GraphSpec {
            id: "prod.web-1".to_string(),
            instance: VariantInstance::Undirected { graph: g },
            config: EngineConfig::seeded(42),
        };
        let body = encode_graph_create_body(&spec);
        let back = decode_graph_create_body("prod.web-1", body.as_bytes()).unwrap();
        assert_eq!(back.id, "prod.web-1");
        assert_eq!(back.config.seed, 42);
        assert_eq!(back.instance.kind(), VariantKind::Undirected);
        // Execution policy is definitionally absent: a deadline or a
        // shard count would make the graph's bytes depend on how it
        // was served, not what it is.
        let with_timeout = body.trim_end_matches('}').to_string() + r#","timeout_ms":100}"#;
        assert!(decode_graph_create_body("g", with_timeout.as_bytes()).is_err());
        let with_shards = body.trim_end_matches('}').to_string() + r#","shards":4}"#;
        assert!(decode_graph_create_body("g", with_shards.as_bytes()).is_err());
    }

    #[test]
    fn graph_response_bodies_roundtrip() {
        let created = GraphCreated {
            id: "g".to_string(),
            version: 3,
            edges: 17,
            spanner_size: 9,
            existed: true,
        };
        assert_eq!(
            decode_graph_created_body(encode_graph_created_body(&created).as_bytes()).unwrap(),
            created
        );
        let patched = GraphPatched {
            id: "g".to_string(),
            version: 4,
            applied: 2,
            classes: crate::graphs::DeltaClasses {
                commuted: 1,
                repaired: 1,
                recomputed: 0,
            },
            edges: 19,
        };
        assert_eq!(
            decode_graph_patched_body(encode_graph_patched_body(&patched).as_bytes()).unwrap(),
            patched
        );
        for cover_size in [Some(9), None] {
            let meta = GraphMeta {
                id: "g".to_string(),
                kind: VariantKind::Weighted,
                version: 4,
                vertices: 10,
                edges: 19,
                seed: 7,
                cover_size,
                debt: 3,
                classes: crate::graphs::DeltaClasses::default(),
            };
            let body = encode_graph_meta_body(&meta);
            assert_eq!(decode_graph_meta_body(body.as_bytes()).unwrap(), meta);
            if cover_size.is_none() {
                assert!(body.contains("\"cover_size\":null"));
            }
        }
        let spanner = GraphSpannerResult {
            id: "g".to_string(),
            version: 4,
            key: 0xdead_beef,
            kind: VariantKind::Undirected,
            converged: true,
            iterations: 6,
            local_rounds: 42,
            star_fallbacks: 0,
            edges: vec![(0, 1), (2, 5)],
        };
        let body = encode_graph_spanner_body(&spanner);
        assert_eq!(decode_graph_spanner_body(body.as_bytes()).unwrap(), spanner);
        let lying = body.replace("\"spanner_size\":2", "\"spanner_size\":1");
        assert!(decode_graph_spanner_body(lying.as_bytes()).is_err());
    }

    #[test]
    fn error_bodies_carry_stable_codes_and_stay_backward_compatible() {
        // New bodies: `error` first (pre-`code` consumers often
        // pattern-match the prefix), `code` second.
        assert_eq!(
            error_body("busy", "try later"),
            r#"{"error":"try later","code":"busy"}"#
        );
        // The client-side reader accepts old-style bodies (no `code`)
        // for one release: decommissioning them must not break
        // deployed clients mid-upgrade.
        assert_eq!(error_message(br#"{"error":"old style"}"#), "old style");
        assert_eq!(
            error_message(br#"{"error":"new style","code":"busy"}"#),
            "new style"
        );
        // Every JobError variant maps to a status in the table and a
        // code listed on that status's row.
        let variants = [
            JobError::Invalid("x".into()),
            JobError::Cancelled,
            JobError::TimedOut,
            JobError::Busy { retry_after_ms: 1 },
            JobError::Protocol("x".into()),
            JobError::Io("x".into()),
            JobError::Remote("x".into()),
        ];
        for e in &variants {
            let (status, code) = job_error_status_code(e);
            let row = STATUS_TABLE
                .iter()
                .find(|(s, _, _)| *s == status)
                .unwrap_or_else(|| panic!("status {status} missing from STATUS_TABLE"));
            assert!(
                row.1.contains(&format!("`{code}`")),
                "row for {status} does not list code `{code}`"
            );
            assert_ne!(status_reason(status), "Unknown");
        }
        for e in [
            GraphError::NotFound("g".into()),
            GraphError::Conflict("g".into()),
            GraphError::Invalid("x".into()),
            GraphError::Job(JobError::Busy { retry_after_ms: 1 }),
        ] {
            let (status, code) = graph_error_status_code(&e);
            let row = STATUS_TABLE.iter().find(|(s, _, _)| *s == status).unwrap();
            assert!(row.1.contains(&format!("`{code}`")));
            assert_ne!(status_reason(status), "Unknown");
        }
    }

    #[test]
    fn readme_status_table_matches_the_source_of_truth() {
        // The README embeds `status_table_markdown()` between markers;
        // regenerating from [`STATUS_TABLE`] keeps docs and server
        // answers from drifting.
        let readme_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
        let readme = std::fs::read_to_string(readme_path).expect("read README.md");
        let begin = "<!-- status-table:begin -->\n";
        let end = "<!-- status-table:end -->";
        let start = readme
            .find(begin)
            .expect("README is missing <!-- status-table:begin -->")
            + begin.len();
        let stop = readme[start..]
            .find(end)
            .expect("README is missing <!-- status-table:end -->")
            + start;
        assert_eq!(
            readme[start..stop].trim_end_matches('\n'),
            status_table_markdown().trim_end_matches('\n'),
            "README status table is stale; paste the output of \
             dsa_service::http::status_table_markdown() between the markers"
        );
    }
}
