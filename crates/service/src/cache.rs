//! A least-recently-used result cache keyed by canonical job hash.
//!
//! The value type is generic ([`crate::Service`] stores
//! `Arc<SpannerRun>`), keys are the 64-bit canonical hashes of
//! [`crate::job`]. Recency is an intrusive doubly-linked list threaded
//! through a slab of nodes (indices, not pointers — no unsafe): every
//! `get`, `insert`, and eviction is O(1). The earlier tick-scan
//! eviction was O(capacity) per insert, which was noise behind one
//! engine run but not behind a warm start replaying hundreds of
//! disk-backed records in one burst.

use std::collections::HashMap;

/// Sentinel slab index for "no node".
const NIL: usize = usize::MAX;

struct Node<V> {
    key: u64,
    value: V,
    /// Neighbor toward the most-recently-used end.
    prev: usize,
    /// Neighbor toward the least-recently-used end.
    next: usize,
}

/// An LRU map from canonical job keys to results.
pub(crate) struct LruCache<V> {
    map: HashMap<u64, usize>,
    slab: Vec<Node<V>>,
    free: Vec<usize>,
    /// Most recently used node, or [`NIL`] when empty.
    head: usize,
    /// Least recently used node (the eviction victim), or [`NIL`].
    tail: usize,
    capacity: usize,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` entries; zero disables
    /// caching entirely (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlinks `i` from the recency list without touching the slab.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Links `i` in front of the current head (most recent).
    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h].prev = i,
        }
        self.head = i;
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let &i = self.map.get(&key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(&self.slab[i].value)
    }

    /// Inserts `key`, evicting the least-recently-used entry when the
    /// cache is full. Re-inserting an existing key replaces its value.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slab[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "non-empty full cache");
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.free.push(victim);
        }
        let node = Node {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = node;
                i
            }
            None => {
                self.slab.push(node);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), Some(&"a")); // 1 is now fresher than 2
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(3), Some(&"c"));
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(&"a2"));
        assert_eq!(c.get(2), Some(&"b"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(1, "a");
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn capacity_one_always_keeps_the_latest() {
        let mut c = LruCache::new(1);
        for k in 0..10 {
            c.insert(k, k);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(k), Some(&k));
            if k > 0 {
                assert_eq!(c.get(k - 1), None);
            }
        }
    }

    /// The O(1) list must agree with the obvious tick-scan model under
    /// a long randomized mix of gets and inserts (this is the
    /// semantics the old implementation had; eviction order must be
    /// unchanged).
    #[test]
    fn matches_reference_model_under_random_workload() {
        struct Model {
            entries: Vec<(u64, u64, u64)>, // (key, value, last_used)
            tick: u64,
            capacity: usize,
        }
        impl Model {
            fn get(&mut self, key: u64) -> Option<u64> {
                self.tick += 1;
                let tick = self.tick;
                self.entries.iter_mut().find(|e| e.0 == key).map(|e| {
                    e.2 = tick;
                    e.1
                })
            }
            fn insert(&mut self, key: u64, value: u64) {
                self.tick += 1;
                let tick = self.tick;
                if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
                    *e = (key, value, tick);
                    return;
                }
                if self.entries.len() >= self.capacity {
                    let stalest = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.2)
                        .map(|(i, _)| i)
                        .unwrap();
                    self.entries.remove(stalest);
                }
                self.entries.push((key, value, tick));
            }
        }

        for capacity in [1usize, 2, 3, 7] {
            let mut cache = LruCache::new(capacity);
            let mut model = Model {
                entries: Vec::new(),
                tick: 0,
                capacity,
            };
            // Deterministic pseudo-random op stream (splitmix-ish).
            let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ capacity as u64;
            for step in 0..4_000u64 {
                state = state
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9)
                    .wrapping_add(0x94d0_49bb_1331_11eb);
                let key = (state >> 32) % 11;
                if state.is_multiple_of(3) {
                    assert_eq!(
                        cache.get(key),
                        model.get(key).as_ref(),
                        "get({key}) diverged at step {step} (capacity {capacity})"
                    );
                } else {
                    cache.insert(key, step);
                    model.insert(key, step);
                }
                assert_eq!(cache.len(), model.entries.len());
            }
        }
    }
}
