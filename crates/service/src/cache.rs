//! A least-recently-used result cache keyed by canonical job hash.
//!
//! The value type is generic ([`crate::Service`] stores
//! `Arc<SpannerRun>`), keys are the 64-bit canonical hashes of
//! [`crate::job`]. Recency is tracked with a monotone tick; eviction
//! scans for the stalest entry, which is `O(capacity)` per insert but
//! branch-free and allocation-free — at the few-hundred-entry
//! capacities the service runs with, the scan is noise next to one
//! engine run.

use std::collections::HashMap;

/// An LRU map from canonical job keys to results.
pub(crate) struct LruCache<V> {
    map: HashMap<u64, Entry<V>>,
    capacity: usize,
    tick: u64,
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` entries; zero disables
    /// caching entirely (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            &e.value
        })
    }

    /// Inserts `key`, evicting the least-recently-used entry when the
    /// cache is full. Re-inserting an existing key replaces its value.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&key) {
            e.value = value;
            e.last_used = tick;
            return;
        }
        if self.map.len() >= self.capacity {
            let stalest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty full cache");
            self.map.remove(&stalest);
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), Some(&"a")); // 1 is now fresher than 2
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(c.get(3), Some(&"c"));
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(&"a2"));
        assert_eq!(c.get(2), Some(&"b"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(1, "a");
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(1), None);
    }
}
