//! `spanner-serve` — the TCP spanner-serving daemon.
//!
//! ```text
//! spanner-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!               [--cache N] [--shards N] [--self-check]
//! ```
//!
//! `--shards N` makes every engine run execute with `N` in-iteration
//! shards (`0` = one per core), overriding per-request `shards`
//! headers. Responses are unaffected — the engine is
//! shard-count-deterministic — so this is purely a resource knob.
//!
//! Without `--self-check` the process binds the address (default
//! `127.0.0.1:7071`, port 0 for ephemeral), prints one
//! `listening <addr>` line, and serves until killed. With
//! `--self-check` it binds an ephemeral port, drives all four variants
//! plus a duplicate through a loopback client, asserts the cache and
//! the wire behave, prints `self-check ok`, and exits — the one-shot
//! mode CI uses.

use std::process::ExitCode;

use dsa_core::dist::VariantInstance;
use dsa_graphs::{gen, EdgeSet, Graph};
use dsa_service::{Client, JobSpec, Server, ServiceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    addr: String,
    cfg: ServiceConfig,
    self_check: bool,
}

const USAGE: &str = "usage: spanner-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] [--shards N] [--self-check]";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Explicit `--help` is a successful invocation, unlike bad usage.
fn help() -> ! {
    println!("{USAGE}");
    std::process::exit(0);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7071".to_string(),
        cfg: ServiceConfig {
            workers: 8,
            ..ServiceConfig::default()
        },
        self_check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--workers" => args.cfg.workers = parse_num(&value("--workers"), "--workers"),
            "--queue" => args.cfg.queue_capacity = parse_num(&value("--queue"), "--queue"),
            "--cache" => args.cfg.cache_capacity = parse_num(&value("--cache"), "--cache"),
            "--shards" => args.cfg.engine_shards = Some(parse_num(&value("--shards"), "--shards")),
            "--self-check" => args.self_check = true,
            "--help" | "-h" => help(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn parse_num(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        usage()
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.self_check {
        return self_check(&args.cfg);
    }
    let server = match Server::start(args.addr.as_str(), &args.cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("spanner-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("listening {}", server.addr());
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn self_check(cfg: &ServiceConfig) -> ExitCode {
    match self_check_inner(cfg) {
        Ok(()) => {
            println!("self-check ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("self-check FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn self_check_inner(cfg: &ServiceConfig) -> Result<(), String> {
    let server =
        Server::start("127.0.0.1:0", cfg).map_err(|e| format!("bind ephemeral port: {e}"))?;
    let addr = server.addr();
    let mut client = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.ping().map_err(|e| format!("ping: {e}"))?;

    // One instance per variant, from seeded generators.
    let mut rng = StdRng::seed_from_u64(2018);
    let g = gen::gnp_connected(24, 0.3, &mut rng);
    let d = gen::random_digraph_connected(18, 0.12, &mut rng);
    let w = gen::random_weights(g.num_edges(), 0, 9, &mut rng);
    let (clients, servers) = gen::client_server_split(&g, 0.6, 0.6, &mut rng);
    let specs = [
        JobSpec::new(VariantInstance::Undirected { graph: g.clone() }, 1),
        JobSpec::new(VariantInstance::Directed { graph: d }, 2),
        JobSpec::new(
            VariantInstance::Weighted {
                graph: g.clone(),
                weights: w,
            },
            3,
        ),
        JobSpec::new(
            VariantInstance::ClientServer {
                graph: g,
                clients,
                servers,
            },
            4,
        ),
    ];
    // The *first* submission of specs[0] is the cold computation;
    // capture its raw bytes so the later cache hit is compared against
    // a genuinely uncached response.
    let cold = client
        .run_raw(&specs[0])
        .map_err(|e| format!("cold run: {e}"))?;
    for spec in &specs {
        let resp = client
            .run(spec)
            .map_err(|e| format!("{} run: {e}", spec.instance.kind()))?;
        if !resp.converged {
            return Err(format!("{} run did not converge", spec.instance.kind()));
        }
    }
    let warm = client
        .run_raw(&specs[0])
        .map_err(|e| format!("warm run: {e}"))?;
    if cold != warm {
        return Err("cache hit was not byte-identical to cold response".into());
    }
    let stats = client.stats_json().map_err(|e| format!("stats: {e}"))?;
    let m = server.service().metrics();
    if m.cache_misses != specs.len() as u64 {
        return Err(format!(
            "expected {} engine runs, metrics: {stats}",
            specs.len()
        ));
    }
    if m.cache_hits < 2 {
        return Err(format!("expected >= 2 cache hits, metrics: {stats}"));
    }
    if m.jobs_submitted != m.cache_hits + m.cache_misses + m.coalesced {
        return Err(format!("counters do not add up: {stats}"));
    }
    // An invalid request must produce a wire error, not a dead server.
    let mut invalid = JobSpec::new(
        VariantInstance::ClientServer {
            graph: Graph::from_edges(3, [(0, 1), (1, 2)]),
            clients: EdgeSet::full(2),
            servers: EdgeSet::full(2),
        },
        0,
    );
    invalid.config.accept_denominator = 0;
    match client.run(&invalid) {
        Err(dsa_service::JobError::Remote(_)) => {}
        other => return Err(format!("invalid job: expected remote error, got {other:?}")),
    }
    client
        .ping()
        .map_err(|e| format!("ping after error: {e}"))?;
    server.shutdown();
    Ok(())
}
